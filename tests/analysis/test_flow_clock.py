"""Tests for RL103 — virtual-clock write funnels."""

from repro.analysis import APPROVED_CLOCK_FUNNELS, Project
from repro.analysis.flow.clockrule import check_clock_writes


def _names(sources):
    project = Project.from_sources(sources)
    return [violation.name for violation in check_clock_writes(project)]


class TestUnapprovedWrites:
    def test_clock_advance_outside_funnels_flagged(self):
        names = _names({"repro.serving.fake": (
            "def rush(env):\n"
            "    env.clock.advance(5.0)\n"
        )})
        assert names == ["rush:clock.advance"]

    def test_clock_reset_outside_funnels_flagged(self):
        names = _names({"repro.evalharness.fake": (
            "def rewind(env):\n"
            "    env.clock.reset()\n"
        )})
        assert names == ["rewind:clock.reset"]

    def test_alias_write_flagged(self):
        names = _names({"repro.env.fake": (
            "def sneak(env):\n"
            "    clock = env.clock\n"
            "    clock.advance(1.0)\n"
        )})
        assert names == ["sneak:clock.advance"]

    def test_local_stopwatch_write_flagged(self):
        names = _names({"repro.baselines.fake": (
            "from repro.common import Stopwatch\n"
            "def fresh():\n"
            "    stopwatch = Stopwatch()\n"
            "    stopwatch.reset()\n"
        )})
        assert names == ["fresh:clock.reset"]

    def test_now_ms_assignment_flagged(self):
        names = _names({"repro.env.fake": (
            "def warp(env):\n"
            "    env.clock.now_ms = 1000.0\n"
        )})
        assert names == ["warp:now_ms"]

    def test_now_ms_augmented_assignment_flagged(self):
        names = _names({"repro.env.fake": (
            "def creep(env):\n"
            "    env.clock.now_ms += 1.0\n"
        )})
        assert names == ["creep:now_ms"]

    def test_module_scope_write_flagged(self):
        names = _names({"repro.env.fake": (
            "from repro.common import Stopwatch\n"
            "CLOCK = Stopwatch()\n"
            "CLOCK.advance(1.0)\n"
        )})
        assert names == ["<module>:clock.advance"]


class TestApprovedFunnels:
    def test_kernel_dispatchers_clean(self):
        assert _names({"repro.sim.kernel": (
            "class EventKernel:\n"
            "    def advance_by(self, delta_ms):\n"
            "        self.clock.advance(delta_ms)\n"
            "    def advance_to(self, at_ms):\n"
            "        delta_ms = at_ms - self.clock.now_ms\n"
            "        if delta_ms > 0:\n"
            "            self.clock.advance(delta_ms)\n"
            "    def rewind(self):\n"
            "        self.clock.reset()\n"
        )}) == []

    def test_environment_writes_no_longer_approved(self):
        """The env funnels delegate to the kernel now; a direct write
        re-appearing there must be flagged, not grandfathered."""
        names = _names({"repro.env.environment": (
            "class EdgeCloudEnvironment:\n"
            "    def advance_clock(self, delta_ms):\n"
            "        self.clock.advance(delta_ms)\n"
        )})
        assert names == ["EdgeCloudEnvironment.advance_clock:clock.advance"]

    def test_stopwatch_primitive_clean(self):
        assert _names({"repro.common": (
            "class Stopwatch:\n"
            "    def advance(self, delta_ms):\n"
            "        self.now_ms = self.now_ms + delta_ms\n"
            "    def reset(self):\n"
            "        self.now_ms = 0.0\n"
        )}) == []

    def test_same_qualname_in_other_module_not_approved(self):
        names = _names({"repro.serving.fake": (
            "class EdgeCloudEnvironment:\n"
            "    def advance_clock(self, delta_ms):\n"
            "        self.clock.advance(delta_ms)\n"
        )})
        assert names == ["EdgeCloudEnvironment.advance_clock:clock.advance"]


class TestReadsAndNeighbors:
    def test_reading_the_clock_is_unrestricted(self):
        assert _names({"repro.evalharness.fake": (
            "def observe(env):\n"
            "    return env.clock.now_ms\n"
        )}) == []

    def test_calling_the_funnel_is_unrestricted(self):
        assert _names({"repro.env.workload": (
            "def run(env, request):\n"
            "    env.advance_clock_to(request.at_ms)\n"
        )}) == []

    def test_unrelated_advance_method_clean(self):
        assert _names({"repro.core.fake": (
            "def bump(cursor):\n"
            "    cursor.advance(1)\n"
        )}) == []


class TestFunnelTable:
    def test_table_covers_only_common_and_kernel(self):
        assert set(APPROVED_CLOCK_FUNNELS) == {
            "repro.common", "repro.sim.kernel",
        }
