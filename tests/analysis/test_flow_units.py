"""Tests for RL101 — cross-module unit propagation."""

from repro.analysis import Project
from repro.analysis.flow.units import check_units, infer_name_unit


def _names(sources):
    project = Project.from_sources(sources)
    return [violation.name for violation in check_units(project)]


class TestNameInference:
    def test_last_unit_token_wins(self):
        assert infer_name_unit("tx_base_ms") == "ms"
        assert infer_name_unit("energy_mj") == "mj"
        assert infer_name_unit("request_count") is None

    def test_converter_names_declare_nothing(self):
        assert infer_name_unit("mj_to_joules") is None
        assert infer_name_unit("bytes_to_mbits") is None


class TestAdditiveMixes:
    def test_ms_plus_mj_flagged(self):
        names = _names({"repro.env.fake": (
            "def bad(latency_ms, energy_mj):\n"
            "    return latency_ms + energy_mj\n"
        )})
        assert names == ["bad:ms+mj"]

    def test_same_unit_sum_clean(self):
        assert _names({"repro.env.fake": (
            "def good(tx_ms, rx_ms):\n"
            "    total_ms = tx_ms + rx_ms\n"
            "    return total_ms\n"
        )}) == []

    def test_dimensionless_offset_clean(self):
        assert _names({"repro.env.fake": (
            "def good(latency_ms):\n"
            "    return latency_ms + 1.5\n"
        )}) == []

    def test_min_max_unify_like_addition(self):
        names = _names({"repro.env.fake": (
            "def bad(latency_ms, power_mw):\n"
            "    return min(latency_ms, power_mw)\n"
        )})
        assert names == ["bad:ms+mw"]


class TestEquationFive:
    def test_product_divided_by_1000_is_mj(self):
        assert _names({"repro.env.fake": (
            "def good(latency_ms, power_mw):\n"
            "    energy_mj = latency_ms * power_mw / 1000.0\n"
            "    return energy_mj\n"
        )}) == []

    def test_undivided_product_into_mj_name_flagged(self):
        names = _names({"repro.env.fake": (
            "def bad(latency_ms, power_mw):\n"
            "    energy_mj = latency_ms * power_mw\n"
            "    return energy_mj\n"
        )})
        assert names == ["bad:energy_mj:ms*mw->mj"]

    def test_product_meeting_mj_additively_flagged(self):
        names = _names({"repro.env.fake": (
            "def bad(latency_ms, power_mw, base_mj):\n"
            "    return base_mj + latency_ms * power_mw\n"
        )})
        assert names == ["bad:ms*mw+mj"]


class TestAssignments:
    def test_declared_unit_contradicted_by_value(self):
        names = _names({"repro.env.fake": (
            "def bad(power_mw):\n"
            "    drain_mj = power_mw\n"
            "    return drain_mj\n"
        )})
        assert names == ["bad:drain_mj:mw->mj"]

    def test_unit_propagates_through_unitless_local(self):
        names = _names({"repro.env.fake": (
            "def bad(latency_ms):\n"
            "    elapsed = latency_ms\n"
            "    energy_mj = elapsed\n"
            "    return energy_mj\n"
        )})
        assert names == ["bad:energy_mj:ms->mj"]


class TestCallsAndReturns:
    def test_keyword_argument_unit_mismatch(self):
        names = _names({"repro.env.fake": (
            "def bad(run, energy_mj):\n"
            "    run(deadline_ms=energy_mj)\n"
        )})
        assert names == ["bad:deadline_ms:mj->ms"]

    def test_cross_module_positional_argument(self):
        names = _names({
            "repro.models.timing": (
                "def cost_of(latency_ms):\n"
                "    return latency_ms\n"
            ),
            "repro.env.user": (
                "from repro.models.timing import cost_of\n"
                "def bad(energy_mj):\n"
                "    return cost_of(energy_mj)\n"
            ),
        })
        assert names == ["bad:latency_ms:mj->ms"]

    def test_return_contradicting_function_name(self):
        names = _names({"repro.env.fake": (
            "def total_mj(latency_ms):\n"
            "    return latency_ms\n"
        )})
        assert names == ["total_mj:return:ms->mj"]

    def test_converter_functions_exempt_from_return_check(self):
        assert _names({"repro.env.fake": (
            "def ms_to_seconds(latency_ms):\n"
            "    return latency_ms / 1000.0\n"
        )}) == []

    def test_called_name_carries_its_unit(self):
        names = _names({"repro.env.fake": (
            "def bad(engine):\n"
            "    energy_mj = engine.remote_nominal_ms()\n"
            "    return energy_mj\n"
        )})
        assert names == ["bad:energy_mj:ms->mj"]


class TestComparisons:
    def test_cross_unit_comparison_flagged(self):
        names = _names({"repro.env.fake": (
            "def bad(latency_ms, energy_mj):\n"
            "    return latency_ms < energy_mj\n"
        )})
        assert names == ["bad:ms<>mj"]

    def test_unknown_operand_silences(self):
        assert _names({"repro.env.fake": (
            "def good(latency_ms, budget):\n"
            "    return latency_ms < budget\n"
        )}) == []
