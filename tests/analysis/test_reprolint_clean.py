"""CI gate: the shipped source tree is reprolint-clean.

Every violation must either be fixed or carry an explicit allowlist
entry; this test is what keeps the discipline from regressing.
"""

from pathlib import Path

from repro.analysis import Allowlist, lint_paths, load_allowlist

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"


def test_source_tree_is_clean():
    report = lint_paths([SRC])
    assert report.ok, "\n" + report.format()


def test_lint_actually_covered_the_tree():
    report = lint_paths([SRC])
    # Guard against a silently-empty walk reporting a vacuous pass.
    assert report.files_checked >= 70


def test_every_allowlist_entry_is_still_needed():
    """Stale allowlist entries must be pruned, not accumulated — the
    runner itself now tracks this in ``unused_entries`` and fails the
    gate on them."""
    report = lint_paths([SRC])
    assert report.unused_entries == ()


def test_stale_allowlist_entry_fails_the_run():
    """An entry matching no finding flips ``ok`` and is reported with a
    delete instruction — the allowlist can only shrink."""
    allowlist = Allowlist(
        entries=frozenset({("RL001", "no_such_identifier_anywhere")}),
        source="<test>",
    )
    report = lint_paths([SRC / "common.py"], allowlist=allowlist)
    assert not report.violations
    assert report.unused_entries == (
        ("RL001", "no_such_identifier_anywhere"),
    )
    assert not report.ok
    assert "stale allowlist entry" in report.format()


def test_rule_subset_run_does_not_stale_other_rules():
    """Linting with ``--select`` gathers no evidence about other rules'
    entries, so they are not reported stale."""
    report = lint_paths([SRC / "common.py"], rule_ids=["RL003"])
    assert report.unused_entries == ()


def test_allowlist_is_small_and_justified():
    """The allowlist exists for genuinely dimensionless names, not as a
    dumping ground — keep it an order of magnitude below the fix count."""
    entries = load_allowlist().entries
    assert len(entries) <= 15
    assert all(rule == "RL001" for rule, _ in entries)


def test_costcache_enters_with_zero_allowlist_entries():
    """New modules are born clean: the batched nominal-cost engine must
    pass every rule with the allowlist disabled — no grandfathering."""
    report = lint_paths([SRC / "env" / "costcache.py"], allowlist=False)
    assert report.files_checked == 1
    assert report.ok, "\n" + report.format()
    assert not report.suppressed


def test_faults_package_enters_with_zero_allowlist_entries():
    """The fault-injection/resilience subsystem is likewise born clean:
    every module passes every rule with the allowlist disabled."""
    report = lint_paths([SRC / "faults"], allowlist=False)
    assert report.files_checked == 6
    assert report.ok, "\n" + report.format()
    assert not report.suppressed


def test_sim_package_enters_with_zero_allowlist_entries():
    """The event kernel is born clean: every module passes every rule
    with the allowlist disabled."""
    report = lint_paths([SRC / "sim"], allowlist=False)
    assert report.files_checked == 3
    assert report.ok, "\n" + report.format()
    assert not report.suppressed


def test_serving_package_enters_with_zero_allowlist_entries():
    """The overload-robust serving pipeline is likewise born clean:
    every module passes every rule with the allowlist disabled."""
    report = lint_paths([SRC / "serving"], allowlist=False)
    assert report.files_checked == 6
    assert report.ok, "\n" + report.format()
    assert not report.suppressed


def test_batchtrain_enters_with_zero_allowlist_entries():
    """The vectorized training engine is likewise born clean: the
    module passes every rule with the allowlist disabled."""
    report = lint_paths([SRC / "core" / "batchtrain.py"], allowlist=False)
    assert report.files_checked == 1
    assert report.ok, "\n" + report.format()
    assert not report.suppressed


def test_flow_package_enters_with_zero_allowlist_entries():
    """The flow analyzer holds itself to its own bar: every module of
    repro.analysis.flow passes every per-file rule with the allowlist
    disabled — no grandfathering."""
    report = lint_paths([SRC / "analysis" / "flow"], allowlist=False)
    assert report.files_checked == 9
    assert report.ok, "\n" + report.format()
    assert not report.suppressed
