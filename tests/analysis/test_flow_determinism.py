"""Tests for RL102 — determinism taint into the simulation core."""

from repro.analysis import Project
from repro.analysis.flow.determinism import check_determinism


def _violations(sources):
    return check_determinism(Project.from_sources(sources))


def _names(sources):
    return [violation.name for violation in _violations(sources)]


class TestDirectSources:
    def test_wall_clock_in_protected_module_flagged(self):
        names = _names({"repro.core.fake": (
            "import time\n"
            "def step():\n"
            "    return time.time()\n"
        )})
        assert names == ["step:time.time"]

    def test_from_import_bare_name_flagged(self):
        names = _names({"repro.core.fake": (
            "from time import perf_counter\n"
            "def step():\n"
            "    return perf_counter()\n"
        )})
        assert names == ["step:time.perf_counter"]

    def test_same_source_in_unprotected_module_clean(self):
        assert _names({"repro.evalharness.fake": (
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n"
        )}) == []

    def test_unfunneled_default_rng_flagged(self):
        names = _names({"repro.env.fake": (
            "import numpy as np\n"
            "def sample():\n"
            "    return np.random.default_rng().random()\n"
        )})
        assert names == ["sample:numpy.random.default_rng"]

    def test_default_rng_inside_common_is_the_funnel(self):
        assert _names({"repro.common": (
            "import numpy as np\n"
            "def make_rng(seed):\n"
            "    return np.random.default_rng(seed)\n"
        )}) == []

    def test_set_iteration_flagged(self):
        names = _names({"repro.serving.fake": (
            "def drain(pending):\n"
            "    for request in set(pending):\n"
            "        request.run()\n"
        )})
        assert names == ["drain:set-iteration"]

    def test_threading_reference_flagged(self):
        names = _names({"repro.core.fake": (
            "import threading\n"
            "def spawn(worker):\n"
            "    return threading.Thread(target=worker)\n"
        )})
        assert names == ["spawn:threading.Thread"]

    def test_generator_type_annotation_clean(self):
        assert _names({"repro.core.fake": (
            "import numpy as np\n"
            "def roll(rng: np.random.Generator):\n"
            "    return rng.random()\n"
        )}) == []


class TestTransitiveTaint:
    def test_protected_entry_point_via_unprotected_helper(self):
        violations = _violations({
            "repro.evalharness.util": (
                "import time\n"
                "def stamp():\n"
                "    return time.time()\n"
            ),
            "repro.core.fake": (
                "from repro.evalharness.util import stamp\n"
                "def step():\n"
                "    return stamp()\n"
            ),
        })
        names = [violation.name for violation in violations]
        assert names == ["step:time.time"]
        assert "via" in violations[0].message

    def test_protected_to_protected_reports_only_the_callee(self):
        names = _names({
            "repro.core.inner": (
                "import time\n"
                "def now():\n"
                "    return time.time()\n"
            ),
            "repro.core.outer": (
                "from repro.core.inner import now\n"
                "def step():\n"
                "    return now()\n"
            ),
        })
        assert names == ["now:time.time"]

    def test_clean_call_graph_is_clean(self):
        assert _names({
            "repro.common": (
                "import numpy as np\n"
                "def make_rng(seed):\n"
                "    return np.random.default_rng(seed)\n"
            ),
            "repro.core.fake": (
                "from repro.common import make_rng\n"
                "def step(seed):\n"
                "    return make_rng(seed).random()\n"
            ),
        }) == []
