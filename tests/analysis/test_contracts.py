"""Contract-layer tests: violating values raise typed repro errors
instead of propagating NaNs, and the ``checked`` gate obeys
``REPRO_CONTRACTS``/pytest detection."""

import math

import pytest

from repro.analysis.contracts import (
    RSSI_CEIL_DBM,
    RSSI_FLOOR_DBM,
    checked,
    contracts_enabled,
    ensure_duration_ms,
    ensure_energy_mj,
    ensure_finite,
    ensure_latency_ms,
    ensure_power_mw,
    ensure_q_value,
    ensure_rssi_dbm,
    ensure_utilization,
)
from repro.common import ConfigError, SimulationError


class TestValidators:
    def test_power_rejects_negative(self):
        with pytest.raises(ConfigError):
            ensure_power_mw(-1.0)

    def test_power_allows_zero_and_returns_value(self):
        assert ensure_power_mw(0.0) == 0.0
        assert ensure_power_mw(123.5) == 123.5

    def test_latency_rejects_zero_and_negative(self):
        with pytest.raises(ConfigError):
            ensure_latency_ms(0.0)
        with pytest.raises(ConfigError):
            ensure_latency_ms(-3.0)

    def test_latency_rejects_nan_that_plain_comparison_misses(self):
        # nan <= 0 is False, so a naive "if value <= 0: raise" check
        # waves NaN through — the contract must not.
        assert not math.nan <= 0
        with pytest.raises(ConfigError):
            ensure_latency_ms(math.nan)

    def test_duration_allows_zero(self):
        assert ensure_duration_ms(0.0) == 0.0

    def test_energy_rejects_below_minimum(self):
        with pytest.raises(ConfigError):
            ensure_energy_mj(-0.5)
        with pytest.raises(ConfigError):
            ensure_energy_mj(0.5, minimum_mj=1.0)
        assert ensure_energy_mj(0.0) == 0.0

    @pytest.mark.parametrize("bad", [-0.01, 1.01, math.inf, math.nan])
    def test_utilization_rejects_outside_unit_interval(self, bad):
        with pytest.raises(ConfigError):
            ensure_utilization(bad)

    def test_utilization_accepts_bounds(self):
        assert ensure_utilization(0.0) == 0.0
        assert ensure_utilization(1.0) == 1.0

    def test_rssi_window_matches_signal_model(self):
        assert ensure_rssi_dbm(RSSI_FLOOR_DBM) == RSSI_FLOOR_DBM
        assert ensure_rssi_dbm(RSSI_CEIL_DBM) == RSSI_CEIL_DBM
        with pytest.raises(ConfigError):
            ensure_rssi_dbm(RSSI_FLOOR_DBM - 1.0)
        with pytest.raises(ConfigError):
            ensure_rssi_dbm(RSSI_CEIL_DBM + 1.0)
        with pytest.raises(ConfigError):
            ensure_rssi_dbm(0.0)  # "perfect" RSSI is not physical here

    def test_q_value_failure_is_a_simulation_error(self):
        with pytest.raises(SimulationError):
            ensure_q_value(math.nan)
        with pytest.raises(SimulationError):
            ensure_q_value(-math.inf)
        assert ensure_q_value(-0.25) == -0.25

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf,
                                     None, "12.0"])
    def test_finite_rejects_non_numbers(self, bad):
        with pytest.raises(ConfigError):
            ensure_finite(bad)


class TestEnabledGate:
    def test_enabled_by_default_under_pytest(self):
        # PYTEST_CURRENT_TEST is set while this test runs.
        assert contracts_enabled()

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_CONTRACTS", "0")
        assert not contracts_enabled()
        monkeypatch.setenv("REPRO_CONTRACTS", "off")
        assert not contracts_enabled()
        monkeypatch.setenv("REPRO_CONTRACTS", "1")
        assert contracts_enabled()

    def test_forced_on_outside_pytest(self, monkeypatch):
        monkeypatch.delenv("PYTEST_CURRENT_TEST", raising=False)
        monkeypatch.delenv("REPRO_CONTRACTS", raising=False)
        assert not contracts_enabled()
        monkeypatch.setenv("REPRO_CONTRACTS", "yes")
        assert contracts_enabled()


class TestCheckedDecorator:
    def test_validates_positional_keyword_and_default_arguments(self):
        @checked(power_mw=ensure_power_mw, busy_ms=ensure_duration_ms)
        def energy(power_mw, busy_ms=1.0):
            return power_mw * busy_ms / 1000.0

        assert energy(100.0, 2.0) == pytest.approx(0.2)
        with pytest.raises(ConfigError):
            energy(-5.0, 2.0)
        with pytest.raises(ConfigError):
            energy(100.0, busy_ms=-1.0)
        with pytest.raises(ConfigError):  # default busy_ms also validated
            energy(math.nan)

    def test_return_contract(self):
        @checked(_returns=ensure_energy_mj)
        def broken():
            return -1.0

        with pytest.raises(ConfigError):
            broken()

    def test_error_names_the_offending_parameter(self):
        @checked(rssi_dbm=ensure_rssi_dbm)
        def f(rssi_dbm):
            return rssi_dbm

        with pytest.raises(ConfigError, match="rssi_dbm"):
            f(5.0)

    def test_disabled_via_env_skips_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_CONTRACTS", "0")

        @checked(latency_ms=ensure_latency_ms)
        def f(latency_ms):
            return latency_ms

        assert math.isnan(f(math.nan))  # passes through unvalidated

    def test_unknown_parameter_rejected_at_decoration_time(self):
        with pytest.raises(ConfigError):
            @checked(no_such_param=ensure_power_mw)
            def f(power_mw):
                return power_mw

    def test_contracts_attribute_exposed_for_introspection(self):
        @checked(power_mw=ensure_power_mw)
        def f(power_mw):
            return power_mw

        assert f.__contracts__ == {"power_mw": ensure_power_mw}


class TestWiredBoundaries:
    """The modules named by the issue actually enforce contracts."""

    def test_execution_result_rejects_nan_latency(self):
        from repro.env.result import ExecutionResult

        with pytest.raises(ConfigError):
            ExecutionResult(latency_ms=math.nan, energy_mj=1.0,
                            estimated_energy_mj=1.0, accuracy_pct=70.0,
                            target_key="cpu")

    def test_execution_result_rejects_negative_energy(self):
        from repro.env.result import ExecutionResult

        with pytest.raises(ConfigError):
            ExecutionResult(latency_ms=10.0, energy_mj=-2.0,
                            estimated_energy_mj=1.0, accuracy_pct=70.0,
                            target_key="cpu")

    def test_power_model_rejects_negative_duration(self):
        from repro.hardware.devices import build_device
        from repro.hardware.power import busy_idle_energy_mj

        processor = next(iter(build_device("mi8pro").soc.processors.values()))
        with pytest.raises(ConfigError):
            busy_idle_energy_mj(processor, busy_ms=-1.0)
        with pytest.raises(ConfigError):
            busy_idle_energy_mj(processor, busy_ms=math.nan)

    def test_transmission_energy_rejects_out_of_window_rssi(self):
        from repro.wireless.energy import transmission_energy_mj
        from repro.wireless.profiles import default_wifi

        link = default_wifi()
        with pytest.raises(ConfigError):
            transmission_energy_mj(link, rssi_dbm=0.0, tx_bytes=1000,
                                   rx_bytes=100, total_latency_ms=50.0)
        with pytest.raises(ConfigError):
            transmission_energy_mj(link, rssi_dbm=-70.0, tx_bytes=1000,
                                   rx_bytes=100, total_latency_ms=math.nan)

    def test_qtable_update_rejects_nan_reward(self):
        from repro.core.qlearning import QTable

        table = QTable(4, 3, seed=0)
        with pytest.raises(SimulationError):
            table.update(0, 0, math.nan, 1)

    def test_qtable_update_accepts_finite_reward(self):
        from repro.core.qlearning import QTable

        table = QTable(4, 3, seed=0)
        table.update(0, 0, -0.5, 1)  # must not raise
        assert table.update_count == 1
