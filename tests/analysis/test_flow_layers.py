"""Tests for RL104 — architecture layer contracts."""

from repro.analysis import PACKAGE_LAYERS, Project
from repro.analysis.flow.layers import check_layers


def _violations(sources):
    return check_layers(Project.from_sources(sources))


def _names(sources):
    return [violation.name for violation in _violations(sources)]


class TestLayerDirection:
    def test_upward_module_scope_import_flagged(self):
        names = _names({"repro.env.fake": (
            "from repro.serving.pipeline import ServingPipeline\n"
        )})
        assert names == ["repro.env.fake->repro.serving"]

    def test_downward_import_clean(self):
        assert _names({"repro.serving.fake": (
            "from repro.env.environment import EdgeCloudEnvironment\n"
        )}) == []

    def test_lazy_upward_import_is_the_escape_hatch(self):
        assert _names({"repro.env.fake": (
            "def build():\n"
            "    from repro.serving.pipeline import ServingPipeline\n"
            "    return ServingPipeline\n"
        )}) == []

    def test_same_layer_siblings_are_independent(self):
        names = _names({"repro.wireless.fake": (
            "from repro.models.profiler import Profiler\n"
        )})
        assert names == ["repro.wireless.fake->repro.models"]

    def test_intra_package_import_clean(self):
        assert _names({"repro.env.fake": (
            "from repro.env.workload import run_workload\n"
        )}) == []


class TestCycles:
    def test_two_module_cycle_flagged_once(self):
        names = _names({
            "repro.core.a": "import repro.core.b\n",
            "repro.core.b": "import repro.core.a\n",
        })
        assert names == ["cycle:repro.core.a->repro.core.b"]

    def test_three_module_cycle_flagged(self):
        names = _names({
            "repro.core.a": "import repro.core.b\n",
            "repro.core.b": "import repro.core.c\n",
            "repro.core.c": "import repro.core.a\n",
        })
        assert names == [
            "cycle:repro.core.a->repro.core.b->repro.core.c"
        ]

    def test_acyclic_chain_clean(self):
        assert _names({
            "repro.core.a": "import repro.core.b\n",
            "repro.core.b": "import repro.core.c\n",
            "repro.core.c": "x = 1\n",
        }) == []


class TestLayerTable:
    def test_common_is_the_bottom(self):
        assert PACKAGE_LAYERS["repro.common"] == 0
        assert all(rank >= 0 for rank in PACKAGE_LAYERS.values())

    def test_declared_dag_orders_the_paper_pipeline(self):
        assert PACKAGE_LAYERS["repro.env"] < PACKAGE_LAYERS["repro.core"]
        assert PACKAGE_LAYERS["repro.core"] \
            < PACKAGE_LAYERS["repro.serving"]
        assert PACKAGE_LAYERS["repro.serving"] \
            < PACKAGE_LAYERS["repro.evalharness"]
