"""Self-tests for every reprolint rule: each fires on a bad fixture
snippet and stays quiet on the corrected version of the same snippet."""

import pytest

from repro.analysis import lint_source
from repro.analysis.rules import RULES


def rules_hit(source, rule_id=None):
    """The set of rule ids that fire on ``source``."""
    violations = lint_source(source, path="fixture.py")
    hits = {violation.rule for violation in violations}
    return hits if rule_id is None else rule_id in hits


class TestRL001UnitSuffixes:
    def test_unsuffixed_parameter_fires(self):
        assert rules_hit("def f(peak_power):\n    return peak_power\n",
                         "RL001")

    def test_unsuffixed_assignment_fires(self):
        assert rules_hit("total_energy = 3.0\n", "RL001")

    def test_unsuffixed_self_attribute_fires(self):
        snippet = (
            "class C:\n"
            "    def __init__(self):\n"
            "        self.latency = 1.0\n"
        )
        assert rules_hit(snippet, "RL001")

    def test_unsuffixed_loop_variable_fires(self):
        assert rules_hit("for rssi in values:\n    print(rssi)\n", "RL001")

    def test_wrong_unit_for_quantity_fires(self):
        # A unit token for a *different* quantity does not satisfy RL001.
        assert rules_hit("latency_mw = 2.0\n", "RL001")

    def test_suffixed_names_pass(self):
        snippet = (
            "def f(peak_power_mw, latency_ms, rssi_dbm, freq_mhz,\n"
            "      data_rate_mbps):\n"
            "    total_energy_mj = peak_power_mw * latency_ms / 1000.0\n"
            "    return total_energy_mj\n"
        )
        assert not rules_hit(snippet, "RL001")

    def test_each_quantity_word_maps_to_its_unit(self):
        for name in ("latency_ms", "energy_mj", "power_mw", "freq_mhz",
                     "frequency_mhz", "rssi_dbm", "rate_mbps"):
            assert not rules_hit(f"{name} = 1.0\n", "RL001"), name

    def test_violation_carries_name_for_allowlisting(self):
        violations = lint_source("chosen_energy = 1.0\n", path="x.py")
        assert violations[0].name == "chosen_energy"


class TestRL002RngDiscipline:
    def test_import_random_fires(self):
        assert rules_hit("import random\n", "RL002")

    def test_from_random_import_fires(self):
        assert rules_hit("from random import gauss\n", "RL002")

    def test_np_random_call_fires(self):
        assert rules_hit(
            "import numpy as np\nx = np.random.normal(0.0, 1.0)\n",
            "RL002",
        )

    def test_np_random_default_rng_fires_outside_common(self):
        assert rules_hit(
            "import numpy as np\nrng = np.random.default_rng(0)\n",
            "RL002",
        )

    def test_default_rng_allowed_inside_common(self):
        snippet = "import numpy as np\nrng = np.random.default_rng(0)\n"
        violations = lint_source(snippet, path="src/repro/common.py")
        assert "RL002" not in {v.rule for v in violations}

    def test_generator_type_reference_passes(self):
        snippet = (
            "import numpy as np\n"
            "def f(seed):\n"
            "    return isinstance(seed, np.random.Generator)\n"
        )
        assert not rules_hit(snippet, "RL002")

    def test_threaded_rng_passes(self):
        snippet = (
            "def sample(rng):\n"
            "    return rng.normal(0.0, 1.0)\n"
        )
        assert not rules_hit(snippet, "RL002")


class TestRL003FloatEquality:
    def test_equality_against_float_literal_fires(self):
        assert rules_hit("ok = x == 1.5\n", "RL003")

    def test_inequality_against_float_literal_fires(self):
        assert rules_hit("ok = 0.3 != y\n", "RL003")

    def test_negative_literal_fires(self):
        assert rules_hit("ok = x == -2.5\n", "RL003")

    def test_chained_comparison_fires(self):
        assert rules_hit("ok = a < b == 1.5\n", "RL003")

    def test_zero_check_is_allowed(self):
        assert not rules_hit("std[std == 0.0] = 1.0\n", "RL003")

    def test_ordering_comparisons_pass(self):
        assert not rules_hit("ok = x <= 1.5 or y > 0.3\n", "RL003")

    def test_int_equality_passes(self):
        assert not rules_hit("ok = x == 3\n", "RL003")


class TestRL004ExceptionDiscipline:
    @pytest.mark.parametrize("exc", ["ValueError", "RuntimeError",
                                     "TypeError", "KeyError", "Exception"])
    def test_builtin_raise_fires(self, exc):
        assert rules_hit(f"raise {exc}('boom')\n", "RL004")

    def test_bare_class_raise_fires(self):
        assert rules_hit("raise ValueError\n", "RL004")

    def test_repro_error_passes(self):
        snippet = (
            "from repro.common import ConfigError\n"
            "raise ConfigError('bad parameter')\n"
        )
        assert not rules_hit(snippet, "RL004")

    def test_unknown_key_error_passes(self):
        snippet = (
            "from repro.common import UnknownKeyError\n"
            "raise UnknownKeyError('no such device')\n"
        )
        assert not rules_hit(snippet, "RL004")

    def test_not_implemented_allowed_for_abstract_methods(self):
        assert not rules_hit("raise NotImplementedError\n", "RL004")

    def test_re_raise_allowed(self):
        snippet = (
            "try:\n    f()\nexcept Exception:\n    raise\n"
        )
        assert not rules_hit(snippet, "RL004")


class TestRL005MutableDefaults:
    def test_list_default_fires(self):
        assert rules_hit("def f(items=[]):\n    return items\n", "RL005")

    def test_dict_default_fires(self):
        assert rules_hit("def f(table={}):\n    return table\n", "RL005")

    def test_constructor_call_default_fires(self):
        assert rules_hit("def f(items=list()):\n    return items\n",
                         "RL005")

    def test_kwonly_default_fires(self):
        assert rules_hit("def f(*, items=[]):\n    return items\n",
                         "RL005")

    def test_none_default_passes(self):
        assert not rules_hit("def f(items=None):\n    return items\n",
                             "RL005")

    def test_tuple_default_passes(self):
        assert not rules_hit("def f(items=()):\n    return items\n",
                             "RL005")


class TestRL006DataclassValidation:
    BAD = (
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class Result:\n"
        "    latency_ms: float\n"
        "    energy_mj: float\n"
    )
    GOOD = BAD + (
        "    def __post_init__(self):\n"
        "        if self.latency_ms <= 0:\n"
        "            raise ConfigError('bad latency')\n"
    )

    def test_quantity_dataclass_without_post_init_fires(self):
        assert rules_hit(self.BAD, "RL006")

    def test_quantity_dataclass_with_post_init_passes(self):
        assert not rules_hit(self.GOOD, "RL006")

    def test_decorator_with_arguments_recognized(self):
        snippet = self.BAD.replace("@dataclass", "@dataclass(frozen=True)")
        assert rules_hit(snippet, "RL006")

    def test_dotted_decorator_recognized(self):
        snippet = (
            "import dataclasses\n"
            "@dataclasses.dataclass\n"
            "class P:\n"
            "    power_mw: float\n"
        )
        assert rules_hit(snippet, "RL006")

    def test_quantityless_dataclass_passes(self):
        snippet = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Label:\n"
            "    name: str\n"
            "    count: int\n"
        )
        assert not rules_hit(snippet, "RL006")

    def test_plain_class_passes(self):
        snippet = "class C:\n    latency_ms: float\n"
        assert not rules_hit(snippet, "RL006")


class TestRunnerBasics:
    def test_syntax_error_reported_as_rl000(self):
        violations = lint_source("def broken(:\n", path="bad.py")
        assert [v.rule for v in violations] == ["RL000"]

    def test_every_registered_rule_has_a_distinct_id(self):
        assert sorted(RULES) == [
            "RL001", "RL002", "RL003", "RL004", "RL005", "RL006",
        ]

    def test_rule_subset_selection(self):
        source = "raise ValueError('x')\ntotal_energy = 1.0\n"
        only_exceptions = lint_source(source, rule_ids=["RL004"])
        assert {v.rule for v in only_exceptions} == {"RL004"}
