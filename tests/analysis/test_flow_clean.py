"""CI gate: the shipped tree is flow-clean against the committed baseline.

The ratchet only means something if the committed baseline is *exactly*
the set of current findings: a missing entry would hide a regression, a
stale one would hide paid-down debt.  These tests pin both directions
and exercise the CLI surface CI calls.
"""

import json
from pathlib import Path

from repro.analysis import FlowBaseline, analyze_paths, load_baseline
from repro.analysis.cli import main
from repro.analysis.flow.report import to_json, to_sarif

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"


def test_source_tree_is_flow_clean():
    report = analyze_paths([SRC])
    assert report.ok, "\n" + report.format()


def test_flow_actually_covered_the_tree():
    report = analyze_paths([SRC])
    assert report.modules_checked >= 90


def test_committed_baseline_matches_a_fresh_run_exactly():
    """Every baseline entry corresponds to a live finding and every
    baseline-eligible finding has an entry — the file is neither stale
    nor hiding new debt."""
    fresh = analyze_paths([SRC], baseline=False)
    fingerprints = {
        FlowBaseline.fingerprint_of(violation)
        for violation in fresh.violations
    }
    assert fingerprints == load_baseline().entries


def test_baseline_is_small_and_justified():
    """The baseline is tracked debt, not a dumping ground."""
    entries = load_baseline().entries
    assert len(entries) <= 6
    assert all(rule in ("RL102", "RL104") for rule, _, _ in entries)


def test_cli_flow_gate_passes_on_head():
    assert main(["--flow", str(SRC)]) == 0


def test_cli_rejects_format_without_flow():
    assert main(["--format", "sarif", str(SRC)]) == 2


def test_cli_rejects_unknown_flow_rule():
    assert main(["--flow", "--select", "RL999", str(SRC)]) == 2


def test_json_report_shape():
    report = analyze_paths([SRC])
    payload = json.loads(to_json(report))
    assert payload["ok"] is True
    assert set(payload["counts"]) == {"RL101", "RL102", "RL103", "RL104"}
    assert payload["violations"] == []
    assert len(payload["suppressed"]) == len(report.suppressed)


def test_sarif_report_shape():
    report = analyze_paths([SRC])
    sarif = json.loads(to_sarif(report))
    assert sarif["version"] == "2.1.0"
    run = sarif["runs"][0]
    assert run["tool"]["driver"]["name"] == "reprolint-flow"
    assert {rule["id"] for rule in run["tool"]["driver"]["rules"]} == {
        "RL101", "RL102", "RL103", "RL104",
    }
    # Baselined findings upload as suppressed results, with stable
    # fingerprints for the code-scanning dedup.
    assert len(run["results"]) == len(report.suppressed)
    for result in run["results"]:
        assert result["suppressions"]
        assert "reproFlow/v1" in result["partialFingerprints"]
