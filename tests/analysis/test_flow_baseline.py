"""Tests for the flow ratchet baseline (fingerprints, stale detection)."""

import pytest

from repro.analysis import FlowBaseline, Project, analyze_project
from repro.analysis.flow.baseline import format_baseline, load_baseline
from repro.analysis.flow.units import check_units
from repro.common import ConfigError


def _one_violation():
    project = Project.from_sources({"repro.env.fake": (
        "def bad(latency_ms, energy_mj):\n"
        "    return latency_ms + energy_mj\n"
    )})
    violations = check_units(project)
    assert len(violations) == 1
    return project, violations[0]


class TestFingerprints:
    def test_fingerprint_is_line_free(self):
        _, violation = _one_violation()
        assert FlowBaseline.fingerprint_of(violation) == (
            "RL101", "repro.env.fake", "bad:ms+mj"
        )

    def test_disk_paths_anchor_at_repro(self):
        class Fake:
            rule = "RL102"
            path = "src/repro/core/engine.py"
            name = "step:time.time"

        assert FlowBaseline.fingerprint_of(Fake()) == (
            "RL102", "repro.core.engine", "step:time.time"
        )


class TestRatchet:
    def test_baselined_violation_is_suppressed(self):
        project, violation = _one_violation()
        baseline = FlowBaseline(entries=frozenset({
            FlowBaseline.fingerprint_of(violation)
        }), source="<test>")
        report = analyze_project(project, baseline=baseline)
        assert report.ok
        assert len(report.suppressed) == 1
        assert report.violations == ()

    def test_new_violation_fails(self):
        project, _ = _one_violation()
        report = analyze_project(project, baseline=FlowBaseline())
        assert not report.ok
        assert len(report.violations) == 1

    def test_stale_entry_fails_even_when_tree_is_clean(self):
        project = Project.from_sources({"repro.env.fake": "x = 1\n"})
        baseline = FlowBaseline(entries=frozenset({
            ("RL101", "repro.env.gone", "bad:ms+mj")
        }), source="<test>")
        report = analyze_project(project, baseline=baseline)
        assert not report.ok
        assert report.violations == ()
        assert report.stale_entries == (
            ("RL101", "repro.env.gone", "bad:ms+mj"),
        )

    def test_rule_subset_does_not_stale_other_rules(self):
        project = Project.from_sources({"repro.env.fake": "x = 1\n"})
        baseline = FlowBaseline(entries=frozenset({
            ("RL102", "repro.core.engine", "step:time.time")
        }), source="<test>")
        report = analyze_project(project, baseline=baseline,
                                 rule_ids=("RL101",))
        assert report.ok  # no RL102 evidence was gathered


class TestFileFormat:
    def test_round_trip(self, tmp_path):
        _, violation = _one_violation()
        path = tmp_path / "baseline.txt"
        path.write_text(format_baseline([violation]))
        loaded = load_baseline(path)
        assert loaded.entries == frozenset({
            FlowBaseline.fingerprint_of(violation)
        })

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "baseline.txt"
        path.write_text(
            "# header\n\n"
            "RL101 repro.env.fake bad:ms+mj  # justified\n"
        )
        assert load_baseline(path).entries == frozenset({
            ("RL101", "repro.env.fake", "bad:ms+mj")
        })

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "baseline.txt"
        path.write_text("RL101 too many parts here\n")
        with pytest.raises(ConfigError):
            load_baseline(path)

    def test_missing_explicit_path_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            load_baseline(tmp_path / "absent.txt")
