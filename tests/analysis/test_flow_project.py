"""Tests for the flow analysis project model (import/call graph)."""

import ast

import pytest

from repro.analysis import Project
from repro.common import ConfigError


def _project(**sources):
    return Project.from_sources(
        {name.replace("__", "."): text for name, text in sources.items()}
    )


class TestImportEdges:
    def test_module_scope_import_recorded(self):
        project = _project(repro__env__a="import repro.common\n")
        edges = project.modules["repro.env.a"].imports
        assert [(e.target, e.module_scope) for e in edges] == [
            ("repro.common", True)
        ]

    def test_function_scope_import_is_lazy(self):
        project = _project(repro__env__a=(
            "def build():\n"
            "    from repro.serving.pipeline import ServingPipeline\n"
            "    return ServingPipeline\n"
        ))
        edges = project.modules["repro.env.a"].imports
        assert [(e.target, e.module_scope) for e in edges] == [
            ("repro.serving.pipeline", False)
        ]

    def test_relative_import_resolved(self):
        project = _project(repro__env__a="from . import workload\n")
        edges = project.modules["repro.env.a"].imports
        assert edges[0].target == "repro.env"

    def test_external_imports_are_not_edges(self):
        project = _project(repro__env__a="import numpy as np\n")
        assert project.modules["repro.env.a"].imports == []


class TestAliases:
    def test_import_as_alias_expands(self):
        project = _project(repro__a="import numpy as np\n")
        assert project.expand_alias("repro.a", "np.random.default_rng") \
            == "numpy.random.default_rng"

    def test_from_import_alias_expands(self):
        project = _project(
            repro__a="from repro.common import make_rng as rng\n"
        )
        assert project.expand_alias("repro.a", "rng") \
            == "repro.common.make_rng"

    def test_unknown_root_passes_through(self):
        project = _project(repro__a="x = 1\n")
        assert project.expand_alias("repro.a", "foo.bar") == "foo.bar"


class TestCallResolution:
    def _resolve(self, project, module, source, owner=None):
        call = ast.parse(source, mode="eval").body
        assert isinstance(call, ast.Call)
        return project.resolve_call(module, owner, call)

    def test_local_def_wins(self):
        project = _project(repro__a=(
            "def cost(latency_ms):\n"
            "    return latency_ms\n"
        ))
        found = self._resolve(project, "repro.a", "cost(1.0)")
        assert found.key == ("repro.a", "cost")
        assert found.params == ("latency_ms",)

    def test_imported_symbol_resolves_across_modules(self):
        project = _project(
            repro__models__timing=(
                "def cost_of(latency_ms):\n"
                "    return latency_ms\n"
            ),
            repro__env__user=(
                "from repro.models.timing import cost_of\n"
            ),
        )
        found = self._resolve(project, "repro.env.user", "cost_of(2.0)")
        assert found.key == ("repro.models.timing", "cost_of")

    def test_self_method_resolves_within_class(self):
        project = _project(repro__a=(
            "class Engine:\n"
            "    def step(self):\n"
            "        return self.cost(1.0)\n"
            "    def cost(self, latency_ms):\n"
            "        return latency_ms\n"
        ))
        found = self._resolve(project, "repro.a", "self.cost(1.0)",
                              owner="Engine")
        assert found.qualname == "Engine.cost"

    def test_ambiguous_bare_name_resolves_to_none(self):
        project = _project(
            repro__a="def run():\n    pass\n",
            repro__b="def run():\n    pass\n",
        )
        assert self._resolve(project, "repro.c", "run()") is None

    def test_unique_method_name_fallback(self):
        project = _project(repro__a=(
            "class Clock:\n"
            "    def rewind(self, at_ms):\n"
            "        return at_ms\n"
        ))
        found = self._resolve(project, "repro.b", "anything.rewind(0.0)")
        assert found.qualname == "Clock.rewind"


class TestConstruction:
    def test_syntax_error_is_config_error(self):
        with pytest.raises(ConfigError):
            Project.from_sources({"repro.bad": "def broken(:\n"})

    def test_functions_indexed_by_qualname(self):
        project = _project(repro__a=(
            "class Outer:\n"
            "    def method(self):\n"
            "        def inner():\n"
            "            pass\n"
        ))
        assert ("repro.a", "Outer.method") in project.functions
        assert ("repro.a", "Outer.method.inner") in project.functions
