"""CI gate: the vectorized decision plane holds a zero-allowlist bar.

The serving package and the core modules the SoA decision plane runs
through (engine, Q-table, environment) are linted here with the
allowlist and flow baseline *disabled*: a new finding in any of them
fails immediately instead of ratcheting into the grandfathered debt.
The two modules with committed debt are pinned to exactly that debt —
``qlearning.py``'s lone RL001 (``learning_rate`` is the paper's
dimensionless alpha) and ``engine.py``'s RL102 overhead timers (the
paper's Table-V instrumentation) — so any *additional* finding there
still fails.
"""

from pathlib import Path

from repro.analysis import analyze_paths, lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"
SERVING = SRC / "serving"
ENGINE = SRC / "core" / "engine.py"
QLEARNING = SRC / "core" / "qlearning.py"
ENVIRONMENT = SRC / "env" / "environment.py"


class TestReprolintZeroAllowlist:
    def test_serving_and_core_hot_path_are_spotless(self):
        report = lint_paths([SERVING, ENGINE, ENVIRONMENT],
                            allowlist=False)
        assert not report.violations, "\n" + report.format()

    def test_qlearning_debt_is_exactly_the_paper_alpha(self):
        report = lint_paths([QLEARNING], allowlist=False)
        found = [(violation.rule, violation.name)
                 for violation in report.violations]
        assert found == [("RL001", "learning_rate")], \
            "\n" + report.format()


class TestFlowZeroBaseline:
    def test_serving_and_state_plane_carry_no_flow_debt(self):
        report = analyze_paths([SERVING, QLEARNING, ENVIRONMENT],
                               baseline=False)
        assert not report.violations, "\n" + report.format()

    def test_engine_debt_is_exactly_the_overhead_timers(self):
        report = analyze_paths([ENGINE], baseline=False)
        found = sorted((violation.rule, violation.name)
                       for violation in report.violations)
        assert found == [
            ("RL102", "AutoScale._complete_step:time.perf_counter"),
            ("RL102", "AutoScale.select_action:time.perf_counter"),
            ("RL102", "AutoScale.select_action_batch:time.perf_counter"),
        ], "\n" + report.format()
