"""Failure-injection tests: connectivity loss and recovery.

The paper's weak-signal scenarios degrade the link; real phones also lose
it entirely (tunnels, elevators, AP reboots).  These tests verify both
the substrate (an outage makes remote execution catastrophically slow,
never impossible) and the scheduler (a trained engine re-learns away from
the cloud during an outage and back after it).
"""

import pytest

from repro.common import ConfigError, make_rng
from repro.core.engine import AutoScale
from repro.env.environment import EdgeCloudEnvironment
from repro.env.qos import use_case_for
from repro.env.scenarios import Scenario
from repro.hardware.devices import build_device
from repro.interference.corunner import no_corunner
from repro.wireless.signal import ConstantSignal, OutageSignal


def outage_scenario(period_ms=100_000.0, outage_ms=50_000.0):
    return Scenario(
        name="outage",
        description="periodic Wi-Fi dead windows",
        corunner=no_corunner(),
        wlan_signal=OutageSignal(base=ConstantSignal(-55.0),
                                 period_ms=period_ms,
                                 outage_ms=outage_ms),
        p2p_signal=ConstantSignal(-55.0),
        dynamic=True,
    )


class TestOutageSignal:
    def test_windows(self):
        signal = OutageSignal(period_ms=100.0, outage_ms=25.0)
        rng = make_rng(0)
        assert signal.sample(rng, 10.0) == -100.0
        assert signal.sample(rng, 30.0) == pytest.approx(-55.0)
        assert signal.sample(rng, 110.0) == -100.0  # wraps

    def test_in_outage_predicate(self):
        signal = OutageSignal(period_ms=100.0, outage_ms=25.0)
        assert signal.in_outage(0.0)
        assert not signal.in_outage(25.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            OutageSignal(period_ms=0.0)
        with pytest.raises(ConfigError):
            OutageSignal(period_ms=100.0, outage_ms=100.0)


class TestSubstrateUnderOutage:
    def test_cloud_becomes_catastrophic_not_impossible(self, zoo):
        """The simulator degrades gracefully: an offload during an outage
        completes, but at an absurd latency/energy that any scheduler
        will learn to avoid."""
        env = EdgeCloudEnvironment(build_device("mi8pro"),
                                   scenario=outage_scenario(), seed=0)
        case = use_case_for(zoo["resnet_50"])
        cloud = next(t for t in env.targets()
                     if t.key == "cloud/gpu/fp32")
        observation = env.observe()  # clock at 0 -> inside the outage
        assert observation.rssi_wlan_dbm == -100.0
        result = env.execute(case.network, cloud, observation)
        assert result.latency_ms > 10 * case.qos_ms


class TestSchedulerAdaptation:
    def test_engine_leaves_cloud_during_outage(self, zoo):
        """Train at strong signal (cloud optimal for ResNet-50); the
        outage state is a *different* Table-I state, so the engine
        learns an on-device/connected policy for it without forgetting
        the strong-signal policy."""
        env = EdgeCloudEnvironment(build_device("mi8pro"),
                                   scenario=outage_scenario(), seed=1)
        engine = AutoScale(env, seed=1)
        case = use_case_for(zoo["resnet_50"])
        engine.run(case, 250)  # spans several outage cycles
        engine.freeze()

        from repro.env.observation import Observation
        outage_obs = Observation(rssi_wlan_dbm=-100.0)
        strong_obs = Observation(rssi_wlan_dbm=-55.0)
        outage_pick = engine.predict(case.network, outage_obs)
        strong_pick = engine.predict(case.network, strong_obs)
        assert outage_pick.location.value != "cloud"
        assert strong_pick.location.value == "cloud"

    def test_p2p_survives_wlan_outage(self, zoo):
        """Wi-Fi Direct is a separate radio: the connected edge device
        remains reachable through a WLAN outage (the Fig. 6 S4 logic,
        taken to the extreme)."""
        env = EdgeCloudEnvironment(build_device("moto_x_force"),
                                   scenario=outage_scenario(), seed=2)
        case = use_case_for(zoo["inception_v1"])
        from repro.baselines.oracle import OptOracle
        from repro.env.observation import Observation
        target = OptOracle(cache=False).select(
            env, case, Observation(rssi_wlan_dbm=-100.0)
        )
        assert target.location.value == "connected"
