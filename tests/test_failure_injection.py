"""Failure-injection tests: connectivity loss and recovery.

The paper's weak-signal scenarios degrade the link; real phones also lose
it entirely (tunnels, elevators, AP reboots).  These tests verify both
the substrate (an outage makes remote execution catastrophically slow,
never impossible) and the scheduler (a trained engine re-learns away from
the cloud during an outage and back after it) — plus the chaos
regressions of the ``repro.faults`` request-level machinery: default-path
bit-parity, retry/degradation behaviour, breaker determinism, and the
failed-attempt energy-conservation property.
"""

import pytest

from repro.common import ConfigError, make_rng
from repro.core.action import ActionSpace
from repro.core.engine import AutoScale
from repro.core.service import AutoScaleService
from repro.env.environment import EdgeCloudEnvironment
from repro.env.qos import use_case_for
from repro.env.scenarios import Scenario
from repro.faults import FaultPlan, OutageWindow, ResiliencePolicy
from repro.hardware.devices import build_device
from repro.interference.corunner import no_corunner
from repro.wireless.signal import ConstantSignal, OutageSignal


def outage_scenario(period_ms=100_000.0, outage_ms=50_000.0):
    return Scenario(
        name="outage",
        description="periodic Wi-Fi dead windows",
        corunner=no_corunner(),
        wlan_signal=OutageSignal(base=ConstantSignal(-55.0),
                                 period_ms=period_ms,
                                 outage_ms=outage_ms),
        p2p_signal=ConstantSignal(-55.0),
        dynamic=True,
    )


class TestOutageSignal:
    def test_windows(self):
        signal = OutageSignal(period_ms=100.0, outage_ms=25.0)
        rng = make_rng(0)
        assert signal.sample(rng, 10.0) == -100.0
        assert signal.sample(rng, 30.0) == pytest.approx(-55.0)
        assert signal.sample(rng, 110.0) == -100.0  # wraps

    def test_in_outage_predicate(self):
        signal = OutageSignal(period_ms=100.0, outage_ms=25.0)
        assert signal.in_outage(0.0)
        assert not signal.in_outage(25.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            OutageSignal(period_ms=0.0)
        with pytest.raises(ConfigError):
            OutageSignal(period_ms=100.0, outage_ms=100.0)


class TestSubstrateUnderOutage:
    def test_cloud_becomes_catastrophic_not_impossible(self, zoo):
        """The simulator degrades gracefully: an offload during an outage
        completes, but at an absurd latency/energy that any scheduler
        will learn to avoid."""
        env = EdgeCloudEnvironment(build_device("mi8pro"),
                                   scenario=outage_scenario(), seed=0)
        case = use_case_for(zoo["resnet_50"])
        cloud = next(t for t in env.targets()
                     if t.key == "cloud/gpu/fp32")
        observation = env.observe()  # clock at 0 -> inside the outage
        assert observation.rssi_wlan_dbm == -100.0
        result = env.execute(case.network, cloud, observation)
        assert result.latency_ms > 10 * case.qos_ms


class TestSchedulerAdaptation:
    def test_engine_leaves_cloud_during_outage(self, zoo):
        """Train at strong signal (cloud optimal for ResNet-50); the
        outage state is a *different* Table-I state, so the engine
        learns an on-device/connected policy for it without forgetting
        the strong-signal policy."""
        env = EdgeCloudEnvironment(build_device("mi8pro"),
                                   scenario=outage_scenario(), seed=1)
        engine = AutoScale(env, seed=1)
        case = use_case_for(zoo["resnet_50"])
        engine.run(case, 250)  # spans several outage cycles
        engine.freeze()

        from repro.env.observation import Observation
        outage_obs = Observation(rssi_wlan_dbm=-100.0)
        strong_obs = Observation(rssi_wlan_dbm=-55.0)
        outage_pick = engine.predict(case.network, outage_obs)
        strong_pick = engine.predict(case.network, strong_obs)
        assert outage_pick.location.value != "cloud"
        assert strong_pick.location.value == "cloud"

    def test_p2p_survives_wlan_outage(self, zoo):
        """Wi-Fi Direct is a separate radio: the connected edge device
        remains reachable through a WLAN outage (the Fig. 6 S4 logic,
        taken to the extreme)."""
        env = EdgeCloudEnvironment(build_device("moto_x_force"),
                                   scenario=outage_scenario(), seed=2)
        case = use_case_for(zoo["inception_v1"])
        from repro.baselines.oracle import OptOracle
        from repro.env.observation import Observation
        target = OptOracle(cache=False).select(
            env, case, Observation(rssi_wlan_dbm=-100.0)
        )
        assert target.location.value == "connected"


# ----------------------------------------------------------------------
# Chaos regressions: the repro.faults request-level machinery
# ----------------------------------------------------------------------


def _service(seed, faults=None, resilience=None, action_space=None):
    env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                               seed=seed, faults=faults)
    engine = AutoScale(env, seed=seed, action_space=action_space)
    return AutoScaleService(env, engine=engine, resilience=resilience)


def _remote_only_space(env):
    return ActionSpace([t for t in env.targets() if t.is_remote])


class TestDefaultPathParity:
    def test_disabled_machinery_is_bit_identical(self, zoo):
        """``FaultPlan.none()`` + ``ResiliencePolicy.disabled()`` must
        reproduce the plain serving path bit-for-bit: same RNG stream,
        same decisions, same measurements, same learned table."""
        case = use_case_for(zoo["resnet_50"])
        plain = _service(31)
        explicit = _service(31, faults=FaultPlan.none(),
                            resilience=ResiliencePolicy.disabled())
        plain.register(case)
        explicit.register(case)
        for _ in range(60):
            a = plain.handle(case.name)
            b = explicit.handle(case.name)
            assert (a.latency_ms, a.energy_mj, a.estimated_energy_mj,
                    a.target_key) \
                == (b.latency_ms, b.energy_mj, b.estimated_energy_mj,
                    b.target_key)
        assert (plain.engine.qtable.values
                == explicit.engine.qtable.values).all()

    def test_no_mask_exploration_is_unchanged(self, zoo):
        """``select_action(allowed=None)`` must draw exactly as before —
        one integer over the full space — so trained behaviour and
        exploration streams are unaffected by the masking feature."""
        case = use_case_for(zoo["resnet_50"])
        env = EdgeCloudEnvironment(build_device("mi8pro"), seed=5)
        engine = AutoScale(env, seed=5)
        twin_rng = make_rng(5)
        # Replay the table-initialization draw the engine's rng made.
        twin_rng.uniform(engine.config.init_low, engine.config.init_high,
                         size=engine.qtable.values.shape)
        state = engine.observe_state(case.network, env.observe())
        for _ in range(50):
            action, explored = engine.select_action(state)
            if twin_rng.random() < engine.config.epsilon:
                assert explored
                assert action == int(twin_rng.integers(
                    len(engine.action_space)))
            else:
                assert not explored


class TestResilientServing:
    def test_retry_then_succeed(self, zoo):
        """Under a 50% abort rate a remote-only service recovers within
        its retry budget: some requests succeed only after retries."""
        case = use_case_for(zoo["resnet_50"])
        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   seed=17, faults=FaultPlan(abort_prob=0.5))
        engine = AutoScale(env, seed=17,
                           action_space=_remote_only_space(env))
        service = AutoScaleService(env, engine=engine, seed=17,
                                   resilience=ResiliencePolicy(
                                       max_retries=4))
        service.register(case)
        for _ in range(40):
            result = service.handle(case.name)
            assert not result.failed
        retried_ok = [r for r in service.trace.records
                      if r.status == "ok" and r.retries > 0]
        assert retried_ok, "no request recovered via retry"

    def test_exhausted_retries_degrade_to_local(self, zoo):
        """With every remote attempt aborted, the resilient service
        still delivers every request — from a local target that meets
        the accuracy constraint."""
        case = use_case_for(zoo["resnet_50"])
        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   seed=23, faults=FaultPlan(abort_prob=1.0))
        engine = AutoScale(env, seed=23,
                           action_space=_remote_only_space(env))
        service = AutoScaleService(env, engine=engine, seed=23,
                                   resilience=ResiliencePolicy(
                                       max_retries=1))
        service.register(case)
        for _ in range(15):
            result = service.handle(case.name)
            assert not result.failed
            assert result.target_key.startswith("local/")
            assert case.meets_accuracy(result.accuracy_pct)
        summary = service.trace.summary()
        assert summary["availability_pct"] == 100.0
        assert summary["degraded_pct"] == 100.0
        assert all(r.retries == 1 for r in service.trace.records)

    def test_naive_service_surfaces_failures(self, zoo):
        case = use_case_for(zoo["resnet_50"])
        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   seed=23, faults=FaultPlan(abort_prob=1.0))
        engine = AutoScale(env, seed=23,
                           action_space=_remote_only_space(env))
        service = AutoScaleService(env, engine=engine, seed=23)
        service.register(case)
        failures = sum(service.handle(case.name).failed
                       for _ in range(15))
        assert failures == 15
        assert service.trace.summary()["availability_pct"] == 0.0


class TestBreakerIntegration:
    def _run(self, zoo, seed):
        case = use_case_for(zoo["resnet_50"])
        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   seed=seed,
                                   faults=FaultPlan(abort_prob=1.0))
        engine = AutoScale(env, seed=seed,
                           action_space=_remote_only_space(env))
        service = AutoScaleService(env, engine=engine, seed=seed,
                                   resilience=ResiliencePolicy(
                                       max_retries=2))
        service.register(case)
        for _ in range(30):
            service.handle(case.name)
        return service

    def test_breakers_open_under_sustained_failure(self, zoo):
        service = self._run(zoo, seed=41)
        states = service.breaker_states()
        assert states, "no breakers were created"
        assert any(state in ("open", "half_open")
                   for state in states.values())
        assert all(b.times_opened >= 1
                   for b in service._breakers.values())

    def test_breaker_evolution_is_deterministic(self, zoo):
        first = self._run(zoo, seed=41)
        second = self._run(zoo, seed=41)
        assert first.breaker_states() == second.breaker_states()
        assert first.trace.summary() == second.trace.summary()

    def test_open_breakers_mask_selection(self, zoo):
        service = self._run(zoo, seed=41)
        allowed = service._allowed_actions()
        if allowed is None:
            pytest.skip("no breaker open at snapshot time")
        space = service.engine.action_space
        for index in range(len(space)):
            if not allowed[index]:
                key = space.target(index).key
                assert service.breaker_states()[key] == "open"


class TestEnergyConservation:
    def test_resilient_ledger_matches_trace(self, zoo):
        """Every millijoule the injector bills to dead attempts shows up
        in the trace's failed-energy accounting (resilient path)."""
        case = use_case_for(zoo["resnet_50"])
        env = EdgeCloudEnvironment(
            build_device("mi8pro"), scenario="S1", seed=29,
            faults=FaultPlan(abort_prob=0.4, loss_scale=1.0,
                             outages=(OutageWindow(
                                 "cloud", start_ms=2_000.0,
                                 duration_ms=2_000.0,
                                 period_ms=8_000.0),)),
        )
        engine = AutoScale(env, seed=29,
                           action_space=_remote_only_space(env))
        service = AutoScaleService(env, engine=engine, seed=29,
                                   resilience=ResiliencePolicy(
                                       max_retries=3))
        service.register(case)
        for _ in range(50):
            service.handle(case.name)
        traced_mj = sum(r.failed_energy_mj for r in service.trace.records)
        traced_mj += sum(r.energy_mj for r in service.trace.records
                         if r.status == "failed")
        assert env.fault_stats.billed_energy_mj \
            == pytest.approx(traced_mj)
        assert service.trace.summary()["failed_energy_mj"] \
            == pytest.approx(traced_mj)

    def test_naive_ledger_matches_trace(self, zoo):
        case = use_case_for(zoo["resnet_50"])
        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   seed=29,
                                   faults=FaultPlan(abort_prob=0.4))
        engine = AutoScale(env, seed=29,
                           action_space=_remote_only_space(env))
        service = AutoScaleService(env, engine=engine, seed=29)
        service.register(case)
        for _ in range(50):
            service.handle(case.name)
        traced_mj = sum(r.energy_mj for r in service.trace.records
                        if r.status == "failed")
        assert env.fault_stats.billed_energy_mj \
            == pytest.approx(traced_mj)
