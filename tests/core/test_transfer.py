"""Tests for cross-device Q-table transfer."""

import numpy as np
import pytest

from repro.common import ConfigError
from repro.core.action import ActionSpace
from repro.core.qlearning import QTable
from repro.core.transfer import map_actions, transfer_q_table
from repro.env.environment import EdgeCloudEnvironment
from repro.hardware.devices import build_device


@pytest.fixture()
def mi8_space():
    env = EdgeCloudEnvironment(build_device("mi8pro"), seed=0)
    return ActionSpace.from_environment(env)


@pytest.fixture()
def moto_space():
    env = EdgeCloudEnvironment(build_device("moto_x_force"), seed=0)
    return ActionSpace.from_environment(env)


class TestMapActions:
    def test_every_moto_action_maps_from_mi8(self, mi8_space, moto_space):
        """The Moto's capabilities are a subset of the Mi8Pro's."""
        mapping = map_actions(mi8_space, moto_space)
        assert len(mapping) == len(moto_space)
        assert all(m is not None for m in mapping)

    def test_mapped_slots_match(self, mi8_space, moto_space):
        mapping = map_actions(mi8_space, moto_space)
        for target_index, source_index in enumerate(mapping):
            a = moto_space.target(target_index)
            b = mi8_space.target(source_index)
            assert (a.location, a.role, a.precision) \
                == (b.location, b.role, b.precision)

    def test_dsp_has_no_source_on_dsp_less_device(self, mi8_space,
                                                  moto_space):
        mapping = map_actions(moto_space, mi8_space)
        missing = [mi8_space.target(i).key
                   for i, m in enumerate(mapping) if m is None]
        assert missing == ["local/dsp/int8/vf0"]

    def test_vf_positions_align_proportionally(self, mi8_space,
                                               moto_space):
        mapping = map_actions(mi8_space, moto_space)
        # The Moto CPU's top step must map to the Mi8Pro CPU's top step.
        for target_index, source_index in enumerate(mapping):
            target = moto_space.target(target_index)
            if target.key == "local/cpu/fp32/vf14":
                assert mi8_space.target(source_index).key \
                    == "local/cpu/fp32/vf22"

    def test_identity_mapping_for_same_space(self, mi8_space):
        mapping = map_actions(mi8_space, mi8_space)
        assert mapping == list(range(len(mi8_space)))


class TestTransferQTable:
    def test_values_copied_by_slot(self, mi8_space, moto_space):
        source = QTable(16, len(mi8_space), seed=1)
        source.values[:] = np.arange(
            16 * len(mi8_space), dtype=float
        ).reshape(16, -1)
        target = QTable(16, len(moto_space), seed=2)
        transferred = transfer_q_table(source, mi8_space, target,
                                       moto_space)
        assert transferred == len(moto_space)
        mapping = map_actions(mi8_space, moto_space)
        for column, source_index in enumerate(mapping):
            assert np.allclose(target.values[:, column],
                               source.values[:, source_index])

    def test_blend(self, mi8_space, moto_space):
        source = QTable(4, len(mi8_space), seed=1)
        target = QTable(4, len(moto_space), seed=2)
        fresh = target.values.copy()
        transfer_q_table(source, mi8_space, target, moto_space, blend=0.5)
        mapping = map_actions(mi8_space, moto_space)
        expected = 0.5 * source.values[:, mapping[0]] + 0.5 * fresh[:, 0]
        assert np.allclose(target.values[:, 0], expected, atol=1e-6)

    def test_state_space_mismatch_rejected(self, mi8_space, moto_space):
        source = QTable(8, len(mi8_space), seed=1)
        target = QTable(16, len(moto_space), seed=2)
        with pytest.raises(ConfigError):
            transfer_q_table(source, mi8_space, target, moto_space)

    def test_bad_blend_rejected(self, mi8_space, moto_space):
        source = QTable(4, len(mi8_space), seed=1)
        target = QTable(4, len(moto_space), seed=2)
        with pytest.raises(ConfigError):
            transfer_q_table(source, mi8_space, target, moto_space,
                             blend=0.0)

    def test_unmapped_actions_keep_fresh_values(self, mi8_space,
                                                moto_space):
        source = QTable(4, len(moto_space), seed=1)
        target = QTable(4, len(mi8_space), seed=2)
        fresh = target.values.copy()
        transfer_q_table(source, moto_space, target, mi8_space)
        dsp_column = mi8_space.index_of(
            next(t for t in mi8_space if t.role == "dsp"
                 and t.location.value == "local")
        )
        assert np.allclose(target.values[:, dsp_column],
                           fresh[:, dsp_column])
