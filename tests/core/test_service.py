"""Tests for the AutoScaleService facade."""

import pytest

from repro.common import ConfigError
from repro.core.service import AutoScaleService
from repro.env.environment import EdgeCloudEnvironment
from repro.env.qos import use_case_for
from repro.hardware.devices import build_device


@pytest.fixture()
def service(zoo):
    env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                               seed=6)
    service = AutoScaleService(env, seed=6)
    service.register(use_case_for(zoo["mobilenet_v3"]))
    service.register(use_case_for(zoo["mobilebert"]))
    return service


class TestRegistry:
    def test_register_and_lookup(self, service, zoo):
        case = service.use_case("mobilenet_v3_non_streaming")
        assert case.network.name == "mobilenet_v3"

    def test_services_listed(self, service):
        assert service.services == ("mobilebert_translation",
                                    "mobilenet_v3_non_streaming")

    def test_unknown_service(self, service):
        with pytest.raises(KeyError, match="known"):
            service.use_case("face_unlock")


class TestServing:
    def test_handle_returns_result_and_traces(self, service):
        result = service.handle("mobilenet_v3_non_streaming")
        assert result.latency_ms > 0
        assert len(service.trace) == 1

    def test_trace_rolls_over(self, zoo):
        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   seed=6)
        service = AutoScaleService(env, seed=6, trace_limit=10)
        service.register(use_case_for(zoo["mobilenet_v3"]))
        for _ in range(25):
            service.handle("mobilenet_v3_non_streaming")
        assert len(service.trace) <= 10

    def test_learning_toggle(self, service):
        assert service.learning
        service.set_learning(False)
        before = service.engine.qtable.update_count
        service.handle("mobilenet_v3_non_streaming")
        assert service.engine.qtable.update_count == before
        service.set_learning(True)
        service.handle("mobilenet_v3_non_streaming")
        assert service.engine.qtable.update_count == before + 1

    def test_status_snapshot(self, service):
        for _ in range(5):
            service.handle("mobilenet_v3_non_streaming")
        status = service.status()
        assert status["inferences_served"] == 5
        assert status["num_inferences"] == 5
        assert status["learning"] is True
        assert status["qtable_mb"] > 0.5

    def test_bad_trace_limit(self, zoo):
        env = EdgeCloudEnvironment(build_device("mi8pro"), seed=6)
        with pytest.raises(ConfigError):
            AutoScaleService(env, trace_limit=0)


class TestCheckpointRestore:
    def test_roundtrip(self, service, tmp_path, zoo):
        for _ in range(40):
            service.handle("mobilenet_v3_non_streaming")
        service.checkpoint(tmp_path / "svc")

        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   seed=7)
        restored = AutoScaleService.restore(tmp_path / "svc", env)
        restored.register(use_case_for(zoo["mobilenet_v3"]))
        restored.set_learning(False)
        result = restored.handle("mobilenet_v3_non_streaming")
        assert result.latency_ms > 0
        # The restored table carries the original's experience.
        assert restored.engine.qtable.update_count \
            == service.engine.qtable.update_count

    def test_checkpoint_includes_trace(self, service, tmp_path):
        service.handle("mobilenet_v3_non_streaming")
        service.checkpoint(tmp_path / "svc")
        assert (tmp_path / "svc" / "trace.jsonl").exists()

    def test_restore_reloads_trace(self, service, tmp_path, zoo):
        for _ in range(12):
            service.handle("mobilenet_v3_non_streaming")
        service.checkpoint(tmp_path / "svc")
        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   seed=7)
        restored = AutoScaleService.restore(tmp_path / "svc", env)
        assert len(restored.trace) == 12
        assert restored.trace.records == service.trace.records

    def test_restore_trace_respects_limit(self, service, tmp_path):
        for _ in range(12):
            service.handle("mobilenet_v3_non_streaming")
        service.checkpoint(tmp_path / "svc")
        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   seed=7)
        restored = AutoScaleService.restore(tmp_path / "svc", env,
                                            trace_limit=5)
        assert len(restored.trace) == 5
        assert restored.trace.records[-1] == service.trace.records[-1]

    def test_restore_without_trace_starts_empty(self, service, tmp_path):
        from repro.core.persistence import save_engine
        save_engine(service.engine, tmp_path / "bare")
        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   seed=7)
        restored = AutoScaleService.restore(tmp_path / "bare", env)
        assert len(restored.trace) == 0


class TestResilienceSurface:
    def test_disabled_by_default(self, service):
        assert not service.resilience.enabled
        status = service.status()
        assert status["resilience_enabled"] is False
        assert status["breakers"] == {}

    def test_status_reports_fault_ledger(self, service):
        service.handle("mobilenet_v3_non_streaming")
        status = service.status()
        assert status["faults"]["attempts"] >= 0
        assert status["availability_pct"] == 100.0
