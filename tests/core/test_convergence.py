"""Tests for convergence detection."""

import pytest

from repro.common import ConfigError
from repro.core.convergence import ConvergenceDetector, episodes_to_converge


class TestDetector:
    def test_stable_rewards_same_action_converge(self):
        detector = ConvergenceDetector(window=5, stable_steps=3,
                                       action_streak=3)
        converged_at = None
        for step in range(40):
            if detector.observe(-1.0 + 0.001 * (step % 2),
                                executed_action=7):
                converged_at = detector.converged_at
                break
        assert converged_at is not None
        assert converged_at < 20

    def test_action_sweep_does_not_converge(self):
        """The optimistic-init sweep phase — stable-looking rewards but a
        different action every step — must not read as converged."""
        detector = ConvergenceDetector(window=5, stable_steps=3,
                                       action_streak=3)
        for step in range(40):
            assert not detector.observe(-20.0, executed_action=step)
        assert not detector.converged

    def test_drifting_rewards_do_not_converge(self):
        detector = ConvergenceDetector(window=5, stable_steps=3,
                                       tolerance=0.02, action_streak=1)
        for step in range(30):
            detector.observe(-10.0 + step, executed_action=0)
        assert not detector.converged

    def test_converged_is_sticky(self):
        detector = ConvergenceDetector(window=4, stable_steps=2,
                                       action_streak=2)
        for _ in range(20):
            detector.observe(-1.0, executed_action=0)
        at = detector.converged_at
        detector.observe(-99.0, executed_action=3)
        assert detector.converged_at == at

    def test_reset(self):
        detector = ConvergenceDetector(window=4, stable_steps=2,
                                       action_streak=2)
        for _ in range(20):
            detector.observe(-1.0, executed_action=0)
        assert detector.converged
        detector.reset()
        assert not detector.converged
        assert detector.converged_at is None

    def test_no_action_tracking_mode(self):
        detector = ConvergenceDetector(window=4, stable_steps=2)
        for _ in range(20):
            detector.observe(-1.0)
        assert detector.converged

    def test_validation(self):
        with pytest.raises(ConfigError):
            ConvergenceDetector(window=1)
        with pytest.raises(ConfigError):
            ConvergenceDetector(tolerance=0.0)
        with pytest.raises(ConfigError):
            ConvergenceDetector(stable_steps=0)


class TestOffline:
    def test_flat_series_converges_quickly(self):
        rewards = [-1.0] * 50
        assert episodes_to_converge(rewards, window=10) < 25

    def test_never_converging_series(self):
        rewards = [-(i ** 1.5) for i in range(30)]
        assert episodes_to_converge(rewards, window=10,
                                    tolerance=0.01) == 30

    def test_converges_after_transient(self):
        rewards = [-10.0, -8.0, -5.0, -3.0, -2.0] + [-1.0] * 45
        at = episodes_to_converge(rewards, window=10)
        assert 10 <= at <= 30
