"""Tests for the equation (5) reward."""

import pytest

from repro.common import ConfigError
from repro.core.reward import RewardConfig, compute_reward
from repro.env.qos import UseCase
from repro.env.result import ExecutionResult


def _result(latency=20.0, energy=80.0, accuracy=70.0):
    return ExecutionResult(
        latency_ms=latency, energy_mj=energy, estimated_energy_mj=energy,
        accuracy_pct=accuracy, target_key="local/cpu/fp32/vf0",
    )


def _case(zoo, qos=50.0, accuracy_target=None):
    return UseCase("case", zoo["mobilenet_v3"], qos_ms=qos,
                   accuracy_target=accuracy_target)


class TestAccuracyBranch:
    def test_accuracy_failure_dominates(self, zoo):
        case = _case(zoo, accuracy_target=75.0)
        failing = compute_reward(_result(accuracy=60.0), case)
        # Worse than even an absurdly expensive accurate action.
        expensive = compute_reward(_result(energy=4000.0),
                                   _case(zoo, accuracy_target=None))
        assert failing < expensive

    def test_failure_ordered_by_accuracy(self, zoo):
        case = _case(zoo, accuracy_target=75.0)
        low = compute_reward(_result(accuracy=50.0), case)
        high = compute_reward(_result(accuracy=70.0), case)
        assert high > low

    def test_raw_mode_failure_is_acc_minus_100(self, zoo):
        case = _case(zoo, accuracy_target=75.0)
        reward = compute_reward(_result(accuracy=60.0), case,
                                RewardConfig(normalize=False))
        assert reward == pytest.approx(-40.0)


class TestQosBranches:
    def test_lower_energy_higher_reward(self, zoo):
        case = _case(zoo)
        assert (compute_reward(_result(energy=50.0), case)
                > compute_reward(_result(energy=100.0), case))

    def test_latency_bonus_inside_qos(self, zoo):
        """Eq. 5 rewards racing *to* the deadline, not past it."""
        case = _case(zoo, qos=50.0)
        fast = compute_reward(_result(latency=10.0), case)
        near_deadline = compute_reward(_result(latency=49.0), case)
        assert near_deadline > fast

    def test_no_latency_bonus_when_violating(self, zoo):
        case = _case(zoo, qos=50.0)
        config = RewardConfig()
        just_in = compute_reward(_result(latency=50.0), case, config)
        just_out = compute_reward(_result(latency=50.1), case, config)
        # Dropping the bonus creates a step at the deadline of about
        # alpha * qos_seconds.
        assert just_in - just_out > 0.8 * 0.1 * 0.05

    def test_latency_bonus_is_a_tie_break(self, zoo):
        """The bonus must never outvote a real energy difference."""
        case = _case(zoo, qos=50.0)
        cheap_fast = compute_reward(_result(latency=10.0, energy=50.0),
                                    case)
        dear_slow = compute_reward(_result(latency=49.0, energy=55.0),
                                   case)
        assert cheap_fast > dear_slow

    def test_qos_violating_actions_compared_on_energy(self, zoo):
        case = _case(zoo, qos=10.0)
        cheap = compute_reward(_result(latency=20.0, energy=50.0), case)
        dear = compute_reward(_result(latency=20.0, energy=100.0), case)
        assert cheap > dear


class TestUnits:
    def test_normalized_energy_reference(self, zoo):
        case = _case(zoo)
        config = RewardConfig(energy_ref_mj=100.0)
        reward = compute_reward(
            _result(latency=60.0, energy=100.0, accuracy=70.0), case,
            config,
        )
        # Violating branch: -E/ref + beta * acc = -1 + 0.07.
        assert reward == pytest.approx(-1.0 + 0.1 * 0.7)

    def test_raw_mode_uses_joules_and_seconds(self, zoo):
        case = _case(zoo)
        config = RewardConfig(normalize=False)
        reward = compute_reward(
            _result(latency=40.0, energy=2000.0, accuracy=70.0), case,
            config,
        )
        assert reward == pytest.approx(-2.0 + 0.1 * 0.04 + 0.1 * 0.7)

    def test_energy_override(self, zoo):
        """Engines train on the *estimated* energy by default."""
        case = _case(zoo)
        result = ExecutionResult(
            latency_ms=60.0, energy_mj=200.0, estimated_energy_mj=100.0,
            accuracy_pct=70.0, target_key="x",
        )
        default = compute_reward(result, case)
        truth = compute_reward(result, case, energy_mj=result.energy_mj)
        assert default > truth


class TestConfig:
    def test_negative_weights_rejected(self):
        with pytest.raises(ConfigError):
            RewardConfig(alpha=-0.1)

    def test_bad_reference_rejected(self):
        with pytest.raises(ConfigError):
            RewardConfig(energy_ref_mj=0.0)
