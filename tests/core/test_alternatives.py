"""Tests for the alternative RL value-learners."""

import numpy as np
import pytest

from repro.common import ConfigError
from repro.core.alternatives import LinearQFunction, SarsaTable
from repro.core.qlearning import QLearningConfig
from repro.core.state import table_i_state_space


class TestSarsaTable:
    def test_dimensions(self):
        table = SarsaTable(16, 8, seed=0)
        assert table.num_states == 16
        assert table.num_actions == 8

    def test_update_rule_exact(self):
        """Q(S,A) <- Q(S,A) + gamma [R + mu Q(S',A') - Q(S,A)]."""
        config = QLearningConfig(learning_rate=0.5, discount=0.2)
        table = SarsaTable(4, 3, config=config, seed=0)
        q_before = float(table.values[0, 1])
        q_next = float(table.values[2, 0])
        table.update(0, 1, reward=-1.0, next_state=2, next_action=0)
        expected = q_before + 0.5 * (-1.0 + 0.2 * q_next - q_before)
        assert float(table.values[0, 1]) == pytest.approx(expected,
                                                          rel=1e-5)

    def test_on_policy_bootstraps_chosen_action(self):
        """SARSA uses Q(S', A'), not max_a Q(S', a)."""
        config = QLearningConfig(learning_rate=1.0, discount=0.5)
        table = SarsaTable(2, 2, config=config, seed=0)
        table.values[1] = np.array([-10.0, 0.0])
        table.update(0, 0, reward=0.0, next_state=1, next_action=0)
        # Bootstrapped from the *bad* chosen action, not the greedy one.
        assert float(table.values[0, 0]) == pytest.approx(-5.0)

    def test_visits_tracked(self):
        table = SarsaTable(4, 3, seed=0)
        table.update(0, 1, -1.0, 1, 2)
        assert table.visits[0, 1] == 1

    def test_best_visited_action(self):
        table = SarsaTable(2, 3, seed=0)
        table.values[0] = np.array([-0.001, -5.0, -1.0])
        table.visits[0] = np.array([0, 1, 1], dtype=np.uint32)
        assert table.best_visited_action(0) == 2

    def test_bad_dimensions(self):
        with pytest.raises(ConfigError):
            SarsaTable(0, 3)


class TestLinearQFunction:
    @pytest.fixture()
    def space(self):
        return table_i_state_space()

    def test_feature_dimension(self, space):
        fn = LinearQFunction(space, 10, seed=0)
        # One-hot per feature plus bias.
        assert fn.dim == sum(f.num_bins for f in space.features) + 1

    def test_features_one_hot_per_feature(self, space):
        fn = LinearQFunction(space, 10, seed=0)
        phi = fn.features_of(0)
        # Exactly one active bin per feature plus the bias.
        assert phi.sum() == pytest.approx(len(space.features) + 1)

    def test_feature_decoding_roundtrip(self, space):
        fn = LinearQFunction(space, 4, seed=0)
        bins = (2, 1, 0, 1, 3, 0, 1, 0)
        state = space.index_of(bins)
        phi = fn.features_of(state)
        offset = 0
        for feature, expected in zip(space.features, bins):
            chunk = phi[offset:offset + feature.num_bins]
            assert int(np.argmax(chunk)) == expected
            offset += feature.num_bins

    def test_learning_converges_to_reward(self, space):
        fn = LinearQFunction(space, 2, seed=0)
        state = space.index_of((0, 0, 0, 0, 0, 0, 0, 0))
        for _ in range(300):
            fn.update(state, 0, reward=-2.0, next_state=state)
        q = fn.q_values(state)[0]
        mu = fn.config.discount
        assert q == pytest.approx(-2.0 / (1 - mu), rel=0.1)

    def test_generalizes_across_states(self, space):
        """Updating one state moves estimates for states sharing bins —
        the structural difference from the tabular learners."""
        fn = LinearQFunction(space, 1, seed=0)
        state_a = space.index_of((1, 0, 0, 0, 0, 0, 0, 0))
        state_b = space.index_of((1, 0, 0, 0, 0, 0, 0, 1))  # differs in 1
        before = fn.q_values(state_b)[0]
        for _ in range(50):
            fn.update(state_a, 0, reward=-5.0, next_state=state_a)
        after = fn.q_values(state_b)[0]
        assert after != before
        assert after < before  # dragged toward the negative reward

    def test_memory_far_smaller_than_table(self, space):
        fn = LinearQFunction(space, 66, seed=0)
        assert fn.memory_bytes < 0.1 * (space.size * 66 * 4)

    def test_best_visited_action_falls_back(self, space):
        fn = LinearQFunction(space, 3, seed=0)
        assert fn.best_visited_action(0) == fn.best_action(0)


class TestMlpQNetwork:
    @pytest.fixture()
    def space(self):
        return table_i_state_space()

    def test_forward_shapes(self, space):
        from repro.core.alternatives import MlpQNetwork

        net = MlpQNetwork(space, 7, hidden=16, seed=0)
        values = net.q_values(42)
        assert values.shape == (7,)

    def test_learns_constant_reward(self, space):
        from repro.core.alternatives import MlpQNetwork

        net = MlpQNetwork(space, 2, hidden=16, seed=0, step_size=0.05)
        state = space.index_of((0, 0, 0, 0, 0, 0, 0, 0))
        for _ in range(500):
            net.update(state, 0, reward=-2.0, next_state=state)
        mu = net.config.discount
        assert net.q_values(state)[0] == pytest.approx(
            -2.0 / (1 - mu), rel=0.25
        )

    def test_update_only_moves_executed_action_head(self, space):
        from repro.core.alternatives import MlpQNetwork

        net = MlpQNetwork(space, 3, hidden=8, seed=1)
        w2_before = net.w2.copy()
        net.update(0, 1, reward=-1.0, next_state=0)
        # Only the executed action's output row changes.
        assert not np.allclose(net.w2[1], w2_before[1])
        assert np.allclose(net.w2[0], w2_before[0])
        assert np.allclose(net.w2[2], w2_before[2])

    def test_memory_much_smaller_than_table(self, space):
        from repro.core.alternatives import MlpQNetwork

        net = MlpQNetwork(space, 66, hidden=32, seed=0)
        assert net.memory_bytes < 0.1 * (space.size * 66 * 4)

    def test_bad_params(self, space):
        from repro.core.alternatives import MlpQNetwork

        with pytest.raises(ConfigError):
            MlpQNetwork(space, 0)
        with pytest.raises(ConfigError):
            MlpQNetwork(space, 3, hidden=0)
        with pytest.raises(ConfigError):
            MlpQNetwork(space, 3, step_size=0.0)
