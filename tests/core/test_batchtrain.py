"""Bit-parity tests: the batched training engine vs the scalar path.

The vectorized trainer is only allowed to be *faster* — every observable
of a training protocol (Q-table bytes, visit counts, update counts,
convergence episode, step records, virtual-clock position, and both RNG
streams) must be bit-identical to the scalar ``AutoScale.run`` /
per-step adapt loop under the same seed.  The same contract holds for
``EdgeCloudEnvironment.execute_batch`` against per-request ``execute``.
"""

import numpy as np
import pytest

from repro.common import ConfigError
from repro.core.batchtrain import BatchTrainer
from repro.core.engine import AutoScale
from repro.env.environment import EdgeCloudEnvironment
from repro.env.qos import use_case_for
from repro.evalharness.runner import RunConfig, loo_train_and_evaluate
from repro.faults.plan import FaultPlan
from repro.hardware.devices import build_device
from repro.models.zoo import build_network

TRAIN_NETWORKS = ("mobilenet_v3", "resnet_50")
TRAIN_RUNS = 80
ADAPT_RUNS = 40


def _build(scenario, seed=0):
    env = EdgeCloudEnvironment(build_device("mi8pro"), scenario=scenario,
                               seed=seed)
    return env, AutoScale(env, seed=seed)


def _run_protocol(scenario, batched):
    """train_autoscale + adapt_engine shaped protocol, one path."""
    env, engine = _build(scenario)
    trainer = BatchTrainer(engine)
    for name in TRAIN_NETWORKS:
        use_case = use_case_for(build_network(name))
        if batched:
            trainer.run(use_case, TRAIN_RUNS)
        else:
            engine.run(use_case, TRAIN_RUNS)
    use_case = use_case_for(build_network(TRAIN_NETWORKS[0]))
    if batched:
        converged_at = trainer.adapt(use_case, ADAPT_RUNS)
    else:
        engine.unfreeze()
        engine.convergence.reset()
        for _ in range(ADAPT_RUNS):
            engine.step(use_case)
            if engine.converged:
                break
        converged_at = engine.convergence.converged_at
    return env, engine, converged_at


def _assert_protocol_parity(scenario):
    env_s, eng_s, conv_s = _run_protocol(scenario, batched=False)
    env_b, eng_b, conv_b = _run_protocol(scenario, batched=True)

    assert eng_s.qtable.values.tobytes() == eng_b.qtable.values.tobytes()
    assert np.array_equal(eng_s.qtable.visits, eng_b.qtable.visits)
    assert eng_s.qtable.update_count == eng_b.qtable.update_count
    assert conv_s == conv_b
    assert env_s.clock.now_ms == env_b.clock.now_ms
    assert len(eng_s.history) == len(eng_b.history)
    for scalar, batch in zip(eng_s.history, eng_b.history):
        assert scalar.state == batch.state
        assert scalar.action == batch.action
        assert scalar.target_key == batch.target_key
        assert scalar.reward == batch.reward
        assert scalar.explored == batch.explored
        assert scalar.result.latency_ms == batch.result.latency_ms
        assert scalar.result.energy_mj == batch.result.energy_mj
        assert scalar.result.estimated_energy_mj \
            == batch.result.estimated_energy_mj
        assert scalar.result.accuracy_pct == batch.result.accuracy_pct
        assert scalar.result.detail == batch.result.detail
    assert env_s.rng.bit_generator.state == env_b.rng.bit_generator.state
    assert eng_s.rng.bit_generator.state == eng_b.rng.bit_generator.state


class TestExecuteBatchParity:
    def test_results_clock_and_rng_match_scalar(self):
        network = build_network("inception_v1")
        env_s = EdgeCloudEnvironment(build_device("mi8pro"),
                                     scenario="S2", seed=3)
        env_b = EdgeCloudEnvironment(build_device("mi8pro"),
                                     scenario="S2", seed=3)
        targets = env_s.targets()
        # One chunk mixing local and remote targets, repeated
        # per-observation so the draw order is exercised both ways.
        chunk = [targets[i % len(targets)] for i in range(20)]
        observations = [env_s.observe() for _ in chunk]
        observations_b = [env_b.observe() for _ in chunk]
        scalar = [env_s.execute(network, target, observation)
                  for target, observation in zip(chunk, observations)]
        batched = env_b.execute_batch(network, chunk, observations_b)
        for lhs, rhs in zip(scalar, batched):
            assert lhs.latency_ms == rhs.latency_ms
            assert lhs.energy_mj == rhs.energy_mj
            assert lhs.estimated_energy_mj == rhs.estimated_energy_mj
            assert lhs.target_key == rhs.target_key
            assert lhs.detail == rhs.detail
        assert env_s.clock.now_ms == env_b.clock.now_ms
        assert env_s.rng.bit_generator.state \
            == env_b.rng.bit_generator.state

    def test_length_mismatch_raises(self):
        env = EdgeCloudEnvironment(build_device("mi8pro"), seed=0)
        network = build_network("mobilenet_v3")
        with pytest.raises(ConfigError):
            env.execute_batch(network, env.targets()[:2],
                              [env.observe()])


class TestBatchTrainerParity:
    @pytest.mark.parametrize("scenario", ["S1", "S4", "D3"])
    def test_full_protocol_contracts_on(self, scenario):
        # Under pytest, contracts are on: the trainer routes every step
        # through the instrumented execute/update path.
        _assert_protocol_parity(scenario)

    @pytest.mark.parametrize("scenario", ["S1", "D3"])
    def test_full_protocol_contracts_off(self, scenario, monkeypatch):
        # REPRO_CONTRACTS=0 switches the trainer to its inlined fast
        # completers; parity must hold bit-for-bit there too.
        monkeypatch.setenv("REPRO_CONTRACTS", "0")
        _assert_protocol_parity(scenario)

    def test_run_validates_budget(self):
        _, engine = _build("S1")
        with pytest.raises(ConfigError):
            BatchTrainer(engine).run(
                use_case_for(build_network("mobilenet_v3")), 0)

    def test_active_faults_disable_fast_path(self):
        env = EdgeCloudEnvironment(
            build_device("mi8pro"), scenario="S1", seed=0,
            faults=FaultPlan(straggler_prob=0.2),
        )
        engine = AutoScale(env, seed=0)
        trainer = BatchTrainer(engine)
        assert not trainer._fast_path_available()
        # The fallback still trains through the scalar engine loop.
        steps = trainer.run(use_case_for(build_network("mobilenet_v3")), 5)
        assert len(steps) == 5
        assert engine.qtable.update_count == 5

    def test_frozen_engine_disables_fast_path(self):
        _, engine = _build("S1")
        engine.freeze()
        assert not BatchTrainer(engine)._fast_path_available()


class TestLooEnvironmentReuse:
    def test_reused_environment_matches_fresh(self):
        """Fold-level reuse: a reset + warm value-keyed caches must
        reproduce the cold-environment fold bit-for-bit."""
        use_cases = [use_case_for(build_network(name))
                     for name in ("mobilenet_v3", "inception_v1",
                                  "resnet_50")]
        config = RunConfig(train_runs=20, adapt_runs=30, eval_runs=6)
        shared_env = EdgeCloudEnvironment(build_device("mi8pro"),
                                          scenario="S1", seed=0)
        for test_case in use_cases[:2]:
            _, fresh = loo_train_and_evaluate(
                lambda: build_device("mi8pro"), use_cases, test_case,
                scenarios=("S1",), config=config, seed=0,
            )
            _, reused = loo_train_and_evaluate(
                None, use_cases, test_case,
                scenarios=("S1",), config=config, seed=0,
                environment=shared_env,
            )
            for scenario_name, fresh_stats in fresh.items():
                reused_stats = reused[scenario_name]
                assert fresh_stats.energies_mj == reused_stats.energies_mj
                assert fresh_stats.latencies_ms \
                    == reused_stats.latencies_ms
                assert fresh_stats.decisions == reused_stats.decisions
                assert fresh_stats.oracle_matches \
                    == reused_stats.oracle_matches
