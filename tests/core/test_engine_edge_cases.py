"""Edge-case behaviour of the engine that the main tests don't touch."""

import pytest

from repro.core.engine import AutoScale
from repro.core.qlearning import QLearningConfig
from repro.env.environment import EdgeCloudEnvironment
from repro.env.executor import NoiseConfig
from repro.env.qos import use_case_for
from repro.hardware.devices import build_device
from repro.wireless.profiles import default_lte


class TestUntrainedEngine:
    def test_frozen_prediction_before_any_training(self, env, zoo):
        """A brand-new frozen engine must still produce a valid target
        (global argmax over the random init)."""
        engine = AutoScale(env, seed=0)
        engine.freeze()
        target = engine.predict(zoo["mobilenet_v3"], env.observe())
        assert target in engine.action_space

    def test_zero_epsilon_never_explores(self, env, mobilenet_case):
        engine = AutoScale(env, seed=0,
                           config=QLearningConfig(epsilon=0.0))
        steps = engine.run(mobilenet_case, 50)
        assert not any(step.explored for step in steps)

    def test_full_epsilon_always_explores(self, env, mobilenet_case):
        engine = AutoScale(env, seed=0,
                           config=QLearningConfig(epsilon=1.0))
        steps = engine.run(mobilenet_case, 30)
        assert all(step.explored for step in steps)


class TestCustomEnvironments:
    def test_zero_noise_makes_execute_deterministic(self, zoo,
                                                    mobilenet_case):
        env = EdgeCloudEnvironment(
            build_device("mi8pro"), scenario="S1",
            noise=NoiseConfig(latency_sigma=0.0, power_sigma=0.0,
                              server_sigma=0.0, network_sigma=0.0),
            seed=0,
        )
        target = env.targets()[0]
        obs = env.observe()
        first = env.execute(mobilenet_case.network, target, obs)
        second = env.execute(mobilenet_case.network, target, obs)
        assert first.latency_ms == second.latency_ms
        assert first.energy_mj == second.energy_mj
        # And the nominal estimate coincides exactly.
        nominal = env.estimate(mobilenet_case.network, target, obs)
        assert nominal.latency_ms == first.latency_ms

    def test_engine_learns_over_lte(self, zoo):
        """Swapping the WLAN for LTE changes the learned policy: the
        tail-heavy radio keeps ResNet-50 off the cloud."""
        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   wifi=default_lte(), seed=3)
        engine = AutoScale(env, seed=3)
        case = use_case_for(zoo["resnet_50"])
        engine.run(case, 130)
        engine.freeze()
        target = engine.predict(case.network, env.observe())
        assert target.location.value != "cloud"

    def test_engine_without_connected_device(self, zoo):
        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   connected=False, seed=3)
        engine = AutoScale(env, seed=3)
        assert len(engine.action_space) == 63  # 66 minus 3 connected
        case = use_case_for(zoo["mobilebert"])
        engine.run(case, 100)
        engine.freeze()
        assert engine.predict(case.network,
                              env.observe()).location.value == "cloud"

    def test_engine_on_npu_device(self, zoo):
        env = EdgeCloudEnvironment(build_device("mi8pro_npu"),
                                   scenario="S1", seed=3)
        engine = AutoScale(env, seed=3)
        case = use_case_for(zoo["inception_v1"])
        engine.run(case, 130)
        engine.freeze()
        target = engine.predict(case.network, env.observe())
        assert target.role == "npu"


class TestHistoryBookkeeping:
    def test_history_grows_monotonically(self, env, mobilenet_case):
        engine = AutoScale(env, seed=1)
        engine.run(mobilenet_case, 10)
        engine.freeze()
        engine.step(mobilenet_case)
        assert len(engine.history) == 11
        assert len(engine.rewards()) == 11

    def test_unfreeze_resumes_learning(self, env, mobilenet_case):
        engine = AutoScale(env, seed=1)
        engine.run(mobilenet_case, 5)
        engine.freeze()
        engine.step(mobilenet_case)
        engine.unfreeze()
        before = engine.qtable.update_count
        engine.step(mobilenet_case)
        assert engine.qtable.update_count == before + 1
