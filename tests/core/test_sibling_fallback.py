"""Tests for the unvisited-state sibling fallback."""

import pytest

from repro.core.engine import AutoScale
from repro.env.environment import EdgeCloudEnvironment
from repro.env.observation import Observation
from repro.env.qos import use_case_for
from repro.hardware.devices import build_device


@pytest.fixture()
def trained_engine(zoo):
    env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                               seed=5)
    engine = AutoScale(env, seed=5)
    engine.run(use_case_for(zoo["mobilenet_v3"]), 100)
    engine.freeze()
    return engine


class TestVarianceBlock:
    def test_table_i_block_is_64(self, trained_engine):
        """4 co-cpu x 4 co-mem x 2 rssi_w x 2 rssi_p bins."""
        assert trained_engine._variance_block_size() == 64

    def test_s_conv_is_not_a_variance_feature(self, trained_engine):
        """Regression test: 's_conv' must not match the 's_co_' prefix."""
        features = trained_engine.state_space.features
        variance = [f.name for f in features
                    if f.name.startswith(("s_co_", "s_rssi"))]
        assert "s_conv" not in variance
        assert len(variance) == 4


class TestFallback:
    def test_unseen_variance_state_borrows_sibling_action(
            self, trained_engine, zoo):
        """Trained only in S1, queried under weak Wi-Fi: the engine must
        reuse the same network's trained decision, not a random-init
        action."""
        net = zoo["mobilenet_v3"]
        quiet = Observation()
        weak = Observation(rssi_wlan_dbm=-86.0)
        quiet_state = trained_engine.observe_state(net, quiet)
        weak_state = trained_engine.observe_state(net, weak)
        assert trained_engine.qtable.visits[quiet_state].any()
        assert not trained_engine.qtable.visits[weak_state].any()
        assert trained_engine.predict(net, weak).key \
            == trained_engine.predict(net, quiet).key

    def test_nearest_sibling_preferred(self, trained_engine, zoo):
        """With two trained siblings, the closer variance vector wins."""
        import numpy as np

        net = zoo["mobilenet_v3"]
        weak_both = Observation(rssi_wlan_dbm=-86.0,
                                rssi_p2p_dbm=-86.0)
        state = trained_engine.observe_state(net, weak_both)
        # Plant a distinct decision in the (weak, regular) sibling,
        # which is closer to (weak, weak) than the trained S1 state.
        near = trained_engine.observe_state(
            net, Observation(rssi_wlan_dbm=-86.0)
        )
        trained_engine.qtable.visits[near, 7] = 1
        trained_engine.qtable.values[near] = -np.inf
        trained_engine.qtable.values[near, 7] = -0.5
        assert trained_engine._sibling_fallback(state) == 7

    def test_no_trained_sibling_falls_back_to_argmax(self, trained_engine,
                                                     zoo):
        """A completely unknown network block uses the plain argmax."""
        net = zoo["inception_v3"]  # never trained
        observation = Observation()
        state = trained_engine.observe_state(net, observation)
        action = trained_engine._sibling_fallback(state)
        assert action == trained_engine.qtable.best_action(state)
