"""Tests for the unvisited-state sibling fallback."""

import pytest

from repro.core.engine import AutoScale
from repro.env.environment import EdgeCloudEnvironment
from repro.env.observation import Observation
from repro.env.qos import use_case_for
from repro.hardware.devices import build_device


@pytest.fixture()
def trained_engine(zoo):
    env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                               seed=5)
    engine = AutoScale(env, seed=5)
    engine.run(use_case_for(zoo["mobilenet_v3"]), 100)
    engine.freeze()
    return engine


class TestVarianceBlock:
    def test_table_i_block_is_64(self, trained_engine):
        """4 co-cpu x 4 co-mem x 2 rssi_w x 2 rssi_p bins."""
        assert trained_engine._variance_block_size() == 64

    def test_s_conv_is_not_a_variance_feature(self, trained_engine):
        """Regression test: 's_conv' must not match the 's_co_' prefix."""
        features = trained_engine.state_space.features
        variance = [f.name for f in features
                    if f.name.startswith(("s_co_", "s_rssi"))]
        assert "s_conv" not in variance
        assert len(variance) == 4


class TestFallback:
    def test_unseen_variance_state_borrows_sibling_action(
            self, trained_engine, zoo):
        """Trained only in S1, queried under weak Wi-Fi: the engine must
        reuse the same network's trained decision, not a random-init
        action."""
        net = zoo["mobilenet_v3"]
        quiet = Observation()
        weak = Observation(rssi_wlan_dbm=-86.0)
        quiet_state = trained_engine.observe_state(net, quiet)
        weak_state = trained_engine.observe_state(net, weak)
        assert trained_engine.qtable.visits[quiet_state].any()
        assert not trained_engine.qtable.visits[weak_state].any()
        assert trained_engine.predict(net, weak).key \
            == trained_engine.predict(net, quiet).key

    def test_nearest_sibling_preferred(self, trained_engine, zoo):
        """With two trained siblings, the closer variance vector wins."""
        import numpy as np

        net = zoo["mobilenet_v3"]
        weak_both = Observation(rssi_wlan_dbm=-86.0,
                                rssi_p2p_dbm=-86.0)
        state = trained_engine.observe_state(net, weak_both)
        # Plant a distinct decision in the (weak, regular) sibling,
        # which is closer to (weak, weak) than the trained S1 state.
        near = trained_engine.observe_state(
            net, Observation(rssi_wlan_dbm=-86.0)
        )
        trained_engine.qtable.visits[near, 7] = 1
        trained_engine.qtable.values[near] = -np.inf
        trained_engine.qtable.values[near, 7] = -0.5
        assert trained_engine._sibling_fallback(state) == 7

    def test_no_trained_sibling_falls_back_to_argmax(self, trained_engine,
                                                     zoo):
        """A completely unknown network block uses the plain argmax."""
        net = zoo["inception_v3"]  # never trained
        observation = Observation()
        state = trained_engine.observe_state(net, observation)
        action = trained_engine._sibling_fallback(state)
        assert action == trained_engine.qtable.best_action(state)


def _variance_radices(engine):
    return [feature.num_bins
            for feature in engine.state_space.features
            if feature.name.startswith(("s_co_", "s_rssi"))]


def _digits(offset, radices):
    """Mixed-radix digits, least-significant first (as _bin_distance)."""
    out = []
    for radix in reversed(radices):
        out.append(offset % radix)
        offset //= radix
    return out


def _reference_fallback(engine, state, allowed=None):
    """Brute-force re-derivation of the sibling-fallback contract."""
    block = engine._variance_block_size()
    if block <= 0:
        return engine.qtable.best_action(state, allowed)
    radices = _variance_radices(engine)
    base = (state // block) * block
    mine = _digits(state - base, radices)
    best_action, best_distance = None, None
    for sibling_offset in range(block):
        sibling = base + sibling_offset
        if not engine.qtable.visits[sibling].any():
            continue
        distance = sum(abs(a - b) for a, b in
                       zip(mine, _digits(sibling_offset, radices)))
        if best_distance is None or distance < best_distance:
            best_distance = distance
            best_action = engine.qtable.best_visited_action(sibling,
                                                            allowed)
    if best_action is None:
        return engine.qtable.best_action(state, allowed)
    return best_action


class _FlatSpace:
    """A custom state space with no Table-I variance suffix (block=0)."""

    size = 16
    features = ()

    def encode(self, network, observation):
        return 0


class TestFallbackProperties:
    """Seeded property tests against a brute-force reference."""

    @pytest.fixture()
    def engine(self):
        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   seed=7)
        return AutoScale(env, seed=7)

    def test_random_visit_patterns_match_reference(self, engine):
        import numpy as np

        rng = np.random.default_rng(1234)
        block = engine._variance_block_size()
        num_states = engine.qtable.num_states
        num_actions = engine.qtable.num_actions
        for _ in range(25):
            engine.qtable.visits[:] = 0
            # Sprinkle visits over a handful of states, some inside and
            # some outside the queried block.
            for state in rng.integers(0, num_states, size=12):
                engine.qtable.visits[
                    state, rng.integers(0, num_actions)] = 1
            query = int(rng.integers(0, num_states))
            assert engine._sibling_fallback(query) == \
                _reference_fallback(engine, query), query
        assert block > 0  # the property exercised the sibling walk

    def test_equal_distance_ties_break_to_lowest_offset(self, engine):
        import numpy as np

        block = engine._variance_block_size()
        radices = _variance_radices(engine)
        base = 3 * block  # an arbitrary network's block
        # Query offset (0, 0, 1, 1): offsets (0,0,0,1) and (0,0,1,0)
        # are both at L1 distance 1.  The scan goes in offset order, so
        # the numerically lower sibling must win.
        query = base + 0b11
        lo, hi = base + 0b01, base + 0b10
        assert sum(abs(a - b) for a, b in zip(
            _digits(0b11, radices), _digits(0b01, radices))) == 1
        assert sum(abs(a - b) for a, b in zip(
            _digits(0b11, radices), _digits(0b10, radices))) == 1
        engine.qtable.visits[lo, 5] = 1
        engine.qtable.visits[hi, 9] = 1
        engine.qtable.values[lo] = -np.inf
        engine.qtable.values[lo, 5] = -0.5
        engine.qtable.values[hi] = -np.inf
        engine.qtable.values[hi, 9] = -0.1
        assert engine._sibling_fallback(query) == 5
        assert _reference_fallback(engine, query) == 5

    def test_block_zero_custom_space_uses_plain_argmax(self):
        import numpy as np

        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   seed=7)
        engine = AutoScale(env, state_space=_FlatSpace(), seed=7)
        assert engine._variance_block_size() == 0
        rng = np.random.default_rng(99)
        for _ in range(10):
            engine.qtable.visits[:] = 0
            for state in rng.integers(0, _FlatSpace.size, size=4):
                engine.qtable.visits[
                    state, rng.integers(0, 66)] = 1
            query = int(rng.integers(0, _FlatSpace.size))
            assert engine._sibling_fallback(query) == \
                engine.qtable.best_action(query)

    def test_allowed_mask_is_respected(self, engine):
        import numpy as np

        rng = np.random.default_rng(4321)
        num_states = engine.qtable.num_states
        num_actions = engine.qtable.num_actions
        for _ in range(20):
            engine.qtable.visits[:] = 0
            for state in rng.integers(0, num_states, size=10):
                engine.qtable.visits[
                    state, rng.integers(0, num_actions)] = 1
            allowed = rng.random(num_actions) < 0.3
            if not allowed.any():
                allowed[int(rng.integers(num_actions))] = True
            query = int(rng.integers(0, num_states))
            action = engine._sibling_fallback(query, allowed)
            assert allowed[action], (query, action)
            assert action == _reference_fallback(engine, query, allowed)
