"""Tests for the AutoScale engine (Fig. 8 / Algorithm 1)."""

import pytest

from repro.common import ConfigError
from repro.core.engine import AutoScale
from repro.env.environment import EdgeCloudEnvironment
from repro.env.qos import use_case_for
from repro.hardware.devices import build_device


@pytest.fixture()
def engine(env):
    return AutoScale(env, seed=11)


class TestSetup:
    def test_default_spaces(self, engine):
        assert engine.state_space.size == 3072
        assert len(engine.action_space) == 66
        assert engine.qtable.num_states == 3072
        assert engine.qtable.num_actions == 66

    def test_training_by_default(self, engine):
        assert engine.training


class TestStep:
    def test_step_records_everything(self, engine, mobilenet_case):
        step = engine.step(mobilenet_case)
        assert 0 <= step.state < 3072
        assert 0 <= step.action < 66
        assert step.target_key == \
            engine.action_space.target(step.action).key
        assert step.result.latency_ms > 0
        assert engine.history[-1] is step

    def test_step_updates_qtable(self, engine, mobilenet_case):
        before = engine.qtable.update_count
        engine.step(mobilenet_case)
        assert engine.qtable.update_count == before + 1

    def test_frozen_step_does_not_update(self, engine, mobilenet_case):
        engine.run(mobilenet_case, 5)
        engine.freeze()
        before = engine.qtable.update_count
        engine.step(mobilenet_case)
        assert engine.qtable.update_count == before

    def test_run_length(self, engine, mobilenet_case):
        steps = engine.run(mobilenet_case, 7)
        assert len(steps) == 7
        with pytest.raises(ConfigError):
            engine.run(mobilenet_case, 0)

    def test_overhead_recorded(self, engine, mobilenet_case):
        engine.run(mobilenet_case, 5)
        assert engine.overhead.mean_select_us() > 0
        assert engine.overhead.mean_update_us() > 0
        assert engine.overhead.mean_train_us() == pytest.approx(
            engine.overhead.mean_select_us()
            + engine.overhead.mean_update_us()
        )


class TestLearning:
    def test_learns_good_target_for_light_network(self, zoo):
        """After training, MobileNet v3 should stay on-device — the
        Fig. 13 story for high-end phones and light networks."""
        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   seed=7)
        engine = AutoScale(env, seed=7)
        case = use_case_for(zoo["mobilenet_v3"])
        engine.run(case, 100)
        engine.freeze()
        target = engine.predict(case.network, env.observe())
        assert target.location.value == "local"

    def test_learns_cloud_for_heavy_network(self, zoo):
        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   seed=7)
        engine = AutoScale(env, seed=7)
        case = use_case_for(zoo["mobilebert"])
        engine.run(case, 100)
        engine.freeze()
        target = engine.predict(case.network, env.observe())
        assert target.location.value == "cloud"

    def test_trained_choice_beats_baseline_energy(self, zoo):
        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   seed=3)
        engine = AutoScale(env, seed=3)
        case = use_case_for(zoo["resnet_50"])
        engine.run(case, 100)
        engine.freeze()
        obs = env.observe()
        chosen = env.estimate(case.network, engine.predict(case.network,
                                                           obs), obs)
        from repro.env.target import ExecutionTarget, Location
        from repro.models.quantization import Precision
        cpu = ExecutionTarget(Location.LOCAL, "cpu", Precision.FP32,
                              env.device.soc.cpu.num_vf_steps - 1)
        baseline = env.estimate(case.network, cpu, obs)
        assert chosen.energy_mj < 0.25 * baseline.energy_mj

    def test_convergence_criteria(self, zoo):
        """Fig. 14 measures *reward* convergence (paper: ~40-50 runs);
        the engine's internal detector additionally waits for the policy
        to settle on an action, which lands after the optimistic-init
        sweep of the ~66-action space (~75-100 runs)."""
        from repro.core.convergence import episodes_to_converge

        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   seed=1)
        engine = AutoScale(env, seed=1)
        steps = engine.run(use_case_for(zoo["mobilenet_v3"]), 130)
        assert engine.converged
        assert engine.convergence.converged_at <= 115
        rewards = [s.reward for s in steps if not s.explored]
        assert episodes_to_converge(rewards) <= 70

    def test_exploration_happens(self, engine, mobilenet_case):
        steps = engine.run(mobilenet_case, 100)
        explored = sum(1 for s in steps if s.explored)
        assert 2 <= explored <= 25  # epsilon = 0.1

    def test_frozen_never_explores(self, engine, mobilenet_case):
        engine.run(mobilenet_case, 10)
        engine.freeze()
        steps = [engine.step(mobilenet_case) for _ in range(30)]
        assert not any(s.explored for s in steps)

    def test_memory_footprint(self, engine):
        # 3072 x 66 float32.
        assert engine.memory_footprint_bytes() == 3072 * 66 * 4

    def test_rewards_trace(self, engine, mobilenet_case):
        engine.run(mobilenet_case, 5)
        assert len(engine.rewards()) == 5
