"""Tests for the from-scratch DBSCAN discretizer."""

import numpy as np
import pytest

from repro.common import ConfigError
from repro.core.discretize import cluster_edges, dbscan, derive_feature_edges


class TestDbscan:
    def test_two_well_separated_clusters(self):
        points = np.concatenate([np.linspace(0, 1, 20),
                                 np.linspace(10, 11, 20)])
        labels = dbscan(points, eps=0.3, min_samples=3)
        assert len(set(labels[labels >= 0])) == 2
        # Points within each blob share a label.
        assert len(set(labels[:20])) == 1
        assert len(set(labels[20:])) == 1

    def test_noise_labelled_minus_one(self):
        points = np.array([0.0, 0.05, 0.1, 0.15, 50.0])
        labels = dbscan(points, eps=0.2, min_samples=3)
        assert labels[-1] == -1

    def test_single_cluster(self):
        labels = dbscan(np.linspace(0, 1, 30), eps=0.2, min_samples=3)
        assert set(labels) == {0}

    def test_2d_points(self):
        blob_a = np.random.default_rng(0).normal(0, 0.1, size=(20, 2))
        blob_b = np.random.default_rng(1).normal(5, 0.1, size=(20, 2))
        labels = dbscan(np.vstack([blob_a, blob_b]), eps=0.5,
                        min_samples=4)
        assert len(set(labels[labels >= 0])) == 2

    def test_border_points_join_cluster(self):
        # A chain: every point within eps of the next; all one cluster.
        points = np.arange(0, 10, 0.5)
        labels = dbscan(points, eps=0.6, min_samples=3)
        assert set(labels) == {0}

    def test_bad_params(self):
        with pytest.raises(ConfigError):
            dbscan([1.0, 2.0], eps=0.0, min_samples=2)
        with pytest.raises(ConfigError):
            dbscan([1.0, 2.0], eps=1.0, min_samples=0)
        with pytest.raises(ConfigError):
            dbscan(np.zeros((2, 2, 2)), eps=1.0, min_samples=1)


class TestClusterEdges:
    def test_edge_at_midpoint(self):
        values = np.array([0.0, 1.0, 10.0, 11.0])
        labels = np.array([0, 0, 1, 1])
        edges = cluster_edges(values, labels)
        assert edges == (5.5,)

    def test_single_cluster_no_edges(self):
        values = np.array([1.0, 2.0])
        labels = np.array([0, 0])
        assert cluster_edges(values, labels) == ()

    def test_clusters_ordered_by_centroid(self):
        # Labels assigned out of value order must still give sorted edges.
        values = np.array([10.0, 11.0, 0.0, 1.0, 20.0, 21.0])
        labels = np.array([0, 0, 1, 1, 2, 2])
        edges = cluster_edges(values, labels)
        assert list(edges) == sorted(edges)
        assert len(edges) == 2


class TestDeriveFeatureEdges:
    def test_recovers_table_i_like_bins(self):
        """Profiling samples with clear modes recover the bin structure
        the paper derived with DBSCAN."""
        rng = np.random.default_rng(0)
        samples = np.concatenate([
            rng.normal(15, 2, 40),    # "small" conv counts
            rng.normal(45, 2, 40),    # "medium"
            rng.normal(70, 2, 40),    # "large"
        ])
        edges = derive_feature_edges(samples, min_samples=4)
        assert len(edges) == 2
        assert 20 < edges[0] < 40
        assert 50 < edges[1] < 65

    def test_constant_feature_gives_no_edges(self):
        assert derive_feature_edges([5.0] * 20) == ()

    def test_too_few_samples_rejected(self):
        with pytest.raises(ConfigError):
            derive_feature_edges([1.0, 2.0], min_samples=4)

    def test_non_1d_rejected(self):
        with pytest.raises(ConfigError):
            derive_feature_edges(np.zeros((5, 2)))
