"""Tests for the bounded-memory engine instrumentation.

Paper-scale campaigns run hundreds of thousands of Algorithm-1 cycles;
the per-step timing series and the step history must not grow without
bound while the reported means and recent-window APIs stay intact.
"""

import pytest

from repro.common import ConfigError
from repro.core.engine import BoundedHistory, OverheadStats, StreamingSeries


class TestStreamingSeries:
    def test_exact_mean_and_count(self):
        series = StreamingSeries(capacity=8)
        values = [float(i) for i in range(1000)]
        for value in values:
            series.append(value)
        assert len(series) == 1000
        assert series.total == pytest.approx(sum(values))
        assert series.mean() == pytest.approx(sum(values) / 1000)

    def test_sample_is_bounded(self):
        series = StreamingSeries(capacity=64)
        for i in range(100_000):
            series.append(float(i))
        assert len(series.sample) <= 64
        assert len(series) == 100_000

    def test_thinning_is_deterministic(self):
        first = StreamingSeries(capacity=16)
        second = StreamingSeries(capacity=16)
        for i in range(5000):
            first.append(float(i))
            second.append(float(i))
        assert first.sample == second.sample

    def test_percentile_exact_below_capacity(self):
        series = StreamingSeries(capacity=1024)
        for i in range(101):
            series.append(float(i))
        assert series.percentile(50) == pytest.approx(50.0)
        assert series.percentile(100) == pytest.approx(100.0)

    def test_percentile_approximate_above_capacity(self):
        series = StreamingSeries(capacity=128)
        for i in range(10_000):
            series.append(float(i))
        # Thinned uniformly, the median estimate stays close.
        assert series.percentile(50) == pytest.approx(5000.0, rel=0.05)

    def test_clear_resets_everything(self):
        series = StreamingSeries(capacity=8)
        for i in range(100):
            series.append(1.0)
        series.clear()
        assert len(series) == 0
        assert not series
        assert series.mean() == 0.0
        assert series.percentile(50) == 0.0
        assert series.sample == []

    def test_bool_and_iter(self):
        series = StreamingSeries()
        assert not series
        series.append(2.5)
        assert series
        assert list(series) == [2.5]

    def test_capacity_validation(self):
        with pytest.raises(ConfigError):
            StreamingSeries(capacity=1)

    def test_overhead_stats_means(self):
        stats = OverheadStats()
        for value in (10.0, 20.0, 30.0):
            stats.select_us.append(value)
            stats.update_us.append(value * 2)
        assert stats.mean_select_us() == pytest.approx(20.0)
        assert stats.mean_update_us() == pytest.approx(40.0)
        assert stats.mean_train_us() == pytest.approx(60.0)


class TestBoundedHistory:
    def test_plain_list_interface_below_cap(self):
        history = BoundedHistory(maxlen=100)
        for i in range(10):
            history.append(i)
        assert len(history) == 10
        assert history[-1] == 9
        assert history[:3] == [0, 1, 2]
        assert history.total == 10
        assert history.dropped == 0

    def test_cap_drops_oldest_quarter(self):
        history = BoundedHistory(maxlen=100)
        for i in range(101):
            history.append(i)
        assert len(history) == 76  # 100 - 25 dropped + 1 appended
        assert history.dropped == 25
        assert history.total == 101
        assert history[0] == 25  # oldest quarter gone
        assert history[-1] == 100

    def test_total_is_monotonic_across_many_drops(self):
        history = BoundedHistory(maxlen=8)
        for i in range(1000):
            history.append(i)
        assert history.total == 1000
        assert len(history) <= 8
        assert history[-1] == 999

    def test_maxlen_validation(self):
        with pytest.raises(ConfigError):
            BoundedHistory(maxlen=2)
