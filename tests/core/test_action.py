"""Tests for the action space."""

import pytest

from repro.common import ConfigError
from repro.core.action import ActionSpace
from repro.env.target import ExecutionTarget, Location
from repro.models.quantization import Precision


class TestActionSpace:
    def test_from_environment_matches_paper_count(self, env):
        space = ActionSpace.from_environment(env)
        assert len(space) == 66

    def test_index_roundtrip(self, env):
        space = ActionSpace.from_environment(env)
        for index, target in enumerate(space):
            assert space.index_of(target) == index
            assert space.target(index) is target

    def test_contains(self, env):
        space = ActionSpace.from_environment(env)
        assert space.target(0) in space
        foreign = ExecutionTarget(Location.LOCAL, "gpu", Precision.FP16,
                                  99)
        assert foreign not in space

    def test_unknown_target_raises(self, env):
        space = ActionSpace.from_environment(env)
        with pytest.raises(KeyError):
            space.index_of(ExecutionTarget(Location.LOCAL, "gpu",
                                           Precision.FP16, 99))

    def test_without_augmentations(self, env):
        space = ActionSpace.from_environment(env, with_dvfs=False)
        assert len(space) == 10

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            ActionSpace([])

    def test_duplicates_rejected(self):
        target = ExecutionTarget(Location.CLOUD, "gpu", Precision.FP32)
        with pytest.raises(ConfigError):
            ActionSpace([target, target])
