"""Tests for the Table-I state space."""

import pytest

from repro.common import ConfigError
from repro.core.state import StateFeature, StateSpace, table_i_state_space
from repro.env.observation import Observation


@pytest.fixture()
def space():
    return table_i_state_space()


class TestTableISize:
    def test_3072_states(self, space):
        """Footnote 8: the design space has 3,072 states."""
        assert space.size == 3072

    def test_eight_features(self, space):
        assert len(space.features) == 8

    def test_feature_order(self, space):
        assert [f.name for f in space.features] == [
            "s_conv", "s_fc", "s_rc", "s_mac", "s_co_cpu", "s_co_mem",
            "s_rssi_w", "s_rssi_p",
        ]


class TestTableIBins:
    """Bin boundaries verbatim from Table I."""

    def test_s_conv(self, space):
        feature = space.feature("s_conv")
        assert feature.label_of(29) == "small"
        assert feature.label_of(30) == "medium"
        assert feature.label_of(49) == "medium"
        assert feature.label_of(50) == "large"
        assert feature.label_of(89) == "large"
        assert feature.label_of(90) == "larger"

    def test_s_fc(self, space):
        feature = space.feature("s_fc")
        assert feature.label_of(9) == "small"
        assert feature.label_of(10) == "large"

    def test_s_rc(self, space):
        feature = space.feature("s_rc")
        assert feature.label_of(0) == "small"
        assert feature.label_of(24) == "large"

    def test_s_mac(self, space):
        feature = space.feature("s_mac")
        assert feature.label_of(999.0) == "small"
        assert feature.label_of(1000.0) == "medium"
        assert feature.label_of(1999.0) == "medium"
        assert feature.label_of(2000.0) == "large"

    def test_s_co_cpu_zero_bin(self, space):
        feature = space.feature("s_co_cpu")
        assert feature.label_of(0.0) == "none"
        assert feature.label_of(0.1) == "small"
        assert feature.label_of(24.9) == "small"
        assert feature.label_of(25.0) == "medium"
        assert feature.label_of(74.9) == "medium"
        assert feature.label_of(75.0) == "large"
        assert feature.label_of(100.0) == "large"

    def test_rssi_threshold(self, space):
        for name in ("s_rssi_w", "s_rssi_p"):
            feature = space.feature(name)
            assert feature.label_of(-80.0) == "weak"
            assert feature.label_of(-80.1) == "weak"
            assert feature.label_of(-79.9) == "regular"


class TestEncoding:
    def test_index_in_range(self, space, zoo):
        obs = Observation()
        for network in zoo.values():
            index = space.encode(network, obs)
            assert 0 <= index < space.size

    def test_distinct_networks_can_share_bins(self, space, zoo):
        """MobileNet v3 and SSD-MobileNet v3 land in the same state —
        this aliasing is what makes leave-one-out generalize."""
        obs = Observation()
        assert space.encode(zoo["mobilenet_v3"], obs) \
            == space.encode(zoo["ssd_mobilenet_v3"], obs)

    def test_observation_changes_state(self, space, zoo):
        net = zoo["mobilenet_v3"]
        quiet = space.encode(net, Observation())
        busy = space.encode(net, Observation(cpu_util=0.9))
        weak = space.encode(net, Observation(rssi_wlan_dbm=-86.0))
        assert len({quiet, busy, weak}) == 3

    def test_describe_labels(self, space, zoo):
        labels = space.describe(zoo["mobilebert"], Observation())
        assert labels["s_rc"] == "large"
        assert labels["s_conv"] == "small"

    def test_index_bijective_over_bins(self, space):
        seen = set()
        import itertools
        radices = [f.num_bins for f in space.features]
        for bins in itertools.product(*(range(r) for r in radices)):
            seen.add(space.index_of(bins))
        assert len(seen) == space.size


class TestAblation:
    def test_without_removes_feature(self, space):
        smaller = space.without("s_rssi_p")
        assert smaller.size == space.size // 2
        with pytest.raises(KeyError):
            smaller.feature("s_rssi_p")

    def test_without_unknown_raises(self, space):
        with pytest.raises(KeyError):
            space.without("s_gpu")


class TestValidation:
    def test_unsorted_edges_rejected(self):
        with pytest.raises(ConfigError):
            StateFeature("x", edges=(5, 2), labels=("a", "b", "c"))

    def test_label_count_checked(self):
        with pytest.raises(ConfigError):
            StateFeature("x", edges=(5,), labels=("a",))

    def test_zero_bin_needs_extra_label(self):
        feature = StateFeature("x", edges=(5,), labels=("z", "a", "b"),
                               zero_bin=True)
        assert feature.num_bins == 3

    def test_empty_space_rejected(self):
        with pytest.raises(ConfigError):
            StateSpace([])

    def test_bad_bin_index_rejected(self, space):
        with pytest.raises(ConfigError):
            space.index_of((99,) * 8)
