"""Tests for the batched selection plane (SoA Q-core).

Two layers, two contracts:

- :meth:`QTable.select_actions` must equal a ``best_action`` loop on
  every input shape (no mask, shared mask, per-state mask, degenerate
  rows) and reject malformed shapes;
- :meth:`AutoScale.select_action_batch` must be *bit-identical* to
  calling :meth:`AutoScale.select_action` element-wise — same
  ``(action, explored)`` pairs AND the same RNG bit-generator state
  afterwards, across seeds, epsilons, and training/frozen modes.  This
  is the property the vectorized serving drain's byte-parity rests on.
"""

import numpy as np
import pytest

from repro.common import ConfigError, make_rng
from repro.core.engine import AutoScale
from repro.core.qlearning import QLearningConfig, QTable
from repro.env.environment import EdgeCloudEnvironment
from repro.hardware.devices import build_device


class TestQTableSelectActions:
    def _table(self, seed=3, states=50, actions=9):
        return QTable(states, actions, seed=seed)

    def test_matches_best_action_unmasked(self):
        table = self._table()
        rng = make_rng(7)
        states = rng.integers(0, table.num_states, size=40)
        batched = table.select_actions(states)
        assert batched.tolist() \
            == [table.best_action(int(s)) for s in states]

    def test_matches_best_action_shared_mask(self):
        table = self._table()
        rng = make_rng(8)
        states = rng.integers(0, table.num_states, size=40)
        mask = rng.random(table.num_actions) < 0.4
        batched = table.select_actions(states, allowed=mask)
        assert batched.tolist() \
            == [table.best_action(int(s), mask) for s in states]

    def test_matches_best_action_per_state_mask(self):
        table = self._table()
        rng = make_rng(9)
        states = rng.integers(0, table.num_states, size=40)
        masks = rng.random((40, table.num_actions)) < 0.4
        batched = table.select_actions(states, allowed=masks)
        assert batched.tolist() \
            == [table.best_action(int(s), masks[i])
                for i, s in enumerate(states)]

    def test_degenerate_rows_fall_back_to_unmasked_argmax(self):
        """A row with no True entry must degenerate to the unmasked
        argmax, exactly like ``best_action``'s convention."""
        table = self._table()
        states = np.array([0, 1, 2])
        masks = np.zeros((3, table.num_actions), dtype=bool)
        masks[1, 4] = True  # only the middle row has a real mask
        batched = table.select_actions(states, allowed=masks)
        assert batched[0] == table.best_action(0)
        assert batched[1] == 4
        assert batched[2] == table.best_action(2)

    def test_all_false_shared_mask_degenerates_everywhere(self):
        table = self._table()
        states = np.array([5, 6, 7])
        mask = np.zeros(table.num_actions, dtype=bool)
        batched = table.select_actions(states, allowed=mask)
        assert batched.tolist() \
            == [table.best_action(int(s)) for s in states]

    def test_empty_batch(self):
        table = self._table()
        assert len(table.select_actions(np.array([], dtype=int))) == 0

    def test_rejects_non_vector_states(self):
        table = self._table()
        with pytest.raises(ConfigError):
            table.select_actions(np.zeros((2, 2), dtype=int))

    def test_rejects_mismatched_mask_shape(self):
        table = self._table()
        states = np.array([0, 1, 2])
        with pytest.raises(ConfigError):
            table.select_actions(states,
                                 allowed=np.ones(5, dtype=bool))
        with pytest.raises(ConfigError):
            table.select_actions(
                states, allowed=np.ones((2, table.num_actions),
                                        dtype=bool))


def _engine(seed, epsilon=0.1, training=True):
    env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                               seed=seed)
    engine = AutoScale(env, seed=seed,
                       config=QLearningConfig(epsilon=epsilon))
    engine.training = training
    return engine


def _twin_pair(seed, epsilon=0.1, training=True):
    return (_engine(seed, epsilon, training),
            _engine(seed, epsilon, training))


def _mask_variants(rng, count, num_actions):
    """The three legal mask shapes plus pathological rows."""
    per_state = rng.random((count, num_actions)) < 0.5
    per_state[0, :] = False  # one empty row exercises the fallback
    return [
        None,
        rng.random(num_actions) < 0.5,
        per_state,
    ]


class TestSelectActionBatchParity:
    """select_action_batch ≡ element-wise select_action, bit for bit."""

    @pytest.mark.parametrize("epsilon", [0.0, 0.1, 0.9])
    def test_training_stream_and_decisions_match(self, epsilon):
        for seed in range(6):
            batched, scalar = _twin_pair(seed, epsilon=epsilon)
            rng = make_rng(100 + seed)
            states = rng.integers(0, batched.qtable.num_states,
                                  size=32)
            for mask in _mask_variants(rng, 32,
                                       batched.qtable.num_actions):
                expected = [
                    scalar.select_action(
                        int(s),
                        allowed=None if mask is None
                        else (mask if mask.ndim == 1 else mask[i]))
                    for i, s in enumerate(states)
                ]
                got = batched.select_action_batch(states, allowed=mask)
                assert got == expected
                # The load-bearing half: the RNG streams must end in
                # exactly the same bit-generator state, so anything
                # drawn *afterwards* is unaffected by the batching.
                assert batched.rng.bit_generator.state \
                    == scalar.rng.bit_generator.state

    def test_frozen_visited_and_sibling_paths_match(self):
        for seed in range(4):
            batched, scalar = _twin_pair(seed, training=True)
            # Visit a handful of states so the batch mixes visited
            # states, unvisited states with trained siblings, and
            # fully-untrained blocks.
            trainer_rng = make_rng(50 + seed)
            for _ in range(40):
                state = int(trainer_rng.integers(
                    0, batched.qtable.num_states))
                action = int(trainer_rng.integers(
                    0, batched.qtable.num_actions))
                batched.qtable.update(state, action, -1.0, state)
                scalar.qtable.update(state, action, -1.0, state)
            batched.training = scalar.training = False
            rng = make_rng(60 + seed)
            states = rng.integers(0, batched.qtable.num_states, size=48)
            for mask in _mask_variants(rng, 48,
                                       batched.qtable.num_actions):
                expected = [
                    scalar.select_action(
                        int(s),
                        allowed=None if mask is None
                        else (mask if mask.ndim == 1 else mask[i]))
                    for i, s in enumerate(states)
                ]
                got = batched.select_action_batch(states, allowed=mask)
                assert got == expected
                assert batched.rng.bit_generator.state \
                    == scalar.rng.bit_generator.state

    def test_interleaving_batched_and_scalar_is_seamless(self):
        """A batch call mid-stream must leave the RNG exactly where the
        equivalent scalar calls would — later scalar draws agree."""
        batched, scalar = _twin_pair(21)
        rng = make_rng(77)
        states = rng.integers(0, batched.qtable.num_states, size=16)
        batched.select_action_batch(states[:8])
        for s in states[:8]:
            scalar.select_action(int(s))
        for s in states[8:]:
            assert batched.select_action(int(s)) \
                == scalar.select_action(int(s))

    def test_empty_batch_draws_nothing(self):
        engine = _engine(5)
        before = engine.rng.bit_generator.state
        assert engine.select_action_batch([]) == []
        assert engine.rng.bit_generator.state == before

    def test_explore_override_matches_scalar(self):
        batched, scalar = _twin_pair(9)
        states = [3, 3, 7]
        got = batched.select_action_batch(states, explore=False)
        expected = [scalar.select_action(s, explore=False)
                    for s in states]
        assert got == expected
        assert batched.rng.bit_generator.state \
            == scalar.rng.bit_generator.state

    def test_rejects_mismatched_mask(self):
        engine = _engine(4)
        with pytest.raises(ConfigError):
            engine.select_action_batch(
                [1, 2], allowed=np.ones((3, 5), dtype=bool))
