"""Tests for the Q-table and Algorithm-1 update rule."""

import numpy as np
import pytest

from repro.common import ConfigError, make_rng
from repro.core.qlearning import QLearningConfig, QTable, epsilon_greedy


class TestConfig:
    def test_paper_defaults(self):
        config = QLearningConfig()
        assert config.learning_rate == 0.9
        assert config.discount == 0.1
        assert config.epsilon == 0.1

    def test_validation(self):
        with pytest.raises(ConfigError):
            QLearningConfig(learning_rate=0.0)
        with pytest.raises(ConfigError):
            QLearningConfig(discount=1.0)
        with pytest.raises(ConfigError):
            QLearningConfig(epsilon=1.5)
        with pytest.raises(ConfigError):
            QLearningConfig(init_low=1.0, init_high=0.0)
        with pytest.raises(ConfigError):
            QLearningConfig(dtype="int8")


class TestQTable:
    def test_random_initialization_in_range(self):
        table = QTable(100, 10, seed=0)
        assert table.values.min() >= -1.0
        assert table.values.max() <= 0.0

    def test_dimensions(self):
        table = QTable(3072, 66, seed=0)
        assert table.num_states == 3072
        assert table.num_actions == 66

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ConfigError):
            QTable(0, 5)

    def test_update_rule_exact(self):
        """Q(S,A) <- Q(S,A) + gamma [R + mu max Q(S',.) - Q(S,A)]."""
        config = QLearningConfig(learning_rate=0.5, discount=0.2)
        table = QTable(4, 3, config=config, seed=0)
        q_before = table.value(0, 1)
        best_next = table.best_value(2)
        table.update(0, 1, reward=-1.0, next_state=2)
        expected = q_before + 0.5 * (-1.0 + 0.2 * best_next - q_before)
        assert table.value(0, 1) == pytest.approx(expected, rel=1e-5)

    def test_update_tracks_visits(self):
        table = QTable(4, 3, seed=0)
        assert table.visits[0, 1] == 0
        table.update(0, 1, -1.0, 0)
        assert table.visits[0, 1] == 1
        assert table.update_count == 1

    def test_best_action_is_argmax(self):
        table = QTable(2, 4, seed=0)
        table.values[1] = np.array([-3.0, -1.0, -2.0, -9.0])
        assert table.best_action(1) == 1
        assert table.best_value(1) == pytest.approx(-1.0)

    def test_best_visited_action_ignores_untried(self):
        table = QTable(2, 4, seed=0)
        table.values[0] = np.array([-0.01, -5.0, -2.0, -0.02])
        table.visits[0] = np.array([0, 1, 1, 0], dtype=np.uint32)
        # Global argmax is the untried action 0; visited argmax is 2.
        assert table.best_action(0) == 0
        assert table.best_visited_action(0) == 2

    def test_best_visited_falls_back_when_unvisited(self):
        table = QTable(2, 4, seed=0)
        assert table.best_visited_action(0) == table.best_action(0)

    def test_float16_matches_paper_footprint(self):
        """Section VI-C: 0.4 MB for the Mi8Pro's 3,072 x 66 table."""
        table = QTable(3072, 66, config=QLearningConfig(dtype="float16"),
                       seed=0)
        assert table.memory_bytes == pytest.approx(0.4e6, rel=0.02)

    def test_save_load_roundtrip(self, tmp_path):
        table = QTable(10, 5, seed=3)
        table.update(2, 3, -1.5, 4)
        path = tmp_path / "qtable.npz"
        table.save(path)
        loaded = QTable.load(path)
        assert np.allclose(loaded.values, table.values)
        assert loaded.update_count == table.update_count
        assert loaded.visits[2, 3] == 1

    def test_copy_is_deep(self):
        table = QTable(4, 3, seed=0)
        clone = table.copy()
        clone.update(0, 0, -1.0, 1)
        assert table.visits[0, 0] == 0
        assert clone.visits[0, 0] == 1


class TestEpsilonGreedy:
    def test_zero_epsilon_is_greedy(self):
        table = QTable(2, 4, seed=0)
        rng = make_rng(0)
        for _ in range(20):
            assert epsilon_greedy(table, 0, rng, epsilon=0.0) \
                == table.best_action(0)

    def test_one_epsilon_is_uniform(self):
        table = QTable(1, 8, seed=0)
        rng = make_rng(1)
        actions = {epsilon_greedy(table, 0, rng, epsilon=1.0)
                   for _ in range(400)}
        assert actions == set(range(8))

    def test_exploration_rate_close_to_epsilon(self):
        table = QTable(1, 10, seed=0)
        rng = make_rng(2)
        greedy = table.best_action(0)
        explored = sum(
            epsilon_greedy(table, 0, rng, epsilon=0.1) != greedy
            for _ in range(5000)
        )
        # ~epsilon * (n-1)/n of choices deviate from the argmax.
        assert 0.05 < explored / 5000 < 0.14


class TestLoadValidation:
    """A corrupt or mismatched archive must fail loudly, naming the path."""

    def _saved(self, tmp_path):
        table = QTable(6, 4, seed=3)
        table.update(1, 2, -1.0, 3)
        path = tmp_path / "qtable.npz"
        table.save(path)
        return path

    def test_missing_file(self, tmp_path):
        path = tmp_path / "absent.npz"
        with pytest.raises(ConfigError, match="absent.npz"):
            QTable.load(path)

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(ConfigError, match="garbage.npz"):
            QTable.load(path)

    def test_bare_npy_rejected(self, tmp_path):
        path = tmp_path / "bare.npy"
        np.save(path, np.zeros((3, 2)))
        with pytest.raises(ConfigError, match="not an .npz archive"):
            QTable.load(path)

    def test_missing_required_keys(self, tmp_path):
        path = tmp_path / "partial.npz"
        np.savez(path, values=np.zeros((3, 2), dtype=np.float32))
        with pytest.raises(ConfigError, match="update_count"):
            QTable.load(path)

    def test_values_must_be_two_dimensional(self, tmp_path):
        path = tmp_path / "flat.npz"
        np.savez(path, values=np.zeros(6, dtype=np.float32),
                 update_count=0)
        with pytest.raises(ConfigError, match="2-D"):
            QTable.load(path)

    def test_values_must_be_float(self, tmp_path):
        path = tmp_path / "ints.npz"
        np.savez(path, values=np.zeros((3, 2), dtype=np.int32),
                 update_count=0)
        with pytest.raises(ConfigError, match="not a float type"):
            QTable.load(path)

    def test_visits_shape_must_match(self, tmp_path):
        path = tmp_path / "shapes.npz"
        np.savez(path, values=np.zeros((3, 2), dtype=np.float32),
                 visits=np.zeros((3, 5), dtype=np.uint32),
                 update_count=0)
        with pytest.raises(ConfigError, match="does not match"):
            QTable.load(path)

    def test_visits_must_be_integer(self, tmp_path):
        path = tmp_path / "floats.npz"
        np.savez(path, values=np.zeros((3, 2), dtype=np.float32),
                 visits=np.zeros((3, 2), dtype=np.float64),
                 update_count=0)
        with pytest.raises(ConfigError, match="not an integer type"):
            QTable.load(path)

    def test_valid_archive_still_loads(self, tmp_path):
        path = self._saved(tmp_path)
        loaded = QTable.load(path)
        assert loaded.update_count == 1
        assert loaded.visits[1, 2] == 1
