"""Tests for engine save/load."""

import numpy as np
import pytest

from repro.common import ConfigError
from repro.core.engine import AutoScale
from repro.core.persistence import load_engine, save_engine
from repro.env.environment import EdgeCloudEnvironment
from repro.env.qos import use_case_for
from repro.hardware.devices import build_device


@pytest.fixture()
def trained(zoo):
    env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                               seed=8)
    engine = AutoScale(env, seed=8)
    engine.run(use_case_for(zoo["mobilenet_v3"]), 60)
    return engine


class TestRoundTrip:
    def test_values_and_visits_preserved(self, trained, tmp_path):
        save_engine(trained, tmp_path / "engine")
        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   seed=9)
        loaded = load_engine(tmp_path / "engine", env)
        assert np.allclose(loaded.qtable.values, trained.qtable.values)
        assert np.array_equal(loaded.qtable.visits,
                              trained.qtable.visits)

    def test_loaded_engine_predicts_like_original(self, trained, zoo,
                                                  tmp_path):
        save_engine(trained, tmp_path / "engine")
        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   seed=9)
        loaded = load_engine(tmp_path / "engine", env)
        loaded.freeze()
        trained.freeze()
        observation = env.observe()
        net = zoo["mobilenet_v3"]
        assert loaded.predict(net, observation).key \
            == trained.predict(net, observation).key

    def test_hyperparameters_restored(self, trained, tmp_path):
        save_engine(trained, tmp_path / "engine")
        env = EdgeCloudEnvironment(build_device("mi8pro"), seed=9)
        loaded = load_engine(tmp_path / "engine", env)
        assert loaded.config == trained.config
        assert loaded.reward_config == trained.reward_config


class TestValidation:
    def test_wrong_device_rejected(self, trained, tmp_path):
        save_engine(trained, tmp_path / "engine")
        other = EdgeCloudEnvironment(build_device("moto_x_force"),
                                     scenario="S1", seed=9)
        with pytest.raises(ConfigError, match="action space"):
            load_engine(tmp_path / "engine", other)

    def test_missing_directory_rejected(self, tmp_path):
        env = EdgeCloudEnvironment(build_device("mi8pro"), seed=9)
        with pytest.raises(ConfigError, match="metadata"):
            load_engine(tmp_path / "nope", env)

    def test_bad_format_version_rejected(self, trained, tmp_path):
        import json
        path = save_engine(trained, tmp_path / "engine")
        meta = json.loads((path / "meta.json").read_text())
        meta["format_version"] = 99
        (path / "meta.json").write_text(json.dumps(meta))
        env = EdgeCloudEnvironment(build_device("mi8pro"), seed=9)
        with pytest.raises(ConfigError, match="format"):
            load_engine(tmp_path / "engine", env)


class TestCrashSafety:
    def test_no_temp_files_left_behind(self, trained, tmp_path):
        path = save_engine(trained, tmp_path / "engine")
        names = {p.name for p in path.iterdir()}
        assert names == {"meta.json", "qtable.npz"}

    def test_metadata_records_table_digest(self, trained, tmp_path):
        import hashlib
        import json
        path = save_engine(trained, tmp_path / "engine")
        meta = json.loads((path / "meta.json").read_text())
        assert meta["table_sha256"] == hashlib.sha256(
            (path / "qtable.npz").read_bytes()).hexdigest()

    def test_corrupted_table_rejected(self, trained, tmp_path):
        path = save_engine(trained, tmp_path / "engine")
        table = path / "qtable.npz"
        blob = bytearray(table.read_bytes())
        blob[len(blob) // 2] ^= 0xFF  # flip one bit mid-file
        table.write_bytes(bytes(blob))
        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   seed=9)
        with pytest.raises(ConfigError, match="corrupt"):
            load_engine(path, env)

    def test_truncated_table_rejected(self, trained, tmp_path):
        """A torn copy (e.g. a crash mid-``cp``) fails the digest check
        instead of surfacing as a numpy deserialization error."""
        path = save_engine(trained, tmp_path / "engine")
        table = path / "qtable.npz"
        table.write_bytes(table.read_bytes()[:100])
        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   seed=9)
        with pytest.raises(ConfigError, match="corrupt"):
            load_engine(path, env)

    def test_missing_table_rejected(self, trained, tmp_path):
        path = save_engine(trained, tmp_path / "engine")
        (path / "qtable.npz").unlink()
        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   seed=9)
        with pytest.raises(ConfigError, match="no Q-table"):
            load_engine(path, env)

    def test_legacy_checkpoint_without_digest_loads(self, trained,
                                                    tmp_path):
        import json
        path = save_engine(trained, tmp_path / "engine")
        meta = json.loads((path / "meta.json").read_text())
        del meta["table_sha256"]
        (path / "meta.json").write_text(json.dumps(meta))
        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   seed=9)
        loaded = load_engine(path, env)
        assert np.allclose(loaded.qtable.values, trained.qtable.values)

    def test_resave_overwrites_atomically(self, trained, tmp_path):
        """Saving over an existing checkpoint replaces it in place."""
        path = save_engine(trained, tmp_path / "engine")
        save_engine(trained, path)
        names = {p.name for p in path.iterdir()}
        assert names == {"meta.json", "qtable.npz"}
        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   seed=9)
        loaded = load_engine(path, env)
        assert np.allclose(loaded.qtable.values, trained.qtable.values)
