"""Tests for engine save/load."""

import numpy as np
import pytest

from repro.common import ConfigError
from repro.core.engine import AutoScale
from repro.core.persistence import load_engine, save_engine
from repro.env.environment import EdgeCloudEnvironment
from repro.env.qos import use_case_for
from repro.hardware.devices import build_device


@pytest.fixture()
def trained(zoo):
    env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                               seed=8)
    engine = AutoScale(env, seed=8)
    engine.run(use_case_for(zoo["mobilenet_v3"]), 60)
    return engine


class TestRoundTrip:
    def test_values_and_visits_preserved(self, trained, tmp_path):
        save_engine(trained, tmp_path / "engine")
        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   seed=9)
        loaded = load_engine(tmp_path / "engine", env)
        assert np.allclose(loaded.qtable.values, trained.qtable.values)
        assert np.array_equal(loaded.qtable.visits,
                              trained.qtable.visits)

    def test_loaded_engine_predicts_like_original(self, trained, zoo,
                                                  tmp_path):
        save_engine(trained, tmp_path / "engine")
        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   seed=9)
        loaded = load_engine(tmp_path / "engine", env)
        loaded.freeze()
        trained.freeze()
        observation = env.observe()
        net = zoo["mobilenet_v3"]
        assert loaded.predict(net, observation).key \
            == trained.predict(net, observation).key

    def test_hyperparameters_restored(self, trained, tmp_path):
        save_engine(trained, tmp_path / "engine")
        env = EdgeCloudEnvironment(build_device("mi8pro"), seed=9)
        loaded = load_engine(tmp_path / "engine", env)
        assert loaded.config == trained.config
        assert loaded.reward_config == trained.reward_config


class TestValidation:
    def test_wrong_device_rejected(self, trained, tmp_path):
        save_engine(trained, tmp_path / "engine")
        other = EdgeCloudEnvironment(build_device("moto_x_force"),
                                     scenario="S1", seed=9)
        with pytest.raises(ConfigError, match="action space"):
            load_engine(tmp_path / "engine", other)

    def test_missing_directory_rejected(self, tmp_path):
        env = EdgeCloudEnvironment(build_device("mi8pro"), seed=9)
        with pytest.raises(ConfigError, match="metadata"):
            load_engine(tmp_path / "nope", env)

    def test_bad_format_version_rejected(self, trained, tmp_path):
        import json
        path = save_engine(trained, tmp_path / "engine")
        meta = json.loads((path / "meta.json").read_text())
        meta["format_version"] = 99
        (path / "meta.json").write_text(json.dumps(meta))
        env = EdgeCloudEnvironment(build_device("mi8pro"), seed=9)
        with pytest.raises(ConfigError, match="format"):
            load_engine(tmp_path / "engine", env)
