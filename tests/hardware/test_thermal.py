"""Tests for the thermal throttling model."""

import pytest

from repro.common import ConfigError
from repro.hardware.thermal import ThermalModel


class TestFrequencyCap:
    def test_no_throttle_below_threshold(self):
        model = ThermalModel(threshold=0.9)
        assert model.frequency_cap(0.4, 0.4) == 1.0

    def test_throttles_above_threshold(self):
        model = ThermalModel(threshold=0.9)
        assert model.frequency_cap(1.0, 0.9) < 1.0

    def test_cap_floor_at_full_load(self):
        model = ThermalModel(threshold=0.9, max_cap=0.62)
        assert model.frequency_cap(1.0, 1.0) == pytest.approx(0.62)

    def test_monotone_in_corunner_load(self):
        model = ThermalModel()
        caps = [model.frequency_cap(1.0, util)
                for util in (0.0, 0.3, 0.6, 0.9, 1.0)]
        assert caps == sorted(caps, reverse=True)

    def test_utilization_range_checked(self):
        with pytest.raises(ConfigError):
            ThermalModel().frequency_cap(1.5, 0.0)


class TestSlowdown:
    def test_slowdown_is_reciprocal_cap(self):
        model = ThermalModel()
        cap = model.frequency_cap(1.0, 0.8)
        assert model.slowdown(1.0, 0.8) == pytest.approx(1.0 / cap)

    def test_slowdown_at_least_one(self):
        model = ThermalModel()
        assert model.slowdown(0.1, 0.1) == 1.0


class TestValidation:
    def test_bad_threshold(self):
        with pytest.raises(ConfigError):
            ThermalModel(threshold=2.5)

    def test_bad_cap(self):
        with pytest.raises(ConfigError):
            ThermalModel(max_cap=0.0)
