"""Tests for the battery model."""

import pytest

from repro.common import ConfigError
from repro.hardware.battery import Battery, projected_runtime_hours


class TestBattery:
    def test_capacity_conversion(self):
        # 1000 mAh x 1 V = 1 Wh = 3600 J = 3.6e6 mJ.
        battery = Battery(capacity_mah=1000.0, voltage_v=1.0)
        assert battery.capacity_mj == pytest.approx(3.6e6)

    def test_drain_tracks_remaining(self):
        battery = Battery(capacity_mah=1000.0, voltage_v=1.0)
        battery.drain(1.8e6)
        assert battery.remaining_fraction == pytest.approx(0.5)
        assert not battery.is_empty

    def test_empty_after_full_drain(self):
        battery = Battery(capacity_mah=1000.0, voltage_v=1.0)
        battery.drain(4e6)
        assert battery.is_empty
        assert battery.remaining_mj == 0.0

    def test_recharge(self):
        battery = Battery()
        battery.drain(1000.0)
        battery.recharge()
        assert battery.remaining_fraction == 1.0

    def test_negative_drain_rejected(self):
        with pytest.raises(ConfigError):
            Battery().drain(-1.0)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigError):
            Battery(capacity_mah=0.0)
        with pytest.raises(ConfigError):
            Battery(voltage_v=-1.0)


class TestProjectedRuntime:
    def test_simple_projection(self):
        battery = Battery(capacity_mah=1000.0, voltage_v=1.0)  # 3.6e6 mJ
        # 1000 inferences/h at 100 mJ each + 900 mW background
        # = 1e5 + 3.24e6 mJ/h.
        hours = projected_runtime_hours(battery, 100.0, 1000.0,
                                        background_power_mw=900.0)
        assert hours == pytest.approx(3.6e6 / 3.34e6, rel=1e-6)

    def test_cheaper_inference_lasts_longer(self):
        battery = Battery()
        slow = projected_runtime_hours(battery, 1000.0, 1000.0)
        fast = projected_runtime_hours(battery, 100.0, 1000.0)
        assert fast > slow

    def test_zero_workload_rejected(self):
        with pytest.raises(ConfigError):
            projected_runtime_hours(Battery(), 0.0, 0.0)

    def test_background_power_reduces_runtime(self):
        battery = Battery()
        idle = projected_runtime_hours(battery, 100.0, 100.0)
        busy = projected_runtime_hours(battery, 100.0, 100.0,
                                       background_power_mw=500.0)
        assert busy < idle
