"""Tests for the SoC composition."""

import pytest

from repro.common import ConfigError
from repro.hardware.devices import mi8pro
from repro.hardware.dvfs import build_vf_table
from repro.hardware.processor import Processor, ProcessorKind
from repro.hardware.soc import MobileSoC
from repro.models.quantization import Precision


def _cpu():
    return Processor(
        name="c", kind=ProcessorKind.CPU,
        vf_table=build_vf_table(2, 1000), peak_gmacs=1.0,
        precisions={Precision.FP32: 1.0},
        busy_power_mw=100.0, idle_power_mw=10.0,
    )


class TestMobileSoC:
    def test_requires_cpu(self):
        with pytest.raises(ConfigError):
            MobileSoC(name="x", processors={}, platform_idle_mw=100.0)

    def test_roles_ordered(self):
        soc = mi8pro().soc
        assert soc.roles == ("cpu", "gpu", "dsp")

    def test_processor_lookup(self):
        soc = mi8pro().soc
        assert soc.processor("gpu").kind is ProcessorKind.GPU

    def test_missing_role_keyerror_names_available(self):
        soc = MobileSoC(name="x", processors={"cpu": _cpu()},
                        platform_idle_mw=100.0)
        with pytest.raises(KeyError, match="cpu"):
            soc.processor("dsp")

    def test_role_kind_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            MobileSoC(name="x", processors={"cpu": _cpu(), "gpu": _cpu()},
                      platform_idle_mw=100.0)

    def test_has(self):
        soc = MobileSoC(name="x", processors={"cpu": _cpu()},
                        platform_idle_mw=100.0)
        assert soc.has("cpu")
        assert not soc.has("gpu")

    def test_negative_platform_power_rejected(self):
        with pytest.raises(ConfigError):
            MobileSoC(name="x", processors={"cpu": _cpu()},
                      platform_idle_mw=-1.0)

    def test_cpu_property(self):
        soc = mi8pro().soc
        assert soc.cpu is soc.processor("cpu")
