"""Tests for the equation (1)-(3) energy models."""

import pytest

from repro.common import ConfigError
from repro.hardware.dvfs import build_vf_table
from repro.hardware.power import (
    busy_idle_energy_mj,
    cpu_energy_mj,
    dsp_energy_mj,
    gpu_energy_mj,
    platform_energy_mj,
)
from repro.hardware.processor import Processor, ProcessorKind
from repro.models.quantization import Precision


def _proc(kind, busy=2000.0, idle=200.0, steps=4, cores=4):
    precisions = ({Precision.INT8: 1.0} if kind is ProcessorKind.DSP
                  else {Precision.FP32: 1.0})
    return Processor(
        name=f"test_{kind.value}", kind=kind,
        vf_table=build_vf_table(steps, 1000),
        peak_gmacs=10.0, precisions=precisions,
        busy_power_mw=busy, idle_power_mw=idle, num_cores=cores,
    )


class TestBusyIdleEnergy:
    def test_pure_busy(self):
        proc = _proc(ProcessorKind.GPU)
        # 2000 mW for 100 ms = 200 mJ.
        assert busy_idle_energy_mj(proc, 100.0) == pytest.approx(200.0)

    def test_idle_portion(self):
        proc = _proc(ProcessorKind.GPU)
        energy = busy_idle_energy_mj(proc, 0.0, idle_ms=50.0)
        assert energy == pytest.approx(200.0 * 50.0 / 1000.0)

    def test_lower_vf_step_cheaper(self):
        proc = _proc(ProcessorKind.GPU)
        assert (busy_idle_energy_mj(proc, 100.0, vf_index=0)
                < busy_idle_energy_mj(proc, 100.0, vf_index=-1))

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigError):
            busy_idle_energy_mj(_proc(ProcessorKind.GPU), -1.0)


class TestCpuEnergy:
    def test_eq1_full_cluster(self):
        proc = _proc(ProcessorKind.CPU)
        assert cpu_energy_mj(proc, 100.0) == pytest.approx(200.0)

    def test_fewer_active_cores_cheaper(self):
        proc = _proc(ProcessorKind.CPU)
        assert (cpu_energy_mj(proc, 100.0, active_cores=1)
                < cpu_energy_mj(proc, 100.0, active_cores=4))

    def test_active_core_range_checked(self):
        with pytest.raises(ConfigError):
            cpu_energy_mj(_proc(ProcessorKind.CPU), 100.0, active_cores=9)

    def test_rejects_non_cpu(self):
        with pytest.raises(ConfigError):
            cpu_energy_mj(_proc(ProcessorKind.GPU), 100.0)


class TestGpuEnergy:
    def test_eq2(self):
        proc = _proc(ProcessorKind.GPU, busy=1000.0, idle=100.0)
        assert gpu_energy_mj(proc, 10.0, idle_ms=10.0) == pytest.approx(
            1000.0 * 10.0 / 1000.0 + 100.0 * 10.0 / 1000.0
        )

    def test_rejects_non_gpu(self):
        with pytest.raises(ConfigError):
            gpu_energy_mj(_proc(ProcessorKind.CPU), 10.0)


class TestDspEnergy:
    def test_eq3_constant_power(self):
        proc = _proc(ProcessorKind.DSP, busy=900.0, idle=100.0, steps=1)
        # E_DSP = P_DSP * R_latency.
        assert dsp_energy_mj(proc, 40.0) == pytest.approx(36.0)

    def test_rejects_non_dsp(self):
        with pytest.raises(ConfigError):
            dsp_energy_mj(_proc(ProcessorKind.CPU), 10.0)

    def test_negative_latency_rejected(self):
        proc = _proc(ProcessorKind.DSP, steps=1)
        with pytest.raises(ConfigError):
            dsp_energy_mj(proc, -5.0)


class TestPlatformEnergy:
    def test_value(self):
        assert platform_energy_mj(500.0, 100.0) == pytest.approx(50.0)

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            platform_energy_mj(-1.0, 10.0)
