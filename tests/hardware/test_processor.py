"""Tests for the processor performance model."""

import pytest

from repro.common import ConfigError
from repro.hardware.dvfs import build_vf_table
from repro.hardware.processor import Processor, ProcessorKind
from repro.models.layers import LayerType, make_layer
from repro.models.quantization import Precision


def _cpu(peak=10.0, steps=5):
    return Processor(
        name="test_cpu", kind=ProcessorKind.CPU,
        vf_table=build_vf_table(steps, 2000),
        peak_gmacs=peak,
        precisions={Precision.FP32: 1.0, Precision.INT8: 2.0},
        busy_power_mw=4000.0, idle_power_mw=300.0, num_cores=4,
    )


def _gpu():
    return Processor(
        name="test_gpu", kind=ProcessorKind.GPU,
        vf_table=build_vf_table(4, 700),
        peak_gmacs=30.0,
        precisions={Precision.FP32: 1.0, Precision.FP16: 1.8},
        busy_power_mw=1200.0, idle_power_mw=150.0,
    )


class TestThroughput:
    def test_top_step_fp32_equals_peak(self):
        assert _cpu().throughput_gmacs(Precision.FP32) == pytest.approx(10.0)

    def test_scales_with_frequency(self):
        cpu = _cpu()
        low = cpu.throughput_gmacs(Precision.FP32, 0)
        high = cpu.throughput_gmacs(Precision.FP32, -1)
        assert low == pytest.approx(
            high * cpu.vf_table[0].freq_mhz / cpu.vf_table[-1].freq_mhz
        )

    def test_precision_multiplier(self):
        cpu = _cpu()
        assert cpu.throughput_gmacs(Precision.INT8) == pytest.approx(20.0)

    def test_unsupported_precision_rejected(self):
        with pytest.raises(ConfigError):
            _cpu().throughput_gmacs(Precision.FP16)


class TestLayerLatency:
    def test_latency_includes_dispatch(self):
        cpu = _cpu()
        layer = make_layer(LayerType.CONV, "c", macs=0.0)
        assert cpu.layer_latency_ms(layer, Precision.FP32) \
            == pytest.approx(cpu.dispatch_ms)

    def test_latency_proportional_to_macs(self):
        cpu = _cpu()
        small = make_layer(LayerType.CONV, "s", macs=1e8)
        big = make_layer(LayerType.CONV, "b", macs=2e8)
        small_ms = cpu.layer_latency_ms(small, Precision.FP32) \
            - cpu.dispatch_ms
        big_ms = cpu.layer_latency_ms(big, Precision.FP32) \
            - cpu.dispatch_ms
        assert big_ms == pytest.approx(2 * small_ms)

    def test_slowdown_multiplies_compute_only(self):
        cpu = _cpu()
        layer = make_layer(LayerType.CONV, "c", macs=1e8)
        base = cpu.layer_latency_ms(layer, Precision.FP32)
        slowed = cpu.layer_latency_ms(layer, Precision.FP32, slowdown=2.0)
        assert slowed == pytest.approx(2 * base - cpu.dispatch_ms)

    def test_slowdown_below_one_rejected(self):
        layer = make_layer(LayerType.CONV, "c", macs=1e8)
        with pytest.raises(ConfigError):
            _cpu().layer_latency_ms(layer, Precision.FP32, slowdown=0.5)

    def test_fig3_fc_slower_on_gpu_than_cpu(self):
        """Fig. 3's core observation, encoded in layer efficiencies."""
        cpu, gpu = _cpu(), _gpu()
        fc = make_layer(LayerType.FC, "f", macs=5e7)
        conv = make_layer(LayerType.CONV, "c", macs=5e8)
        assert (gpu.layer_latency_ms(fc, Precision.FP32)
                > cpu.layer_latency_ms(fc, Precision.FP32))
        assert (gpu.layer_latency_ms(conv, Precision.FP32)
                < cpu.layer_latency_ms(conv, Precision.FP32))


class TestBusyPower:
    def test_top_step_is_rated_busy_power(self):
        assert _cpu().busy_power_at(-1) == pytest.approx(4000.0)

    def test_lower_step_draws_less(self):
        cpu = _cpu()
        assert cpu.busy_power_at(0) < cpu.busy_power_at(-1)

    def test_never_below_idle(self):
        cpu = _cpu()
        for index in range(cpu.num_vf_steps):
            assert cpu.busy_power_at(index) >= cpu.idle_power_mw

    def test_v2f_scaling_shape(self):
        """Dynamic power must scale as V^2 * f."""
        cpu = _cpu()
        step = cpu.vf_table[0]
        top = cpu.vf_table[-1]
        expected = 300.0 + (4000.0 - 300.0) * (
            (step.voltage_v / top.voltage_v) ** 2
            * (step.freq_mhz / top.freq_mhz)
        )
        assert cpu.busy_power_at(0) == pytest.approx(expected)


class TestValidation:
    def test_empty_vf_table_rejected(self):
        with pytest.raises(ConfigError):
            Processor(name="x", kind=ProcessorKind.CPU, vf_table=(),
                      peak_gmacs=1.0, precisions={Precision.FP32: 1.0},
                      busy_power_mw=100.0, idle_power_mw=10.0)

    def test_fp32_multiplier_must_be_one(self):
        with pytest.raises(ConfigError):
            Processor(name="x", kind=ProcessorKind.CPU,
                      vf_table=build_vf_table(2, 1000), peak_gmacs=1.0,
                      precisions={Precision.FP32: 2.0},
                      busy_power_mw=100.0, idle_power_mw=10.0)

    def test_busy_must_exceed_idle(self):
        with pytest.raises(ConfigError):
            Processor(name="x", kind=ProcessorKind.CPU,
                      vf_table=build_vf_table(2, 1000), peak_gmacs=1.0,
                      precisions={Precision.FP32: 1.0},
                      busy_power_mw=10.0, idle_power_mw=100.0)

    def test_default_efficiencies_filled_by_kind(self):
        gpu = _gpu()
        assert gpu.layer_efficiency[LayerType.CONV] > \
            gpu.layer_efficiency[LayerType.FC]

    def test_supports_dvfs(self):
        assert _cpu(steps=5).supports_dvfs
        single = Processor(
            name="dsp", kind=ProcessorKind.DSP,
            vf_table=build_vf_table(1, 750), peak_gmacs=40.0,
            precisions={Precision.INT8: 1.0},
            busy_power_mw=900.0, idle_power_mw=100.0,
        )
        assert not single.supports_dvfs
