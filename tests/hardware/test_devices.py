"""Tests for the Table-II device roster."""

import pytest

from repro.hardware.devices import (
    DEVICE_BUILDERS,
    PHONE_NAMES,
    DeviceClass,
    build_device,
)
from repro.models.quantization import Precision


class TestRoster:
    def test_paper_platforms_plus_extensions(self):
        assert set(DEVICE_BUILDERS) == {
            # The paper's five platforms ...
            "mi8pro", "galaxy_s10e", "moto_x_force", "galaxy_tab_s6",
            "cloud_server",
            # ... plus the Section V-C NPU/TPU extension variants.
            "mi8pro_npu", "cloud_server_tpu",
        }

    def test_three_phones(self):
        assert len(PHONE_NAMES) == 3
        for name in PHONE_NAMES:
            assert build_device(name).device_class is DeviceClass.PHONE

    def test_unknown_device(self):
        with pytest.raises(KeyError):
            build_device("pixel_9")

    def test_tablet_and_server_classes(self):
        assert build_device("galaxy_tab_s6").device_class \
            is DeviceClass.TABLET
        assert build_device("cloud_server").device_class \
            is DeviceClass.SERVER

    def test_is_mobile(self):
        assert build_device("mi8pro").is_mobile
        assert not build_device("cloud_server").is_mobile


class TestTableII:
    """Clock rates and V/F step counts verbatim from Table II."""

    def test_mi8pro(self):
        soc = build_device("mi8pro").soc
        assert soc.cpu.max_freq_mhz == pytest.approx(2800)
        assert soc.cpu.num_vf_steps == 23
        assert soc.processor("gpu").max_freq_mhz == pytest.approx(700)
        assert soc.processor("gpu").num_vf_steps == 7
        assert soc.has("dsp")

    def test_galaxy_s10e(self):
        soc = build_device("galaxy_s10e").soc
        assert soc.cpu.max_freq_mhz == pytest.approx(2700)
        assert soc.cpu.num_vf_steps == 21
        assert soc.processor("gpu").num_vf_steps == 9
        assert not soc.has("dsp")

    def test_moto_x_force(self):
        soc = build_device("moto_x_force").soc
        assert soc.cpu.max_freq_mhz == pytest.approx(1900)
        assert soc.cpu.num_vf_steps == 15
        assert soc.processor("gpu").max_freq_mhz == pytest.approx(600)
        assert soc.processor("gpu").num_vf_steps == 6
        assert not soc.has("dsp")


class TestCapabilities:
    def test_dsp_is_int8_only_no_dvfs(self):
        dsp = build_device("mi8pro").soc.processor("dsp")
        assert dsp.supports(Precision.INT8)
        assert not dsp.supports(Precision.FP32)
        assert not dsp.supports_dvfs

    def test_mobile_cpus_support_int8(self):
        for name in PHONE_NAMES:
            assert build_device(name).soc.cpu.supports(Precision.INT8)

    def test_mobile_gpus_support_fp16(self):
        for name in PHONE_NAMES:
            gpu = build_device(name).soc.processor("gpu")
            assert gpu.supports(Precision.FP16)

    def test_cloud_is_fp32(self):
        soc = build_device("cloud_server").soc
        assert soc.cpu.supports(Precision.FP32)
        assert not soc.cpu.supports(Precision.INT8)

    def test_performance_tiering(self):
        """Mid-end < high-end < tablet < server (per processor class)."""
        moto = build_device("moto_x_force").soc.cpu.peak_gmacs
        mi8 = build_device("mi8pro").soc.cpu.peak_gmacs
        tab = build_device("galaxy_tab_s6").soc.cpu.peak_gmacs
        server = build_device("cloud_server").soc.cpu.peak_gmacs
        assert moto < mi8 < tab < server

    def test_builders_return_fresh_instances(self):
        assert build_device("mi8pro") is not build_device("mi8pro")
