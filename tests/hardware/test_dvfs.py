"""Tests for DVFS table construction."""

import pytest

from repro.common import ConfigError
from repro.hardware.dvfs import VFStep, build_vf_table


class TestVFStep:
    def test_valid(self):
        step = VFStep(freq_mhz=1000, voltage_v=0.8)
        assert step.freq_mhz == 1000

    def test_non_positive_frequency_rejected(self):
        with pytest.raises(ConfigError):
            VFStep(freq_mhz=0, voltage_v=0.8)

    def test_non_positive_voltage_rejected(self):
        with pytest.raises(ConfigError):
            VFStep(freq_mhz=1000, voltage_v=-0.1)


class TestBuildVfTable:
    def test_step_count(self):
        assert len(build_vf_table(23, 2800)) == 23

    def test_top_step_is_peak(self):
        table = build_vf_table(7, 700)
        assert table[-1].freq_mhz == pytest.approx(700)
        assert table[-1].voltage_v == pytest.approx(1.0)

    def test_ascending_frequencies(self):
        table = build_vf_table(15, 1900)
        freqs = [s.freq_mhz for s in table]
        assert freqs == sorted(freqs)

    def test_ascending_voltages(self):
        table = build_vf_table(15, 1900)
        volts = [s.voltage_v for s in table]
        assert volts == sorted(volts)

    def test_min_freq_ratio(self):
        table = build_vf_table(10, 1000, min_freq_ratio=0.5)
        assert table[0].freq_mhz == pytest.approx(500)

    def test_single_step_table(self):
        table = build_vf_table(1, 750)
        assert len(table) == 1
        assert table[0].freq_mhz == pytest.approx(750)
        assert table[0].voltage_v == pytest.approx(1.0)

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigError):
            build_vf_table(0, 1000)
        with pytest.raises(ConfigError):
            build_vf_table(5, -100)
        with pytest.raises(ConfigError):
            build_vf_table(5, 1000, min_freq_ratio=1.5)
        with pytest.raises(ConfigError):
            build_vf_table(5, 1000, min_voltage_v=1.2, max_voltage_v=1.0)
