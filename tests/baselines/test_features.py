"""Tests for the ML-baseline feature encoders."""

import numpy as np
import pytest

from repro.baselines.features import (
    ACTION_DIM,
    CONTEXT_DIM,
    PAIR_DIM,
    Standardizer,
    collect_dataset,
    encode_action,
    encode_context,
    encode_pair,
    vf_fraction_for,
)
from repro.common import ConfigError, make_rng
from repro.env.observation import Observation
from repro.env.qos import use_case_for
from repro.env.target import ExecutionTarget, Location
from repro.models.quantization import Precision


class TestEncodeContext:
    def test_dimension(self, zoo):
        vec = encode_context(zoo["mobilenet_v3"], Observation())
        assert vec.shape == (CONTEXT_DIM,)

    def test_macs_in_log_scale(self, zoo):
        light = encode_context(zoo["mobilenet_v3"], Observation())[3]
        heavy = encode_context(zoo["inception_v3"], Observation())[3]
        ratio = (zoo["inception_v3"].mega_macs
                 / zoo["mobilenet_v3"].mega_macs)
        assert heavy - light == pytest.approx(np.log1p(
            zoo["inception_v3"].mega_macs) - np.log1p(
            zoo["mobilenet_v3"].mega_macs))
        assert heavy / light < ratio  # compressed

    def test_weakness_transform_saturates(self, zoo):
        strong = encode_context(zoo["mobilenet_v3"],
                                Observation(rssi_wlan_dbm=-50.0))[8]
        weak = encode_context(zoo["mobilenet_v3"],
                              Observation(rssi_wlan_dbm=-95.0))[8]
        assert strong < 0.01
        assert weak > 0.95


class TestEncodeAction:
    def test_dimension_and_one_hots(self):
        target = ExecutionTarget(Location.CLOUD, "gpu", Precision.FP32)
        vec = encode_action(target)
        assert vec.shape == (ACTION_DIM,)
        # location one-hot (3) + role one-hot (4) + precision (3).
        assert vec[:3].sum() == 1.0
        assert vec[3:7].sum() == 1.0
        assert vec[7:10].sum() == 1.0

    def test_remote_vf_fraction_is_one(self):
        target = ExecutionTarget(Location.CLOUD, "gpu", Precision.FP32)
        assert encode_action(target)[-2] == 1.0

    def test_explicit_vf_fraction(self):
        target = ExecutionTarget(Location.LOCAL, "cpu", Precision.INT8, 3)
        vec = encode_action(target, vf_fraction=0.5)
        assert vec[-2] == 0.5
        assert vec[-1] == pytest.approx(np.log(0.5))


class TestVfFraction:
    def test_local_fraction_from_table(self, env):
        cpu = env.device.soc.cpu
        top = ExecutionTarget(Location.LOCAL, "cpu", Precision.FP32,
                              cpu.num_vf_steps - 1)
        bottom = ExecutionTarget(Location.LOCAL, "cpu", Precision.FP32, 0)
        assert vf_fraction_for(top, env) == pytest.approx(1.0)
        assert vf_fraction_for(bottom, env) == pytest.approx(
            cpu.vf_table[0].freq_mhz / cpu.max_freq_mhz
        )

    def test_remote_is_full_clock(self, env):
        target = ExecutionTarget(Location.CLOUD, "gpu", Precision.FP32)
        assert vf_fraction_for(target, env) == 1.0


class TestEncodePair:
    def test_dimension(self, env, zoo):
        target = env.targets()[0]
        vec = encode_pair(zoo["mobilenet_v3"], Observation(), target, env)
        assert vec.shape == (PAIR_DIM,)

    def test_interactions_zero_for_other_locations(self, env, zoo):
        cloud = ExecutionTarget(Location.CLOUD, "gpu", Precision.FP32)
        vec = encode_pair(zoo["mobilenet_v3"], Observation(), cloud, env)
        # log_macs * is_local must be zero for a cloud action.
        assert vec[CONTEXT_DIM + ACTION_DIM] == 0.0
        # log_macs * is_cloud must be positive.
        assert vec[CONTEXT_DIM + ACTION_DIM + 1] > 0.0


class TestStandardizer:
    def test_zero_mean_unit_std(self):
        rng = make_rng(0)
        matrix = rng.normal(5.0, 3.0, size=(200, 4))
        scaled = Standardizer().fit_transform(matrix)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_protected(self):
        matrix = np.ones((10, 2))
        scaled = Standardizer().fit_transform(matrix)
        assert np.all(np.isfinite(scaled))

    def test_unfitted_rejected(self):
        with pytest.raises(ConfigError):
            Standardizer().transform(np.ones((2, 2)))

    def test_non_2d_rejected(self):
        with pytest.raises(ConfigError):
            Standardizer().fit(np.ones(5))


class TestCollectDataset:
    def test_shapes_and_positivity(self, env, zoo):
        cases = [use_case_for(zoo["mobilenet_v3"])]
        dataset = collect_dataset(env, cases, samples_per_case=12,
                                  rng=make_rng(0))
        assert len(dataset) == 12
        assert dataset.features.shape == (12, PAIR_DIM)
        assert (dataset.energy_mj > 0).all()
        assert (dataset.latency_ms > 0).all()
        assert len(dataset.target_keys) == 12

    def test_invalid_sample_count(self, env, zoo):
        with pytest.raises(ConfigError):
            collect_dataset(env, [use_case_for(zoo["mobilenet_v3"])],
                            samples_per_case=0)
