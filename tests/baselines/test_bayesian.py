"""Tests for the Bayesian-optimization baseline."""

import numpy as np
import pytest

from repro.baselines.bayesian import (
    BayesianOptScheduler,
    GaussianProcess,
    expected_improvement,
)
from repro.common import ConfigError, make_rng
from repro.env.qos import use_case_for


class TestGaussianProcess:
    def test_interpolates_training_points(self):
        x = np.linspace(0, 5, 12)[:, None]
        y = np.sin(x).ravel()
        gp = GaussianProcess(length_scale=1.0, noise_var=1e-4).fit(x, y)
        predictions = gp.predict(x)
        assert np.allclose(predictions, y, atol=0.05)

    def test_uncertainty_grows_away_from_data(self):
        x = np.zeros((5, 1))
        y = np.zeros(5)
        gp = GaussianProcess().fit(x, y)
        _, near_std = gp.predict(np.array([[0.1]]), return_std=True)
        _, far_std = gp.predict(np.array([[8.0]]), return_std=True)
        assert far_std[0] > near_std[0]

    def test_mean_reverts_to_prior_far_away(self):
        x = np.zeros((5, 1))
        y = np.full(5, 3.0)
        gp = GaussianProcess().fit(x, y)
        far_mean = gp.predict(np.array([[50.0]]))[0]
        assert far_mean == pytest.approx(3.0, abs=0.2)

    def test_unfitted_rejected(self):
        with pytest.raises(ConfigError):
            GaussianProcess().predict(np.zeros((1, 1)))

    def test_bad_hyperparameters(self):
        with pytest.raises(ConfigError):
            GaussianProcess(length_scale=0.0)


class TestExpectedImprovement:
    def test_zero_when_certain_and_worse(self):
        ei = expected_improvement(np.array([5.0]), np.array([0.0]),
                                  best=1.0)
        assert ei[0] == 0.0

    def test_positive_when_certain_and_better(self):
        ei = expected_improvement(np.array([0.5]), np.array([0.0]),
                                  best=1.0)
        assert ei[0] == pytest.approx(0.5)

    def test_uncertainty_adds_value(self):
        certain = expected_improvement(np.array([1.0]), np.array([0.0]),
                                       best=1.0)
        uncertain = expected_improvement(np.array([1.0]), np.array([1.0]),
                                         best=1.0)
        assert uncertain[0] > certain[0]

    def test_maximize_mode(self):
        ei = expected_improvement(np.array([2.0]), np.array([0.0]),
                                  best=1.0, minimize=False)
        assert ei[0] == pytest.approx(1.0)


class TestBayesianOptScheduler:
    def test_train_and_select(self, env, zoo):
        cases = [use_case_for(zoo["mobilenet_v3"])]
        scheduler = BayesianOptScheduler(warmup=6, iterations=3, seed=0)
        scheduler.train(env, cases)
        target = scheduler.select(env, cases[0], env.observe())
        assert target in env.targets()

    def test_untrained_rejected(self, env, zoo):
        scheduler = BayesianOptScheduler()
        with pytest.raises(ConfigError):
            scheduler.select(env, use_case_for(zoo["mobilenet_v3"]),
                             env.observe())

    def test_bad_params(self):
        with pytest.raises(ConfigError):
            BayesianOptScheduler(warmup=1)

    def test_predictions_positive(self, env, zoo):
        case = use_case_for(zoo["mobilenet_v3"])
        scheduler = BayesianOptScheduler(warmup=6, iterations=2, seed=1)
        scheduler.train(env, [case])
        energy, latency = scheduler.predict_energy_latency(
            case, env.observe(), list(env.targets())[:10]
        )
        assert (energy > 0).all() and (latency > 0).all()
