"""Tests for the Opt oracle."""

import pytest

from repro.baselines.oracle import OptOracle
from repro.baselines.static import EdgeBest, EdgeCpuFp32
from repro.env.environment import EdgeCloudEnvironment
from repro.env.qos import use_case_for
from repro.hardware.devices import build_device


class TestOracleOptimality:
    def test_oracle_never_worse_than_any_feasible_target(
            self, env, mobilenet_case):
        oracle = OptOracle(cache=False)
        obs = env.observe()
        target, nominal = oracle.evaluate(env, mobilenet_case, obs)
        assert nominal.latency_ms <= mobilenet_case.qos_ms
        for other in env.targets():
            other_nominal = env.estimate(mobilenet_case.network, other,
                                         obs)
            if other_nominal.latency_ms <= mobilenet_case.qos_ms:
                assert nominal.energy_mj <= other_nominal.energy_mj + 1e-9

    def test_oracle_beats_static_baselines(self, env, resnet_case):
        oracle = OptOracle(cache=False)
        obs = env.observe()
        _, nominal = oracle.evaluate(env, resnet_case, obs)
        for baseline in (EdgeCpuFp32(), EdgeBest()):
            other = env.estimate(
                resnet_case.network,
                baseline.select(env, resnet_case, obs), obs,
            )
            assert nominal.energy_mj <= other.energy_mj + 1e-9

    def test_respects_accuracy_target(self, env, zoo):
        case = use_case_for(zoo["mobilenet_v3"], accuracy_target=65.0)
        oracle = OptOracle(cache=False)
        target = oracle.select(env, case, env.observe())
        assert env.accuracy.lookup("mobilenet_v3",
                                   target.precision) >= 65.0

    def test_falls_back_when_nothing_meets_qos(self, zoo):
        """Fig. 9: even Opt violates QoS sometimes (weak Wi-Fi + heavy
        network) — it then minimizes energy among accuracy-OK targets."""
        env = EdgeCloudEnvironment(build_device("moto_x_force"),
                                   scenario="S4", seed=0)
        case = use_case_for(zoo["inception_v3"])
        oracle = OptOracle(cache=False)
        obs = env.observe()
        target, nominal = oracle.evaluate(env, case, obs)
        assert nominal.latency_ms > case.qos_ms  # genuinely infeasible
        for other in env.targets():
            other_nominal = env.estimate(case.network, other, obs)
            assert nominal.energy_mj <= other_nominal.energy_mj + 1e-9


class TestOracleCache:
    def test_cache_hit_by_state_key(self, env, mobilenet_case):
        oracle = OptOracle(cache=True)
        obs = env.observe()
        first = oracle.select(env, mobilenet_case, obs, state_key=42)
        second = oracle.select(env, mobilenet_case, obs, state_key=42)
        assert first is second

    def test_no_state_key_no_cache(self, env, mobilenet_case):
        oracle = OptOracle(cache=True)
        obs = env.observe()
        oracle.select(env, mobilenet_case, obs)
        assert not oracle._cache
