"""Tests for the static baseline policies."""

import pytest

from repro.baselines.static import (
    CloudOffload,
    ConnectedEdgeOffload,
    EdgeBest,
    EdgeCpuFp32,
)
from repro.env.target import Location
from repro.models.quantization import Precision


class TestEdgeCpuFp32:
    def test_always_local_cpu_fp32_top_clock(self, env, mobilenet_case):
        policy = EdgeCpuFp32()
        obs = env.observe()
        target = policy.select(env, mobilenet_case, obs)
        assert target.location is Location.LOCAL
        assert target.role == "cpu"
        assert target.precision is Precision.FP32
        assert target.vf_index == env.device.soc.cpu.num_vf_steps - 1

    def test_execute_returns_result(self, env, mobilenet_case):
        result = EdgeCpuFp32().execute(env, mobilenet_case)
        assert result.target_key.startswith("local/cpu/fp32")


class TestEdgeBest:
    def test_stays_local(self, env, mobilenet_case, resnet_case,
                         bert_case):
        policy = EdgeBest()
        for case in (mobilenet_case, resnet_case, bert_case):
            target = policy.select(env, case, env.observe())
            assert target.location is Location.LOCAL

    def test_beats_cpu_baseline_energy(self, env, resnet_case):
        obs = env.observe()
        best = env.estimate(resnet_case.network,
                            EdgeBest().select(env, resnet_case, obs), obs)
        cpu = env.estimate(resnet_case.network,
                           EdgeCpuFp32().select(env, resnet_case, obs),
                           obs)
        assert best.energy_mj < cpu.energy_mj

    def test_choice_cached_per_use_case(self, env, mobilenet_case):
        policy = EdgeBest()
        obs = env.observe()
        first = policy.select(env, mobilenet_case, obs)
        second = policy.select(env, mobilenet_case, obs)
        assert first is second

    def test_static_choice_ignores_interference(self, mi8pro_device,
                                                mobilenet_case):
        """Fig. 5's criticism: Edge(Best) cannot react to co-runners."""
        from repro.env.environment import EdgeCloudEnvironment
        quiet_env = EdgeCloudEnvironment(mi8pro_device, scenario="S1",
                                         seed=0)
        policy = EdgeBest()
        quiet_target = policy.select(quiet_env, mobilenet_case,
                                     quiet_env.observe())
        busy_env = EdgeCloudEnvironment(mi8pro_device, scenario="S2",
                                        seed=0)
        busy_target = policy.select(busy_env, mobilenet_case,
                                    busy_env.observe())
        assert quiet_target.key == busy_target.key


class TestRemoteOffloads:
    def test_cloud_always_cloud(self, env, mobilenet_case, bert_case):
        policy = CloudOffload()
        for case in (mobilenet_case, bert_case):
            target = policy.select(env, case, env.observe())
            assert target.location is Location.CLOUD

    def test_connected_always_connected(self, env, mobilenet_case):
        target = ConnectedEdgeOffload().select(env, mobilenet_case,
                                               env.observe())
        assert target.location is Location.CONNECTED

    def test_cloud_picks_gpu_for_heavy(self, env, bert_case):
        target = CloudOffload().select(env, bert_case, env.observe())
        assert target.role == "gpu"

    def test_accuracy_target_respected(self, env, zoo):
        from repro.env.qos import use_case_for
        case = use_case_for(zoo["mobilenet_v3"], accuracy_target=65.0)
        target = ConnectedEdgeOffload().select(env, case, env.observe())
        # INT8 on the connected DSP fails the 65% target for MobileNet v3.
        assert target.precision is not Precision.INT8
