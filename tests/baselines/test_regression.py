"""Tests for the regression baselines (LR / SVR)."""

import numpy as np
import pytest

from repro.baselines.regression import (
    LinearRegression,
    LinearSVR,
    RegressionScheduler,
    linear_regression_scheduler,
    svr_scheduler,
)
from repro.common import ConfigError, make_rng
from repro.env.qos import use_case_for


class TestLinearRegression:
    def test_recovers_exact_linear_function(self):
        rng = make_rng(0)
        features = rng.normal(size=(200, 3))
        targets = features @ np.array([2.0, -1.0, 0.5]) + 3.0
        model = LinearRegression().fit(features, targets)
        predictions = model.predict(features)
        assert np.allclose(predictions, targets, atol=1e-8)

    def test_intercept_learned(self):
        features = np.zeros((50, 2))
        targets = np.full(50, 7.0)
        model = LinearRegression().fit(features, targets)
        assert model.predict(np.zeros((1, 2)))[0] == pytest.approx(7.0)

    def test_unfitted_predict_rejected(self):
        with pytest.raises(ConfigError):
            LinearRegression().predict(np.zeros((1, 2)))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            LinearRegression().fit(np.zeros((3, 2)), np.zeros(4))


class TestLinearSVR:
    def test_fits_noisy_linear_function(self):
        rng = make_rng(1)
        features = rng.normal(size=(300, 4))
        true_w = np.array([1.0, -2.0, 0.5, 0.0])
        targets = features @ true_w + 1.0 + rng.normal(0, 0.05, 300)
        model = LinearSVR(epochs=40, seed=1).fit(features, targets)
        predictions = model.predict(features)
        error = np.mean(np.abs(predictions - targets))
        assert error < 0.25

    def test_epsilon_insensitivity(self):
        # Targets within the epsilon tube produce no pull: a constant
        # fit inside the tube stays near that constant.
        features = np.zeros((100, 1))
        targets = np.zeros(100)
        model = LinearSVR(epsilon=0.5, epochs=10, seed=0)
        model.fit(features, targets)
        assert abs(model.predict(np.zeros((1, 1)))[0]) < 0.5

    def test_bad_params_rejected(self):
        with pytest.raises(ConfigError):
            LinearSVR(epsilon=-1.0)


class TestRegressionScheduler:
    @pytest.fixture()
    def cases(self, zoo):
        return [use_case_for(zoo[name])
                for name in ("mobilenet_v3", "resnet_50")]

    def test_train_then_select(self, env, cases):
        scheduler = linear_regression_scheduler()
        scheduler.train(env, cases, rng=make_rng(0), samples_per_case=15)
        target = scheduler.select(env, cases[0], env.observe())
        assert target in env.targets()

    def test_untrained_select_rejected(self, env, cases):
        with pytest.raises(ConfigError):
            linear_regression_scheduler().select(env, cases[0],
                                                 env.observe())

    def test_predictions_positive(self, env, cases):
        scheduler = svr_scheduler()
        scheduler.train(env, cases, rng=make_rng(0), samples_per_case=15)
        energy, latency = scheduler.predict_energy_latency(
            cases[0], env.observe(), list(env.targets())
        )
        assert (energy > 0).all()
        assert (latency > 0).all()

    def test_prefers_qos_feasible_predictions(self, env, cases):
        scheduler = linear_regression_scheduler()
        scheduler.train(env, cases, rng=make_rng(0), samples_per_case=20)
        obs = env.observe()
        target = scheduler.select(env, cases[0], obs)
        _, latency = scheduler.predict_energy_latency(
            cases[0], obs, [target]
        )
        feasible_any = any(
            scheduler.predict_energy_latency(cases[0], obs, [t])[1][0]
            <= cases[0].qos_ms
            for t in env.targets()
        )
        if feasible_any:
            assert latency[0] <= cases[0].qos_ms

    def test_respects_accuracy_filter(self, env, zoo):
        case = use_case_for(zoo["mobilenet_v3"], accuracy_target=65.0)
        scheduler = linear_regression_scheduler()
        scheduler.train(env, [case], rng=make_rng(0), samples_per_case=20)
        target = scheduler.select(env, case, env.observe())
        assert env.accuracy.lookup("mobilenet_v3",
                                   target.precision) >= 65.0

    def test_names(self):
        assert linear_regression_scheduler().name == "lr"
        assert svr_scheduler().name == "svr"
