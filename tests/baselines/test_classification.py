"""Tests for the classification baselines (SVM / KNN)."""

import numpy as np
import pytest

from repro.baselines.classification import (
    KNNClassifier,
    LinearSVM,
    knn_scheduler,
    svm_scheduler,
)
from repro.common import ConfigError, make_rng
from repro.env.qos import use_case_for


class TestKNNClassifier:
    def test_separable_blobs(self):
        rng = make_rng(0)
        a = rng.normal(0.0, 0.3, size=(30, 2))
        b = rng.normal(5.0, 0.3, size=(30, 2))
        knn = KNNClassifier(k=3).fit(np.vstack([a, b]),
                                     ["a"] * 30 + ["b"] * 30)
        assert knn.predict_one(np.array([0.1, -0.1])) == "a"
        assert knn.predict_one(np.array([5.1, 4.9])) == "b"

    def test_majority_vote(self):
        points = np.array([[0.0], [0.1], [0.2], [10.0]])
        knn = KNNClassifier(k=3).fit(points, ["a", "a", "b", "b"])
        assert knn.predict_one(np.array([0.05])) == "a"

    def test_k_larger_than_dataset(self):
        knn = KNNClassifier(k=50).fit(np.zeros((3, 1)), ["a", "a", "b"])
        assert knn.predict_one(np.zeros(1)) == "a"

    def test_bad_k_rejected(self):
        with pytest.raises(ConfigError):
            KNNClassifier(k=0)

    def test_empty_fit_rejected(self):
        with pytest.raises(ConfigError):
            KNNClassifier().fit(np.zeros((0, 2)), [])


class TestLinearSVM:
    def test_separable_blobs(self):
        rng = make_rng(1)
        a = rng.normal(-2.0, 0.3, size=(40, 2))
        b = rng.normal(2.0, 0.3, size=(40, 2))
        svm = LinearSVM(epochs=30, seed=1).fit(
            np.vstack([a, b]), ["a"] * 40 + ["b"] * 40
        )
        predictions = svm.predict(np.array([[-2.0, -2.0], [2.0, 2.0]]))
        assert predictions == ["a", "b"]

    def test_three_classes(self):
        rng = make_rng(2)
        blobs = [rng.normal(center, 0.2, size=(30, 1))
                 for center in (-3.0, 0.0, 3.0)]
        labels = ["lo"] * 30 + ["mid"] * 30 + ["hi"] * 30
        svm = LinearSVM(epochs=40, seed=2).fit(np.vstack(blobs), labels)
        assert svm.predict_one(np.array([-3.0])) == "lo"
        assert svm.predict_one(np.array([3.1])) == "hi"

    def test_unfitted_rejected(self):
        with pytest.raises(ConfigError):
            LinearSVM().predict(np.zeros((1, 2)))


class TestClassificationScheduler:
    @pytest.fixture()
    def cases(self, zoo):
        return [use_case_for(zoo[name])
                for name in ("mobilenet_v3", "mobilebert")]

    def test_train_and_select(self, env, cases):
        scheduler = knn_scheduler(k=3)
        labels = scheduler.train(env, cases, rng=make_rng(0),
                                 samples_per_case=8)
        assert len(labels) == 16
        target = scheduler.select(env, cases[0], env.observe())
        assert target in env.targets()

    def test_svm_variant(self, env, cases):
        scheduler = svm_scheduler()
        scheduler.train(env, cases, rng=make_rng(0), samples_per_case=8)
        target = scheduler.select(env, cases[1], env.observe())
        assert target in env.targets()

    def test_untrained_rejected(self, env, cases):
        with pytest.raises(ConfigError):
            knn_scheduler().select(env, cases[0], env.observe())

    def test_learns_cloud_for_bert_in_static_env(self, env, cases):
        """In S1 the oracle labels MobileBERT as cloud; KNN on the same
        contexts must reproduce that (it is memorization here)."""
        scheduler = knn_scheduler(k=3)
        scheduler.train(env, cases, rng=make_rng(0), samples_per_case=8)
        target = scheduler.select(env, cases[1], env.observe())
        assert target.location.value == "cloud"
