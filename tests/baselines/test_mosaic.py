"""Tests for the MOSAIC baseline."""

import pytest

from repro.baselines.mosaic import MosaicScheduler
from repro.common import ConfigError, make_rng
from repro.env.qos import use_case_for
from repro.env.target import Location


@pytest.fixture()
def trained(env, zoo):
    scheduler = MosaicScheduler()
    cases = [use_case_for(zoo[n])
             for n in ("mobilenet_v3", "inception_v1", "mobilebert")]
    scheduler.train(env, cases, rng=make_rng(0))
    return scheduler, cases


class TestPlanning:
    def test_plans_cover_network(self, env, trained):
        scheduler, cases = trained
        for case in cases:
            segments = scheduler.select(env, case, env.observe())
            assert sum(n for n, _ in segments) == len(case.network.layers)

    def test_segment_count_bounded(self, env, trained):
        scheduler, cases = trained
        for case in cases:
            segments = scheduler.select(env, case, env.observe())
            assert 1 <= len(segments) <= 3

    def test_all_segments_local(self, env, trained):
        scheduler, cases = trained
        for case in cases:
            for _, target in scheduler.select(env, case, env.observe()):
                assert target.location is Location.LOCAL

    def test_exploits_heterogeneity_for_mixed_network(self, env, trained):
        """Inception v1's CONV backbone + FC head should split across
        engines (DSP backbone, CPU head) — the whole point of MOSAIC.
        MobileNet v3, by contrast, is small enough that the hand-off
        overhead makes a single-engine plan optimal."""
        scheduler, cases = trained
        inception = next(c for c in cases if "inception" in c.name)
        segments = scheduler.select(env, inception, env.observe())
        roles = {target.role for _, target in segments}
        assert len(roles) >= 2
        assert "dsp" in roles

    def test_plan_is_latency_optimal_among_single_segments(self, env,
                                                           trained):
        scheduler, cases = trained
        mobilenet = next(c for c in cases if "mobilenet" in c.name)
        plan = scheduler.select(env, mobilenet, env.observe())
        obs = env.observe()
        planned = env.execute_pipelined(mobilenet.network, plan, obs,
                                        deterministic=True)
        # Whole-network CPU INT8 run (top V/F) must not beat the plan
        # on latency by a large margin.
        from repro.env.target import ExecutionTarget
        from repro.models.quantization import Precision
        cpu = ExecutionTarget(Location.LOCAL, "cpu", Precision.INT8,
                              env.device.soc.cpu.num_vf_steps - 1)
        single = env.execute_pipelined(
            mobilenet.network, [(len(mobilenet.network.layers), cpu)],
            obs, deterministic=True,
        )
        assert planned.latency_ms <= single.latency_ms * 1.2


class TestExecution:
    def test_execute_produces_result(self, env, trained):
        scheduler, cases = trained
        result = scheduler.execute(env, cases[0])
        assert result.target_key.startswith("mosaic[")
        assert result.energy_mj > 0

    def test_untrained_rejected(self, env, zoo):
        scheduler = MosaicScheduler()
        with pytest.raises(ConfigError):
            scheduler.select(env, use_case_for(zoo["mobilenet_v3"]),
                             env.observe())

    def test_bad_max_segments(self):
        with pytest.raises(ConfigError):
            MosaicScheduler(max_segments=0)
