"""Tests for the NeuroSurgeon baseline."""

import pytest

from repro.baselines.neurosurgeon import (
    LayerLatencyModel,
    NeurosurgeonScheduler,
)
from repro.common import ConfigError, make_rng
from repro.env.qos import use_case_for
from repro.models.quantization import Precision


class TestLayerLatencyModel:
    def test_fits_linear_mac_relationship(self, mi8pro_device, zoo):
        cpu = mi8pro_device.soc.cpu
        layers = zoo["inception_v1"].layers
        model = LayerLatencyModel().fit(cpu, layers, Precision.FP32)
        for layer in layers[:10]:
            predicted = model.predict_layer(layer)
            actual = cpu.layer_latency_ms(layer, Precision.FP32)
            assert predicted == pytest.approx(actual, rel=0.35, abs=0.15)

    def test_predictions_positive(self, mi8pro_device, zoo):
        cpu = mi8pro_device.soc.cpu
        layers = zoo["mobilenet_v3"].layers
        model = LayerLatencyModel().fit(cpu, layers, Precision.FP32,
                                        rng=make_rng(0))
        assert (model.predict_layers(layers) > 0).all()

    def test_unfitted_rejected(self, zoo):
        with pytest.raises(ConfigError):
            LayerLatencyModel().predict_layer(zoo["mobilenet_v3"].layers[0])


class TestNeurosurgeonScheduler:
    @pytest.fixture()
    def trained(self, env, zoo):
        scheduler = NeurosurgeonScheduler()
        cases = [use_case_for(zoo[n])
                 for n in ("mobilenet_v3", "inception_v1", "resnet_50",
                           "mobilebert")]
        scheduler.train(env, cases, rng=make_rng(0))
        return scheduler, cases

    def test_plan_is_valid_split_point(self, env, trained):
        scheduler, cases = trained
        for case in cases:
            point = scheduler.plan(env, case, env.observe())
            assert 0 <= point <= len(case.network.layers)

    def test_offloads_heavy_network(self, env, trained):
        """ResNet-50 on a phone: NeuroSurgeon should ship (almost)
        everything to the cloud at strong signal."""
        scheduler, cases = trained
        resnet = next(c for c in cases if "resnet" in c.name)
        point = scheduler.plan(env, resnet, env.observe())
        assert point < len(resnet.network.layers) // 4

    def test_execute_produces_result(self, env, trained):
        scheduler, cases = trained
        result = scheduler.execute(env, cases[0])
        assert result.latency_ms > 0
        assert result.energy_mj > 0

    def test_weak_signal_moves_split_toward_local(self, mi8pro_device,
                                                  zoo, trained):
        from repro.env.environment import EdgeCloudEnvironment
        scheduler, cases = trained
        resnet = next(c for c in cases if "resnet" in c.name)
        strong_env = EdgeCloudEnvironment(mi8pro_device, scenario="S1",
                                          seed=0)
        weak_env = EdgeCloudEnvironment(mi8pro_device, scenario="S4",
                                        seed=0)
        strong_point = scheduler.plan(strong_env, resnet,
                                      strong_env.observe())
        weak_point = scheduler.plan(weak_env, resnet, weak_env.observe())
        assert weak_point >= strong_point

    def test_untrained_rejected(self, env, zoo):
        with pytest.raises(ConfigError):
            NeurosurgeonScheduler().plan(
                env, use_case_for(zoo["mobilenet_v3"]), env.observe()
            )

    def test_requires_cloud(self, mi8pro_device, zoo):
        from repro.env.environment import EdgeCloudEnvironment
        env = EdgeCloudEnvironment(mi8pro_device, cloud=False)
        with pytest.raises(ConfigError):
            NeurosurgeonScheduler().train(
                env, [use_case_for(zoo["mobilenet_v3"])]
            )
