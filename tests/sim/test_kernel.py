"""Tests for the event kernel: ordering, cancellation, rewind, parity.

The load-bearing properties:

- dispatch order is exactly ``(time_ms, seq)`` — randomized schedules
  (seeded through :func:`~repro.common.make_rng`) always fire sorted,
  and same-instant events fire in scheduling order;
- cancellation is lazy but airtight — a cancelled event never fires,
  whatever its heap position;
- ``advance_by`` performs the *same single* float addition the
  pre-kernel sweeps performed (the bit-parity contract);
- rewind drops the abandoned timeline and re-arms via hooks.
"""

import pytest

from repro.common import ConfigError, Stopwatch, make_rng
from repro.serving.arrivals import (
    MarkovModulatedArrivals,
    PoissonArrivals,
    merge_arrivals,
)
from repro.sim import Event, EventKernel, EventKind


def _kernel():
    return EventKernel(Stopwatch())


class TestScheduling:
    def test_schedule_returns_live_handle(self):
        kernel = _kernel()
        handle = kernel.schedule(5.0, EventKind.TIMER, payload="x")
        assert handle.live
        assert handle.event.time_ms == 5.0
        assert handle.event.payload == "x"
        assert kernel.pending == 1

    def test_schedule_in_offsets_from_now(self):
        kernel = _kernel()
        kernel.advance_by(100.0)
        handle = kernel.schedule_in(25.0, EventKind.RETRY)
        assert handle.event.time_ms == 125.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigError):
            _kernel().schedule_in(-1.0, EventKind.TIMER)

    def test_bad_event_time_rejected(self):
        kernel = _kernel()
        with pytest.raises(ConfigError):
            kernel.schedule(float("nan"), EventKind.TIMER)
        with pytest.raises(ConfigError):
            kernel.schedule(-4.0, EventKind.TIMER)

    def test_bad_event_kind_rejected(self):
        with pytest.raises(ConfigError):
            Event(time_ms=1.0, kind="arrival", seq=0)

    def test_past_times_are_legal_and_fire_next_dispatch(self):
        kernel = _kernel()
        kernel.advance_by(50.0)
        kernel.schedule(10.0, EventKind.TIMER)
        fired = kernel.fire_due()
        assert [event.time_ms for event in fired] == [10.0]


class TestOrdering:
    def test_random_schedules_fire_sorted(self):
        """Property: any seeded random schedule dispatches in
        nondecreasing time order with ``seq`` breaking ties."""
        rng = make_rng(99)
        for _ in range(20):
            kernel = _kernel()
            times = [float(t) for t in rng.integers(0, 50, size=40)]
            for time_ms in times:
                kernel.schedule(time_ms, EventKind.TIMER)
            fired = kernel.advance_by(100.0)
            keys = [(event.time_ms, event.seq) for event in fired]
            assert keys == sorted(keys)
            assert len(fired) == len(times)

    def test_same_instant_fires_in_schedule_order(self):
        kernel = _kernel()
        handles = [kernel.schedule(7.0, EventKind.TIMER, payload=index)
                   for index in range(10)]
        fired = kernel.advance_by(7.0)
        assert [event.payload for event in fired] == list(range(10))
        assert all(handle.fired for handle in handles)

    def test_incremental_advances_never_fire_early_or_late(self):
        """Property: across random interleavings of advance_by /
        advance_to, every event fires in the first dispatch where its
        time is due, and none is lost."""
        rng = make_rng(123)
        for _ in range(10):
            kernel = _kernel()
            times = sorted(float(t) for t in rng.integers(0, 200, size=60))
            for time_ms in times:
                kernel.schedule(time_ms, EventKind.TIMER)
            seen = []
            while kernel.pending:
                if rng.random() < 0.5:
                    fired = kernel.advance_by(float(rng.integers(1, 40)))
                else:
                    fired = kernel.advance_to(
                        kernel.now_ms + float(rng.integers(0, 40)))
                for event in fired:
                    assert event.time_ms <= kernel.now_ms
                seen.extend(event.time_ms for event in fired)
                # Invariant: nothing due is left pending.
                next_ms = kernel.next_time_ms()
                assert next_ms is None or next_ms > kernel.now_ms
            assert seen == times


class TestCancellation:
    def test_cancelled_event_never_fires(self):
        kernel = _kernel()
        keep = kernel.schedule(5.0, EventKind.TIMER, payload="keep")
        drop = kernel.schedule(3.0, EventKind.TIMER, payload="drop")
        assert drop.cancel()
        fired = kernel.advance_by(10.0)
        assert [event.payload for event in fired] == ["keep"]
        assert keep.fired and not drop.fired

    def test_random_cancellation_subset(self):
        rng = make_rng(7)
        kernel = _kernel()
        handles = [kernel.schedule(float(t), EventKind.TIMER)
                   for t in rng.integers(0, 100, size=50)]
        dropped = [handle for handle in handles if rng.random() < 0.4]
        for handle in dropped:
            handle.cancel()
        fired = kernel.advance_by(200.0)
        live = [handle for handle in handles if handle not in dropped]
        assert len(fired) == len(live)
        assert all(handle.fired for handle in live)
        assert not any(handle.fired for handle in dropped)

    def test_cancel_after_fire_is_noop(self):
        kernel = _kernel()
        handle = kernel.schedule(1.0, EventKind.TIMER)
        kernel.advance_by(2.0)
        assert handle.fired
        assert not handle.cancel()
        assert not handle.cancelled

    def test_next_time_skips_cancelled_head(self):
        kernel = _kernel()
        head = kernel.schedule(1.0, EventKind.TIMER)
        kernel.schedule(9.0, EventKind.TIMER)
        head.cancel()
        assert kernel.next_time_ms() == 9.0
        assert kernel.pending == 1


class TestDispatchModel:
    def test_advance_by_is_one_stopwatch_advance(self):
        """Bit-parity: the clock lands on exactly ``now + delta`` even
        when events fire along the way."""
        kernel = _kernel()
        kernel.advance_by(0.1)
        kernel.schedule(0.25, EventKind.TIMER)
        before = kernel.now_ms
        kernel.advance_by(0.2)
        assert kernel.now_ms == before + 0.2  # bitwise, not approx

    def test_callback_sees_event_time_not_clock(self):
        kernel = _kernel()
        seen = []
        kernel.schedule(3.0, EventKind.TIMER,
                        callback=lambda event: seen.append(
                            (event.time_ms, kernel.now_ms)))
        kernel.advance_by(10.0)
        assert seen == [(3.0, 10.0)]

    def test_chained_same_call_dispatch(self):
        """An event scheduled by a firing callback fires in the same
        dispatch batch when already due (outage chains rely on it)."""
        kernel = _kernel()
        order = []

        def first(event):
            order.append("first")
            kernel.schedule(event.time_ms, EventKind.TIMER,
                            callback=lambda e: order.append("chained"))

        kernel.schedule(5.0, EventKind.TIMER, callback=first)
        kernel.advance_by(5.0)
        assert order == ["first", "chained"]

    def test_advance_to_past_target_still_fires_due(self):
        kernel = _kernel()
        kernel.advance_by(10.0)
        kernel.schedule(4.0, EventKind.TIMER)
        fired = kernel.advance_to(2.0)
        assert kernel.now_ms == 10.0
        assert [event.time_ms for event in fired] == [4.0]

    def test_empty_heap_fast_path(self):
        kernel = _kernel()
        assert kernel.fire_due() == []
        assert kernel.advance_by(5.0) == []
        assert kernel.next_time_ms() is None


class TestRewind:
    def test_rewind_resets_clock_and_drops_pending(self):
        kernel = _kernel()
        kernel.schedule(50.0, EventKind.TIMER)
        kernel.advance_by(10.0)
        kernel.rewind()
        assert kernel.now_ms == 0.0
        assert kernel.pending == 0
        assert kernel.advance_by(100.0) == []

    def test_rewind_hooks_rearm(self):
        kernel = _kernel()
        episodes = []

        def rearm():
            kernel.schedule(5.0, EventKind.TIMER,
                            callback=lambda e: episodes.append(
                                kernel.now_ms))

        kernel.on_rewind(rearm)
        rearm()
        kernel.advance_by(6.0)
        kernel.rewind()
        kernel.advance_by(6.0)
        assert episodes == [6.0, 6.0]

    def test_off_rewind_unsubscribes(self):
        kernel = _kernel()
        calls = []
        hook = kernel.on_rewind(lambda: calls.append(1))
        kernel.rewind()
        kernel.off_rewind(hook)
        kernel.off_rewind(hook)  # absent: no-op
        kernel.rewind()
        assert calls == [1]


class TestArrivalReplayIdentity:
    def test_merged_streams_replay_identically_through_the_heap(self):
        """Scheduling a merged multi-process stream (Poisson + MMPP) on
        the kernel and draining it reproduces ``merge_arrivals``'s
        ``(at_ms, name)`` order exactly — the event path is a faithful
        replay, not a re-sort."""
        poisson = PoissonArrivals("svc_a", arrivals_per_s=5.0) \
            .generate(20_000.0, make_rng(31))
        mmpp = MarkovModulatedArrivals(
            "svc_b", calm_per_s=2.0, burst_per_s=25.0,
        ).generate(20_000.0, make_rng(32))
        merged = merge_arrivals(poisson, mmpp)
        assert len(merged) > 100

        kernel = _kernel()
        replayed = []
        for arrival in merged:
            kernel.schedule(arrival.at_ms, EventKind.ARRIVAL,
                            payload=arrival,
                            callback=lambda e: replayed.append(e.payload))
        while kernel.pending:
            kernel.advance_to(kernel.next_time_ms())
        assert replayed == merged

    def test_mmpp_replay_is_seed_reproducible_through_events(self):
        """Same seed, same stream, same event replay — end to end."""
        def replay(seed):
            arrivals = MarkovModulatedArrivals("svc") \
                .generate(30_000.0, make_rng(seed))
            kernel = _kernel()
            out = []
            for arrival in arrivals:
                kernel.schedule(arrival.at_ms, EventKind.ARRIVAL,
                                payload=arrival,
                                callback=lambda e: out.append(e.payload))
            kernel.advance_by(30_000.0)
            return out

        assert replay(77) == replay(77)
        assert replay(77) != replay(78)
