"""Bit-identity pins for the event-kernel migration.

Each scenario in :mod:`tests.sim.scenarios` runs a seeded end-to-end
workload and snapshots every externally visible observable — trace
records, Q-table fingerprint, shed/fault ledgers, breaker states, the
final clock reading.  The committed fixtures were generated on the
pre-kernel sweep-based timeline; these tests pin that moving arrivals,
retry backoffs, and outage windows onto the ``repro.sim`` event heap
changes *nothing* an observer could measure.

JSON float serialization round-trips float64 exactly, so the equality
below is bit-identity, not approximate comparison.
"""

import json

import pytest

from tests.sim.scenarios import FIXTURE_DIR, SCENARIOS


def _normalize(value):
    """Round-trip through JSON so tuples/keys normalize like fixtures."""
    return json.loads(json.dumps(value, sort_keys=True))


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_matches_pinned_fixture(name):
    path = FIXTURE_DIR / f"{name}.json"
    assert path.exists(), (
        f"missing fixture {path}; regenerate with "
        "`PYTHONPATH=src:. python -m tests.sim.scenarios`"
    )
    pinned = json.loads(path.read_text())
    fresh = _normalize(SCENARIOS[name]())
    assert fresh == pinned, (
        f"scenario {name!r} diverged from its pinned observables — "
        "the timeline refactor is no longer bit-identical"
    )


def test_fixture_dir_has_no_strays():
    """Every committed fixture corresponds to a live scenario."""
    names = {p.stem for p in FIXTURE_DIR.glob("*.json")}
    assert names == set(SCENARIOS)
