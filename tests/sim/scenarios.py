"""Seeded end-to-end scenarios whose observables are pinned as fixtures.

The event-kernel migration (repro.sim) must be *invisible*: every
single-device observable — trace records, Q-tables, energy/fault/shed
ledgers, breaker states, the final virtual-clock reading — has to come
out bit-identical before and after the timeline producers move onto the
event heap.  These scenario runners capture exactly those observables as
JSON-serializable dicts; ``test_parity_pins.py`` asserts fresh runs
equal the committed fixtures byte-for-byte.

Regenerate fixtures (only when an *intentional* behaviour change lands):

    PYTHONPATH=src:. python -m tests.sim.scenarios

Floats round-trip through JSON exactly (``json.dumps(float)`` emits
``repr``, which reparses to the identical float64), so fixture equality
is bit-identity, not approximate equality.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import asdict

from repro.common import make_rng
from repro.core.service import AutoScaleService
from repro.env.environment import EdgeCloudEnvironment
from repro.env.qos import use_case_for
from repro.faults.plan import FaultPlan, OutageWindow
from repro.faults.resilience import ResiliencePolicy
from repro.hardware.devices import build_device
from repro.models.zoo import load_zoo
from repro.serving.arrivals import (
    MarkovModulatedArrivals,
    PoissonArrivals,
    TraceArrivals,
    merge_arrivals,
)
from repro.serving.pipeline import ServingConfig, ServingPipeline

FIXTURE_DIR = pathlib.Path(__file__).parent / "fixtures"


def _qtable_digest(engine):
    """A bit-exact fingerprint of the learned table."""
    values = engine.qtable.values
    return {
        "sha256": hashlib.sha256(values.tobytes()).hexdigest(),
        "shape": list(values.shape),
        "sum": float(values.sum()),
    }


def _outcome_row(served):
    outcome = served.outcome
    return {
        "at_ms": served.arrival.at_ms,
        "name": served.arrival.name,
        "queue_delay_ms": served.queue_delay_ms,
        "tier": served.tier,
        "shed": bool(served.shed),
        "failed": bool(served.failed),
        "latency_ms": outcome.latency_ms,
        "energy_mj": outcome.energy_mj,
        "target_key": outcome.target_key,
    }


def _snapshot(service, pipeline=None, outcomes=None):
    env = service.environment
    observables = {
        "clock_now_ms": env.clock.now_ms,
        "trace": [asdict(record) for record in service.trace.records],
        "qtable": _qtable_digest(service.engine),
        "breakers": service.breaker_states(),
        "fault_stats": env.fault_stats.as_dict(),
    }
    if pipeline is not None:
        observables["pipeline_status"] = pipeline.status()
    if outcomes is not None:
        observables["outcomes"] = [_outcome_row(o) for o in outcomes]
    return observables


def _service(seed, think_time_ms=0.0, faults=None, resilience=None):
    env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                               seed=seed, think_time_ms=think_time_ms,
                               faults=faults)
    return AutoScaleService(env, seed=seed, resilience=resilience)


def pipelined_overload():
    """Bursty MMPP traffic through the full shed+brownout pipeline."""
    zoo = load_zoo()
    case = use_case_for(zoo["resnet_50"])
    arrivals = MarkovModulatedArrivals(
        case.name, calm_per_s=2.0, burst_per_s=30.0,
        calm_dwell_ms=8_000.0, burst_dwell_ms=3_000.0,
    ).generate(45_000.0, make_rng(2024))
    service = _service(101)
    service.register(case)
    pipeline = ServingPipeline(service, ServingConfig())
    outcomes = pipeline.serve(arrivals)
    return _snapshot(service, pipeline, outcomes)


def resilient_chaos():
    """Retries, breakers, and a periodic cloud outage under faults."""
    zoo = load_zoo()
    case = use_case_for(zoo["mobilenet_v3"])
    plan = FaultPlan(
        loss_scale=1.0,
        abort_prob=0.05,
        straggler_prob=0.1,
        outages=(OutageWindow("cloud", start_ms=5_000.0,
                              duration_ms=5_000.0, period_ms=20_000.0),),
    )
    service = _service(202, faults=plan, resilience=ResiliencePolicy())
    service.register(case)
    arrivals = PoissonArrivals(case.name, arrivals_per_s=4.0) \
        .generate(40_000.0, make_rng(7))
    pipeline = ServingPipeline(service, ServingConfig())
    outcomes = pipeline.serve(arrivals)
    return _snapshot(service, pipeline, outcomes)


def direct_closed_loop():
    """The disabled pipeline: the paper's closed loop, bit-for-bit."""
    zoo = load_zoo()
    case = use_case_for(zoo["mobilebert"])
    service = _service(303, think_time_ms=150.0)
    service.register(case)
    arrivals = PoissonArrivals(case.name, arrivals_per_s=3.0) \
        .generate(30_000.0, make_rng(17))
    pipeline = ServingPipeline(service, ServingConfig.disabled())
    outcomes = pipeline.serve(arrivals)
    return _snapshot(service, pipeline, outcomes)


def merged_streams():
    """Three services, three arrival processes, one merged timeline."""
    zoo = load_zoo()
    cases = [use_case_for(zoo["mobilenet_v3"]),
             use_case_for(zoo["resnet_50"]),
             use_case_for(zoo["mobilebert"])]
    service = _service(404)
    for case in cases:
        service.register(case)
    streams = [
        PoissonArrivals(cases[0].name, arrivals_per_s=3.0)
        .generate(25_000.0, make_rng(41)),
        MarkovModulatedArrivals(
            cases[1].name, calm_per_s=1.0, burst_per_s=20.0,
            calm_dwell_ms=6_000.0, burst_dwell_ms=2_000.0,
        ).generate(25_000.0, make_rng(42)),
        TraceArrivals(tuple(
            (250.0 * index, cases[2].name) for index in range(60)
        )).generate(25_000.0),
    ]
    arrivals = merge_arrivals(*streams)
    pipeline = ServingPipeline(service, ServingConfig())
    outcomes = pipeline.serve(arrivals)
    return _snapshot(service, pipeline, outcomes)


def midrun_fault_attach():
    """A fault plan attached while the clock is already past zero.

    Pins the phase arithmetic a mid-time outage attach must honour: the
    periodic window's schedule is anchored at its ``start_ms``, not at
    the attach instant.
    """
    zoo = load_zoo()
    case = use_case_for(zoo["mobilenet_v3"])
    service = _service(505, resilience=ResiliencePolicy())
    service.register(case)
    arrivals = PoissonArrivals(case.name, arrivals_per_s=4.0) \
        .generate(12_000.0, make_rng(51))
    first = ServingPipeline(service, ServingConfig()).serve(arrivals)
    # Attach faults mid-run: a periodic outage whose anchor lies in the
    # past and whose next occurrence lies ahead of the current clock.
    service.environment.faults = FaultPlan(
        loss_scale=0.5,
        outages=(OutageWindow("cloud", start_ms=2_000.0,
                              duration_ms=4_000.0, period_ms=15_000.0),),
    )
    resume_ms = service.environment.clock.now_ms
    late = [a for a in PoissonArrivals(case.name, arrivals_per_s=4.0)
            .generate(20_000.0, make_rng(52)) if a.at_ms > resume_ms]
    pipeline = ServingPipeline(service, ServingConfig())
    second = pipeline.serve(late)
    return _snapshot(service, pipeline, first + second)


def episode_rewind():
    """Two episodes split by ``rewind_clock``; faults stay armed.

    Pins that rewinding the virtual clock re-arms time-anchored state
    (the outage schedule must cover its windows again in episode two).
    """
    zoo = load_zoo()
    case = use_case_for(zoo["mobilenet_v3"])
    plan = FaultPlan(
        outages=(OutageWindow("cloud", start_ms=1_000.0,
                              duration_ms=3_000.0),),
    )
    service = _service(606, faults=plan, resilience=ResiliencePolicy())
    service.register(case)
    arrivals = PoissonArrivals(case.name, arrivals_per_s=5.0) \
        .generate(8_000.0, make_rng(61))
    first = ServingPipeline(service, ServingConfig()).serve(arrivals)
    service.environment.rewind_clock()
    pipeline = ServingPipeline(service, ServingConfig())
    second = pipeline.serve(arrivals)
    return _snapshot(service, pipeline, first + second)


def outage_probe():
    """Remote executions at boundary-straddling probe times.

    The engine's learned policy rarely picks remote targets, so the
    pipelined scenarios barely touch the outage machinery.  This probe
    drives the *cloud* target directly at a grid of virtual times that
    straddle every interesting boundary of a periodic outage window —
    window start (inclusive), window end (exclusive), the second and
    third periodic occurrences, plus a mid-run attach and a rewind —
    pinning exactly the coverage semantics the event-driven schedule
    must reproduce.
    """
    zoo = load_zoo()
    case = use_case_for(zoo["mobilenet_v3"])
    plan = FaultPlan(
        outages=(OutageWindow("cloud", start_ms=2_000.0,
                              duration_ms=1_000.0, period_ms=10_000.0),),
    )
    env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                               seed=707, faults=plan)
    cloud = next(t for t in env.targets() if t.key == "cloud/gpu/fp32")

    def probe(times):
        rows = []
        for at_ms in times:
            env.advance_clock_to(at_ms)
            result = env.execute(case.network, cloud, env.observe())
            rows.append({
                "probe_ms": at_ms,
                "executed_at_ms": env.clock.now_ms - result.latency_ms,
                "failed": bool(result.failed),
                "latency_ms": result.latency_ms,
                "energy_mj": result.energy_mj,
                "target_key": result.target_key,
            })
        return rows

    episode_one = probe([
        0.0, 1_999.0, 2_000.0, 2_500.0, 2_999.9, 3_000.0, 3_500.0,
        11_999.0, 12_000.0, 12_999.9, 13_000.0, 22_000.0, 22_999.9,
    ])
    # Attach a *different* plan mid-run: its anchor is in the past, so
    # the next occurrence must come from phase arithmetic, not from the
    # attach time.
    env.faults = FaultPlan(
        outages=(OutageWindow("cloud", start_ms=1_000.0,
                              duration_ms=2_000.0, period_ms=8_000.0),),
    )
    attach = probe([25_000.0, 25_999.9, 27_000.0, 33_000.0, 34_999.9])
    env.rewind_clock()
    rewound = probe([0.0, 1_000.0, 2_999.9, 3_000.0, 9_000.0, 9_500.0])
    return {
        "episode_one": episode_one,
        "after_attach": attach,
        "after_rewind": rewound,
        "fault_stats": env.fault_stats.as_dict(),
        "clock_now_ms": env.clock.now_ms,
    }


SCENARIOS = {
    "pipelined_overload": pipelined_overload,
    "outage_probe": outage_probe,
    "resilient_chaos": resilient_chaos,
    "direct_closed_loop": direct_closed_loop,
    "merged_streams": merged_streams,
    "midrun_fault_attach": midrun_fault_attach,
    "episode_rewind": episode_rewind,
}


def write_fixtures():
    FIXTURE_DIR.mkdir(parents=True, exist_ok=True)
    for name, runner in SCENARIOS.items():
        path = FIXTURE_DIR / f"{name}.json"
        path.write_text(json.dumps(runner(), indent=2, sort_keys=True)
                        + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    write_fixtures()
