"""End-to-end integration tests across the full stack.

These exercise the public API exactly the way the README's quickstart and
the paper's protocol do, and pin the direction of the headline claims.
"""

import numpy as np
import pytest

from repro import (
    AutoScale,
    EdgeCloudEnvironment,
    build_device,
    build_network,
    load_zoo,
    use_case_for,
)
from repro.baselines import CloudOffload, EdgeCpuFp32, OptOracle
from repro.core import QLearningConfig
from repro.core.transfer import transfer_q_table
from repro.evalharness import evaluate_scheduler


class TestQuickstartFlow:
    """The README quickstart, verbatim semantics."""

    def test_train_freeze_predict(self):
        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   seed=0)
        engine = AutoScale(env, seed=0)
        use_case = use_case_for(build_network("mobilenet_v3"))
        engine.run(use_case, 100)
        engine.freeze()
        target = engine.predict(use_case.network, env.observe())
        assert target in engine.action_space


class TestHeadlineClaims:
    """Directional versions of the paper's abstract numbers."""

    @pytest.fixture(scope="class")
    def trained(self):
        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   seed=5)
        engine = AutoScale(env, seed=5)
        zoo = load_zoo()
        cases = [use_case_for(zoo[n]) for n in
                 ("mobilenet_v3", "inception_v1", "resnet_50",
                  "mobilebert")]
        for case in cases:
            engine.run(case, 120)
        engine.freeze()
        return env, engine, cases

    def _frozen_energy(self, env, engine, case, runs=15):
        energies = []
        for _ in range(runs):
            energies.append(engine.step(case).result.energy_mj)
        return float(np.mean(energies))

    def test_large_improvement_over_edge_cpu(self, trained):
        """Paper abstract: 9.8x over the mobile-CPU baseline (averaged
        over the zoo; heavy networks dominate the mean)."""
        env, engine, cases = trained
        ratios = []
        for case in cases:
            autoscale = self._frozen_energy(env, engine, case)
            baseline = evaluate_scheduler(env, EdgeCpuFp32(), case,
                                          eval_runs=10).mean_energy_mj
            ratios.append(baseline / autoscale)
        assert np.mean(ratios) > 4.0

    def test_improvement_over_cloud_offloading(self, trained):
        """Paper abstract: 1.6x over always-offloading to the cloud."""
        env, engine, cases = trained
        ratios = []
        for case in cases:
            autoscale = self._frozen_energy(env, engine, case)
            cloud = evaluate_scheduler(env, CloudOffload(), case,
                                       eval_runs=10).mean_energy_mj
            ratios.append(cloud / autoscale)
        assert np.mean(ratios) > 1.2

    def test_close_to_oracle(self, trained):
        env, engine, cases = trained
        oracle = OptOracle()
        for case in cases:
            obs = env.observe()
            chosen = engine.predict(case.network, obs)
            chosen_nominal = env.estimate(case.network, chosen, obs)
            _, optimal_nominal = oracle.evaluate(env, case, obs)
            assert chosen_nominal.energy_mj \
                <= optimal_nominal.energy_mj * 1.3


class TestStochasticAdaptation:
    def test_adapts_to_weak_signal(self, zoo):
        """Train in S1 (cloud optimal for ResNet-50), then move to S4:
        the engine must learn to stop using the cloud."""
        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   seed=2)
        engine = AutoScale(env, seed=2)
        case = use_case_for(zoo["resnet_50"])
        engine.run(case, 120)
        engine.freeze()
        s1_target = engine.predict(case.network, env.observe())
        assert s1_target.location.value == "cloud"

        from repro.env import build_scenario
        env.scenario = build_scenario("S4")
        env.clock.reset()
        engine.unfreeze()
        engine.run(case, 120)
        engine.freeze()
        s4_target = engine.predict(case.network, env.observe())
        assert s4_target.location.value != "cloud"

    def test_weak_signal_is_a_different_state(self, zoo):
        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   seed=2)
        engine = AutoScale(env, seed=2)
        net = zoo["resnet_50"]
        from repro.env import Observation
        strong = engine.observe_state(net, Observation())
        weak = engine.observe_state(net,
                                    Observation(rssi_wlan_dbm=-86.0))
        assert strong != weak


class TestTransferPipeline:
    def test_transfer_speeds_convergence(self, zoo):
        """Fig. 14 end-to-end: Mi8Pro-trained table accelerates the
        Galaxy S10e."""
        case = use_case_for(zoo["inception_v1"])

        source_env = EdgeCloudEnvironment(build_device("mi8pro"),
                                          scenario="S1", seed=3)
        source = AutoScale(source_env, seed=3)
        source.run(case, 120)

        def converge_steps(engine):
            engine.convergence.reset()
            for step in range(150):
                engine.step(case)
                if engine.converged:
                    return engine.convergence.converged_at
            return 150

        scratch_env = EdgeCloudEnvironment(build_device("galaxy_s10e"),
                                           scenario="S1", seed=4)
        scratch = AutoScale(scratch_env, seed=4)
        scratch_steps = converge_steps(scratch)

        transfer_env = EdgeCloudEnvironment(build_device("galaxy_s10e"),
                                            scenario="S1", seed=4)
        transferred = AutoScale(transfer_env, seed=4)
        transfer_q_table(source.qtable, source.action_space,
                         transferred.qtable, transferred.action_space)
        transfer_steps = converge_steps(transferred)

        assert transfer_steps <= scratch_steps


class TestDeterminism:
    def test_full_pipeline_reproducible(self, zoo):
        def run():
            env = EdgeCloudEnvironment(build_device("moto_x_force"),
                                       scenario="D3", seed=99)
            engine = AutoScale(env, seed=99)
            case = use_case_for(zoo["mobilenet_v2"])
            steps = engine.run(case, 40)
            return [round(s.reward, 9) for s in steps]

        assert run() == run()


class TestQTableDtypeEndToEnd:
    def test_float16_engine_learns(self, zoo):
        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   seed=6)
        engine = AutoScale(env, seed=6,
                           config=QLearningConfig(dtype="float16"))
        case = use_case_for(zoo["mobilebert"])
        engine.run(case, 100)
        engine.freeze()
        target = engine.predict(case.network, env.observe())
        assert target.location.value == "cloud"
