"""Tests for co-runner models."""

import pytest

from repro.common import ConfigError, make_rng
from repro.interference.corunner import (
    ConstantCoRunner,
    CoRunnerLoad,
    SwitchingCoRunner,
    TraceCoRunner,
    cpu_intensive_corunner,
    memory_intensive_corunner,
    music_player,
    no_corunner,
    web_browser,
)


class TestCoRunnerLoad:
    def test_defaults_idle(self):
        assert CoRunnerLoad().is_idle

    def test_range_checked(self):
        with pytest.raises(ConfigError):
            CoRunnerLoad(cpu_util=1.2)
        with pytest.raises(ConfigError):
            CoRunnerLoad(mem_util=-0.1)


class TestStaticCoRunners:
    def test_none(self):
        load = no_corunner().sample(make_rng(0))
        assert load.is_idle

    def test_cpu_intensive_profile(self):
        load = cpu_intensive_corunner().sample(make_rng(0))
        assert load.cpu_util >= 0.75
        assert load.mem_util <= 0.25

    def test_memory_intensive_profile(self):
        load = memory_intensive_corunner().sample(make_rng(0))
        assert load.mem_util >= 0.75
        assert load.cpu_util <= 0.35

    def test_constant_ignores_time(self):
        runner = ConstantCoRunner("x", CoRunnerLoad(cpu_util=0.5))
        rng = make_rng(0)
        assert runner.sample(rng, 0.0) == runner.sample(rng, 1e6)


class TestTraceCoRunner:
    def test_phases_cycle(self):
        trace = TraceCoRunner("t", phases=((100.0, 0.8, 0.1),
                                           (100.0, 0.2, 0.1)), jitter=0.0)
        rng = make_rng(0)
        assert trace.sample(rng, 50.0).cpu_util == pytest.approx(0.8)
        assert trace.sample(rng, 150.0).cpu_util == pytest.approx(0.2)
        # Wraps around after the 200 ms period.
        assert trace.sample(rng, 250.0).cpu_util == pytest.approx(0.8)

    def test_jitter_stays_in_range(self):
        trace = TraceCoRunner("t", phases=((100.0, 0.95, 0.95),),
                              jitter=0.2)
        rng = make_rng(1)
        for _ in range(200):
            load = trace.sample(rng, 0.0)
            assert 0.0 <= load.cpu_util <= 1.0
            assert 0.0 <= load.mem_util <= 1.0

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigError):
            TraceCoRunner("t", phases=())

    def test_bad_phase_rejected(self):
        with pytest.raises(ConfigError):
            TraceCoRunner("t", phases=((0.0, 0.5, 0.5),))

    def test_browser_is_burstier_than_music(self):
        rng = make_rng(2)
        browser = web_browser()
        music = music_player()
        browser_samples = [browser.sample(rng, t * 333.0).cpu_util
                           for t in range(100)]
        music_samples = [music.sample(rng, t * 333.0).cpu_util
                         for t in range(100)]
        assert max(browser_samples) > max(music_samples)
        assert (max(browser_samples) - min(browser_samples)
                > max(music_samples) - min(music_samples))


class TestSwitchingCoRunner:
    def test_switches_over_time(self):
        runner = SwitchingCoRunner(
            "d4",
            (ConstantCoRunner("a", CoRunnerLoad(cpu_util=0.1)),
             ConstantCoRunner("b", CoRunnerLoad(cpu_util=0.9))),
            switch_every_ms=1000.0,
        )
        rng = make_rng(0)
        assert runner.sample(rng, 500.0).cpu_util == pytest.approx(0.1)
        assert runner.sample(rng, 1500.0).cpu_util == pytest.approx(0.9)
        assert runner.sample(rng, 2500.0).cpu_util == pytest.approx(0.1)

    def test_needs_two_corunners(self):
        with pytest.raises(ConfigError):
            SwitchingCoRunner("x", (no_corunner(),))
