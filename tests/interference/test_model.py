"""Tests for the contention model (Fig. 5 semantics)."""

import pytest

from repro.common import ConfigError
from repro.hardware.processor import ProcessorKind
from repro.interference.corunner import CoRunnerLoad
from repro.interference.model import InterferenceModel


@pytest.fixture()
def model():
    return InterferenceModel()


class TestCpuInterference:
    def test_no_load_no_slowdown(self, model):
        assert model.slowdown(ProcessorKind.CPU, CoRunnerLoad()) == 1.0

    def test_cpu_corunner_hits_cpu_hard(self, model):
        """Fig. 5: CPU-intensive co-runner degrades CPU inference most."""
        load = CoRunnerLoad(cpu_util=0.9, mem_util=0.1)
        cpu = model.slowdown(ProcessorKind.CPU, load)
        gpu = model.slowdown(ProcessorKind.GPU, load)
        dsp = model.slowdown(ProcessorKind.DSP, load)
        assert cpu > 2.0
        assert cpu > gpu and cpu > dsp

    def test_thermal_throttling_engages(self, model):
        light = model.slowdown(ProcessorKind.CPU,
                               CoRunnerLoad(cpu_util=0.2))
        heavy = model.slowdown(ProcessorKind.CPU,
                               CoRunnerLoad(cpu_util=0.95))
        assert heavy / light > 2.0


class TestMemoryInterference:
    def test_memory_corunner_hits_all_processors(self, model):
        """Fig. 5: memory-intensive co-runner degrades every on-device
        processor."""
        load = CoRunnerLoad(cpu_util=0.2, mem_util=0.95)
        for kind in ProcessorKind:
            assert model.slowdown(kind, load) > 1.5

    def test_mem_penalty_scales_with_usage(self, model):
        low = model.slowdown(ProcessorKind.GPU,
                             CoRunnerLoad(mem_util=0.2))
        high = model.slowdown(ProcessorKind.GPU,
                              CoRunnerLoad(mem_util=0.9))
        assert high > low


class TestTransmission:
    def test_no_load_no_slowdown(self, model):
        assert model.transmission_slowdown(CoRunnerLoad()) == 1.0

    def test_transmission_feels_cpu_contention(self, model):
        busy = model.transmission_slowdown(
            CoRunnerLoad(cpu_util=0.9, mem_util=0.5)
        )
        assert busy > 1.1


class TestValidation:
    def test_bad_cpu_share(self):
        with pytest.raises(ConfigError):
            InterferenceModel(cpu_share=1.0)

    def test_negative_mem_penalty(self):
        with pytest.raises(ConfigError):
            InterferenceModel(mem_penalty={
                ProcessorKind.CPU: -1.0,
                ProcessorKind.GPU: 0.5,
                ProcessorKind.DSP: 0.5,
            })

    def test_slowdowns_always_at_least_one(self, model):
        for cpu in (0.0, 0.5, 1.0):
            for mem in (0.0, 0.5, 1.0):
                load = CoRunnerLoad(cpu_util=cpu, mem_util=mem)
                for kind in ProcessorKind:
                    assert model.slowdown(kind, load) >= 1.0
