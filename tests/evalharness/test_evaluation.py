"""Tests for the Fig. 9-14 evaluation drivers (small configurations).

The benchmarks run these at paper scale; here we verify the machinery and
the direction of every headline claim at reduced episode sizes.
"""

import pytest

from repro.evalharness.evaluation import (
    ablation_hyperparameters,
    baseline_suite,
    fig9_main_results,
    fig11_dynamic,
    fig12_accuracy_targets,
    fig13_decisions,
    fig14_convergence,
    overhead_analysis,
)
from repro.evalharness.runner import RunConfig

# Paper scale is 100 runs per network per variance state; this keeps the
# adaptation budget at that order while trimming the pre-training and
# evaluation episodes for test speed.
_FAST = RunConfig(train_runs=40, adapt_runs=120, eval_runs=10)


class TestBaselineSuite:
    def test_full_suite_names(self):
        names = [s.name for s in baseline_suite()]
        assert names == ["edge_cpu_fp32", "edge_best", "cloud",
                         "connected_edge", "mosaic", "neurosurgeon"]

    def test_without_prior_work(self):
        names = [s.name for s in baseline_suite(include_prior_work=False)]
        assert "mosaic" not in names


@pytest.fixture(scope="module")
def fig9():
    return fig9_main_results(
        device_names=("mi8pro",),
        network_names=("mobilenet_v3", "resnet_50", "mobilebert"),
        scenarios=("S1", "S4"), config=_FAST, seed=0,
    )


class TestFig9:
    def test_all_schedulers_present(self, fig9):
        names = {s["scheduler"] for s in fig9["per_device"]["mi8pro"]}
        assert {"edge_cpu_fp32", "edge_best", "cloud", "connected_edge",
                "mosaic", "neurosurgeon", "opt", "autoscale"} <= names

    def _ppw(self, fig9, name):
        return next(s["ppw_norm"] for s in fig9["per_device"]["mi8pro"]
                    if s["scheduler"] == name)

    def test_autoscale_beats_every_baseline(self, fig9):
        """Fig. 9's headline: AutoScale > Edge(CPU), Edge(Best), Cloud,
        Connected Edge, MOSAIC, NeuroSurgeon."""
        autoscale = self._ppw(fig9, "autoscale")
        for name in ("edge_cpu_fp32", "edge_best", "cloud",
                     "connected_edge", "mosaic"):
            assert autoscale > self._ppw(fig9, name)

    def test_autoscale_close_to_opt(self, fig9):
        """Paper: within ~3.2% of Opt; we allow 15% at this scale."""
        assert self._ppw(fig9, "autoscale") \
            > 0.85 * self._ppw(fig9, "opt")

    def test_baseline_normalized_to_one(self, fig9):
        assert self._ppw(fig9, "edge_cpu_fp32") == pytest.approx(1.0)

    def test_opt_violation_lowest(self, fig9):
        violations = {s["scheduler"]: s["qos_violation_pct"]
                      for s in fig9["per_device"]["mi8pro"]}
        assert violations["opt"] <= violations["edge_cpu_fp32"]


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        return fig11_dynamic(
            network_names=("mobilenet_v3", "resnet_50"),
            scenarios=("S1", "D2", "D3"), config=_FAST, seed=0,
        )

    def test_per_scenario_breakdown(self, result):
        assert set(result["per_scenario"]) == {"S1", "D2", "D3"}

    def test_autoscale_improves_in_dynamic_envs(self, result):
        """Fig. 11: the advantage persists under dynamic variance."""
        for scenario in ("D2", "D3"):
            entries = {e["scheduler"]: e["ppw_norm"]
                       for e in result["per_scenario"][scenario]}
            assert entries["autoscale"] > entries["edge_cpu_fp32"]

    def test_overall_summary_present(self, result):
        names = {s["scheduler"] for s in result["overall"]}
        assert "autoscale" in names


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self):
        return fig12_accuracy_targets(
            network_names=("mobilenet_v3", "inception_v1"),
            targets=(None, 50.0, 70.0), config=_FAST, seed=0,
        )

    def test_lax_target_at_least_as_efficient(self, result):
        """Fig. 12: relaxing the accuracy target can only help PPW."""
        assert result["results"]["none"]["ppw_norm"] \
            >= 0.9 * result["results"]["70"]["ppw_norm"]

    def test_all_targets_reported(self, result):
        assert set(result["results"]) == {"none", "50", "70"}


class TestFig13:
    @pytest.fixture(scope="class")
    def result(self):
        return fig13_decisions(
            device_names=("mi8pro",),
            network_names=("mobilenet_v3", "resnet_50"),
            scenarios=("S1",), config=_FAST, seed=0,
        )

    def test_shares_sum_to_one(self, result):
        entry = result["per_device"]["mi8pro"]
        assert sum(entry["autoscale_shares"].values()) \
            == pytest.approx(1.0)
        assert sum(entry["opt_shares"].values()) == pytest.approx(1.0)

    def test_prediction_accuracy_high(self, result):
        """Paper: 97.9%; we require >70% at this reduced scale."""
        entry = result["per_device"]["mi8pro"]
        assert entry["prediction_accuracy_pct"] > 70.0

    def test_distribution_resembles_opt(self, result):
        entry = result["per_device"]["mi8pro"]
        for location in ("local", "cloud", "connected"):
            assert abs(entry["autoscale_shares"][location]
                       - entry["opt_shares"][location]) < 0.4


class TestFig14:
    @pytest.fixture(scope="class")
    def result(self):
        return fig14_convergence(
            transfer_devices=("galaxy_s10e",),
            network_names=("mobilenet_v3", "resnet_50"),
            train_runs=60, seed=0,
        )

    def test_scratch_curves_recorded(self, result):
        assert set(result["curves"]["scratch"]) == {
            "mobilenet_v3_non_streaming", "resnet_50_non_streaming",
        }

    def test_transfer_accelerates_convergence(self, result):
        """Fig. 14: learning transfer cuts training time (paper: 21.2%)."""
        assert result["transfer_time_reduction_pct"] > 0.0

    def test_convergence_within_training_budget(self, result):
        for key, episodes in result["convergence"].items():
            assert episodes <= 60


class TestOverhead:
    @pytest.fixture(scope="class")
    def result(self):
        return overhead_analysis(runs=60, seed=0)

    def test_microsecond_scale_overheads(self, result):
        """Section VI-C: tens of microseconds per decision.  Python is
        slower than the paper's C path; we bound at 2 ms."""
        assert 0 < result["inference_overhead_us"] < 2000.0
        assert result["train_overhead_us"] \
            > result["inference_overhead_us"]

    def test_float16_table_matches_paper_0_4mb(self, result):
        assert result["qtable_bytes_float16"] == pytest.approx(
            0.4e6, rel=0.02
        )

    def test_estimator_mape_single_digit(self, result):
        """Paper: R_energy estimation MAPE of 7.3%."""
        assert result["estimator_mape_pct"] < 12.0


class TestHyperparameterAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablation_hyperparameters(values=(0.1, 0.9), train_runs=40,
                                        seed=0)

    def test_grid_complete(self, result):
        assert set(result["results"]) == {
            (0.1, 0.1), (0.1, 0.9), (0.9, 0.1), (0.9, 0.9),
        }

    def test_paper_choice_competitive(self, result):
        """Section V-C picks lr=0.9, mu=0.1; it should not be the worst
        cell of the grid."""
        energies = result["results"]
        paper = energies[(0.9, 0.1)]
        assert paper <= max(energies.values())


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.evalharness.evaluation import fig10_streaming

        return fig10_streaming(
            device_names=("mi8pro",),
            network_names=("mobilenet_v3", "ssd_mobilenet_v2"),
            scenarios=("S1",),
            config=_FAST, seed=0,
        )

    def test_streaming_degrades_vs_nonstreaming(self, result, fig9):
        """Fig. 10: the 33.3 ms deadline raises everyone's violation
        ratio relative to Fig. 9's 50 ms."""
        streaming = {s["scheduler"]: s
                     for s in result["per_device"]["mi8pro"]}
        static = {s["scheduler"]: s for s in fig9["per_device"]["mi8pro"]}
        assert streaming["opt"]["qos_violation_pct"] >= 0.0
        # AutoScale still improves on the CPU baseline under streaming.
        assert streaming["autoscale"]["ppw_norm"] \
            > streaming["edge_cpu_fp32"]["ppw_norm"]

    def test_autoscale_tracks_opt_in_streaming(self, result):
        summary = {s["scheduler"]: s
                   for s in result["per_device"]["mi8pro"]}
        assert summary["autoscale"]["ppw_norm"] \
            > 0.75 * summary["opt"]["ppw_norm"]
