"""Tests for the fleet transfer study."""

import pytest

from repro.evalharness.fleet import fleet_transfer_study


@pytest.fixture(scope="module")
def study():
    return fleet_transfer_study(
        fleet_devices=("galaxy_s10e",),
        network_names=("mobilenet_v3", "resnet_50"),
        train_runs=90, seed=0,
    )


class TestFleetStudy:
    def test_one_row_per_fleet_device(self, study):
        assert [r["device"] for r in study["rows"]] == ["galaxy_s10e"]

    def test_transfer_accelerates(self, study):
        row = study["rows"][0]
        assert row["transfer_convergence"] <= row["scratch_convergence"]
        assert study["mean_time_reduction_pct"] >= 0.0

    def test_every_s10e_action_seeded_from_mi8pro(self, study):
        """The S10e's capabilities are a subset of the donor's."""
        row = study["rows"][0]
        assert row["actions_seeded"] == 65

    def test_transfer_energy_stays_near_oracle(self, study):
        """Transfer anchors the policy to the donor's near-optimum: it
        may miss the exact argmax (the 1% criterion), but its decisions
        must stay within a few percent of the oracle's *energy*."""
        row = study["rows"][0]
        assert row["transfer_energy_gap_pct"] < 10.0

    def test_table_rendered(self, study):
        assert "Fleet transfer study" in study["table"]
