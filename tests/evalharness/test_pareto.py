"""Tests for the Pareto design-space analysis."""

import pytest

from repro.evalharness.pareto import (
    ParetoPoint,
    design_space_analysis,
    pareto_frontier,
)


def _point(key, latency, energy):
    return ParetoPoint(key, latency, energy, accuracy_pct=70.0)


class TestDominance:
    def test_strictly_better_dominates(self):
        assert _point("a", 10, 10).dominates(_point("b", 20, 20))

    def test_equal_does_not_dominate(self):
        assert not _point("a", 10, 10).dominates(_point("b", 10, 10))

    def test_tradeoff_does_not_dominate(self):
        fast_dear = _point("a", 5, 50)
        slow_cheap = _point("b", 50, 5)
        assert not fast_dear.dominates(slow_cheap)
        assert not slow_cheap.dominates(fast_dear)

    def test_better_on_one_axis_dominates(self):
        assert _point("a", 10, 10).dominates(_point("b", 10, 20))


class TestFrontier:
    def test_dominated_points_removed(self):
        points = [_point("good", 10, 10), _point("bad", 20, 20),
                  _point("tradeoff", 5, 30)]
        frontier = pareto_frontier(points)
        keys = [p.target_key for p in frontier]
        assert "bad" not in keys
        assert set(keys) == {"good", "tradeoff"}

    def test_sorted_by_latency(self):
        points = [_point("slow", 30, 5), _point("fast", 5, 30),
                  _point("mid", 15, 15)]
        frontier = pareto_frontier(points)
        latencies = [p.latency_ms for p in frontier]
        assert latencies == sorted(latencies)

    def test_frontier_energy_decreasing_in_latency(self):
        """Along the frontier, more latency must buy less energy."""
        points = [_point(str(i), 10 + i, 100 - 3 * i) for i in range(10)]
        frontier = pareto_frontier(points)
        energies = [p.energy_mj for p in frontier]
        assert energies == sorted(energies, reverse=True)


class TestDesignSpaceAnalysis:
    @pytest.fixture(scope="class")
    def result(self):
        return design_space_analysis()

    def test_covers_full_action_space(self, result):
        assert len(result["points"]) == 66

    def test_most_actions_are_dominated(self, result):
        """The DVFS x precision x location lattice is highly redundant —
        the insight behind the paper's 'infeasible to enumerate' claim
        being about *finding* the frontier, not using it."""
        assert result["dominated_fraction"] > 0.5

    def test_oracle_pick_is_on_the_frontier(self, result):
        assert result["oracle_on_frontier"]

    def test_oracle_is_cheapest_feasible_frontier_point(self, result):
        feasible = result["feasible_frontier"]
        assert feasible
        cheapest = min(feasible, key=lambda p: p.energy_mj)
        assert cheapest.target_key == result["oracle_target"]

    def test_table_rendered(self, result):
        assert "Pareto frontier" in result["table"]
