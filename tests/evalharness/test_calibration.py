"""The calibration self-test, run as CI.

Any change to the hardware/wireless/model numbers must keep every
Section-III ordering intact; this is the guard rail.
"""

import pytest

from repro.evalharness.calibration import run_calibration_checks


@pytest.fixture(scope="module")
def result():
    return run_calibration_checks()


def test_all_orderings_hold(result):
    failed = [c.name for c in result["checks"] if not c.passed]
    assert result["all_passed"], f"calibration drifted: {failed}"


def test_covers_all_motivation_figures(result):
    names = {c.name for c in result["checks"]}
    for figure in ("fig2", "fig3", "fig4", "fig5", "fig6"):
        assert any(name.startswith(figure) for name in names), figure


def test_table_rendered(result):
    assert "Calibration self-test" in result["table"]
    assert "FAIL" not in result["table"]
