"""Tests for the evaluation metrics."""

import math

import pytest

from repro.common import ConfigError
from repro.env.result import ExecutionResult
from repro.evalharness.metrics import (
    EpisodeStats,
    decision_match,
    mape,
    misclassification_ratio,
    ppw_ratio,
    qos_violation_ratio,
)


class TestMape:
    def test_exact_predictions(self):
        assert mape([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_known_value(self):
        # |1.1-1|/1 and |1.8-2|/2 -> mean of 10% and 10%.
        assert mape([1.1, 1.8], [1.0, 2.0]) == pytest.approx(10.0)

    def test_shape_mismatch(self):
        with pytest.raises(ConfigError):
            mape([1.0], [1.0, 2.0])

    def test_non_positive_measured_rejected(self):
        with pytest.raises(ConfigError):
            mape([1.0], [0.0])


class TestMisclassification:
    def test_all_correct(self):
        assert misclassification_ratio(["a", "b"], ["a", "b"]) == 0.0

    def test_half_wrong(self):
        assert misclassification_ratio(["a", "x"], ["a", "b"]) == 50.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            misclassification_ratio([], [])


class TestQosViolation:
    def test_percentage(self):
        assert qos_violation_ratio([10, 60, 40, 70], 50.0) == 50.0

    def test_boundary_not_a_violation(self):
        assert qos_violation_ratio([50.0], 50.0) == 0.0


class TestPpwRatio:
    def test_improvement(self):
        assert ppw_ratio(100.0, 10.0) == pytest.approx(10.0)

    def test_degradation(self):
        assert ppw_ratio(10.0, 100.0) == pytest.approx(0.1)


class TestDecisionMatch:
    def test_exact(self):
        assert decision_match(10.0, 10.0)

    def test_within_one_percent(self):
        """Fig. 13's criterion: energy within 1% of optimal counts."""
        assert decision_match(10.099, 10.0)
        assert not decision_match(10.2, 10.0)

    def test_cheaper_than_optimal_counts(self):
        assert decision_match(9.0, 10.0)


class TestEpisodeStats:
    def _result(self, latency=20.0, energy=50.0, key="local/cpu/fp32/vf0"):
        return ExecutionResult(latency_ms=latency, energy_mj=energy,
                               estimated_energy_mj=energy,
                               accuracy_pct=70.0, target_key=key)

    def test_aggregates(self):
        stats = EpisodeStats("s", "c", "S1", qos_ms=50.0)
        stats.record(self._result(latency=40.0, energy=60.0))
        stats.record(self._result(latency=60.0, energy=40.0))
        assert stats.num_inferences == 2
        assert stats.mean_energy_mj == pytest.approx(50.0)
        assert stats.mean_latency_ms == pytest.approx(50.0)
        assert stats.qos_violation_pct == pytest.approx(50.0)

    def test_decision_shares(self):
        stats = EpisodeStats("s", "c", "S1", qos_ms=50.0)
        stats.record(self._result(key="a"))
        stats.record(self._result(key="a"))
        stats.record(self._result(key="b"))
        shares = stats.decision_shares()
        assert shares["a"] == pytest.approx(2 / 3)
        assert shares["b"] == pytest.approx(1 / 3)

    def test_oracle_tracking(self):
        stats = EpisodeStats("s", "c", "S1", qos_ms=50.0)
        stats.record(self._result(), matched_oracle=True)
        stats.record(self._result(), matched_oracle=False)
        stats.record(self._result(), matched_oracle=True)
        assert stats.prediction_accuracy_pct == pytest.approx(200 / 3)

    def test_prediction_accuracy_nan_when_unchecked(self):
        stats = EpisodeStats("s", "c", "S1", qos_ms=50.0)
        stats.record(self._result())
        assert math.isnan(stats.prediction_accuracy_pct)

    def test_empty_stats_rejected(self):
        stats = EpisodeStats("s", "c", "S1", qos_ms=50.0)
        with pytest.raises(ConfigError):
            _ = stats.mean_energy_mj
