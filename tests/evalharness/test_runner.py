"""Tests for the training/evaluation protocol runner."""

import pytest

from repro.baselines.oracle import OptOracle
from repro.baselines.static import EdgeCpuFp32
from repro.common import ConfigError
from repro.core.engine import AutoScale
from repro.env.environment import EdgeCloudEnvironment
from repro.env.qos import use_case_for
from repro.evalharness.runner import (
    RunConfig,
    adapt_engine,
    evaluate_autoscale,
    evaluate_scheduler,
    loo_train_and_evaluate,
    train_autoscale,
)
from repro.hardware.devices import build_device


class TestRunConfig:
    def test_defaults(self):
        config = RunConfig()
        assert config.train_runs >= 1

    def test_validation(self):
        with pytest.raises(ConfigError):
            RunConfig(train_runs=0)


class TestTrainAutoscale:
    def test_trains_across_scenarios(self, zoo):
        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   seed=0)
        engine = AutoScale(env, seed=0)
        cases = [use_case_for(zoo["mobilenet_v3"])]
        train_autoscale(engine, cases, scenarios=("S1", "S2"),
                        runs_per_case=5)
        assert len(engine.history) == 10
        assert env.scenario.name == "S2"


class TestAdaptAndEvaluate:
    def test_adapt_stops_on_convergence(self, zoo):
        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   seed=0)
        engine = AutoScale(env, seed=0)
        case = use_case_for(zoo["mobilenet_v3"])
        converged_at = adapt_engine(engine, case, max_runs=150)
        assert converged_at is not None
        assert len(engine.history) <= 150

    def test_evaluate_is_frozen_and_scored(self, zoo):
        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   seed=0)
        engine = AutoScale(env, seed=0)
        case = use_case_for(zoo["mobilenet_v3"])
        adapt_engine(engine, case, max_runs=100)
        stats = evaluate_autoscale(engine, case, eval_runs=10,
                                   oracle=OptOracle())
        assert stats.num_inferences == 10
        assert 0.0 <= stats.prediction_accuracy_pct <= 100.0
        # After evaluation the engine is back in training mode.
        assert engine.training

    def test_evaluate_scheduler(self, env, mobilenet_case):
        stats = evaluate_scheduler(env, EdgeCpuFp32(), mobilenet_case,
                                   eval_runs=5)
        assert stats.num_inferences == 5
        assert stats.scheduler == "edge_cpu_fp32"


class TestLeaveOneOut:
    def test_loo_excludes_test_case_from_training(self, zoo):
        cases = [use_case_for(zoo[n])
                 for n in ("mobilenet_v3", "inception_v1", "resnet_50")]
        test_case = cases[0]
        engine, results = loo_train_and_evaluate(
            lambda: build_device("mi8pro"), cases, test_case,
            scenarios=("S1",),
            config=RunConfig(train_runs=5, adapt_runs=20, eval_runs=5),
            seed=0, oracle=False,
        )
        assert set(results) == {"S1"}
        stats = results["S1"]
        assert stats.num_inferences == 5
        # Training portion: 2 cases x 5 runs, before adapt/eval.
        trained_networks = {
            step.result.target_key for step in engine.history[:10]
        }
        assert trained_networks  # sanity: history captured
