"""Tests for execution tracing."""

import pytest

from repro.common import ConfigError
from repro.core.engine import AutoScale
from repro.env.environment import EdgeCloudEnvironment
from repro.env.qos import use_case_for
from repro.evalharness.tracing import TraceRecorder, load_trace
from repro.hardware.devices import build_device


@pytest.fixture()
def traced(zoo):
    env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                               seed=4)
    engine = AutoScale(env, seed=4)
    case = use_case_for(zoo["mobilenet_v3"])
    recorder = TraceRecorder()
    for _ in range(30):
        step = engine.step(case)
        recorder.record_step(step, case, at_ms=env.clock.now_ms)
    return recorder, case


class TestCapture:
    def test_record_count(self, traced):
        recorder, _ = traced
        assert len(recorder) == 30

    def test_records_carry_rewards(self, traced):
        recorder, _ = traced
        assert all(r.reward is not None for r in recorder.records)

    def test_record_result_without_engine(self, zoo):
        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   seed=4)
        case = use_case_for(zoo["mobilenet_v3"])
        result = env.execute(case.network, env.targets()[0])
        recorder = TraceRecorder()
        record = recorder.record_result(result, case)
        assert record.reward is None
        assert record.target_key == result.target_key


class TestAnalysis:
    def test_summary_fields(self, traced):
        recorder, _ = traced
        summary = recorder.summary()
        assert summary["num_inferences"] == 30
        assert summary["total_energy_mj"] > 0
        assert 0.0 <= summary["qos_violation_pct"] <= 100.0

    def test_location_shares_sum_to_one(self, traced):
        recorder, _ = traced
        shares = recorder.decisions_by_location()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_migrations_detected(self, traced):
        recorder, _ = traced
        migrations = recorder.migrations()
        # Early training sweeps targets, so migrations must exist.
        assert len(migrations) > 0
        assert all(0 < i < 30 for i in migrations)

    def test_violation_runs_partition_violations(self, traced):
        recorder, _ = traced
        total_violations = sum(1 for r in recorder.records
                               if not r.meets_qos)
        assert sum(recorder.violation_runs()) == total_violations

    def test_estimator_mape_reasonable(self, traced):
        recorder, _ = traced
        assert 0.0 <= recorder.estimator_mape_pct() < 50.0

    def test_empty_trace_summary_is_all_zeros(self):
        # Regression: summary() used to divide by len(records); a
        # monitoring endpoint polling an idle service must get zeros,
        # not a crash.
        summary = TraceRecorder().summary()
        assert summary["num_inferences"] == 0
        assert all(value == 0.0 for key, value in summary.items()
                   if key != "num_inferences")

    def test_all_failed_trace_keeps_rates_finite(self):
        from repro.evalharness.tracing import TraceRecord
        recorder = TraceRecorder()
        for index in range(3):
            recorder.records.append(TraceRecord(
                index=index, at_ms=float(index), use_case="svc",
                target_key="cloud/gpu/fp32", latency_ms=10.0,
                energy_mj=5.0, estimated_energy_mj=5.0,
                accuracy_pct=75.0, qos_ms=100.0, status="failed",
            ))
        summary = recorder.summary()
        assert summary["availability_pct"] == 0.0
        assert summary["qos_violation_pct"] == 100.0
        assert summary["energy_per_delivered_mj"] == 0.0
        assert summary["failed_energy_mj"] == pytest.approx(15.0)

    def test_other_analyses_still_reject_empty_traces(self):
        with pytest.raises(ConfigError):
            TraceRecorder().decisions_by_location()


class TestPersistence:
    def test_jsonl_roundtrip(self, traced, tmp_path):
        recorder, _ = traced
        path = recorder.save(tmp_path / "trace.jsonl")
        loaded = load_trace(path)
        assert len(loaded) == len(recorder)
        assert loaded.records[0] == recorder.records[0]
        assert loaded.summary() == recorder.summary()

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            load_trace(tmp_path / "nope.jsonl")

    def test_load_respects_max_records(self, traced, tmp_path):
        recorder, _ = traced
        path = recorder.save(tmp_path / "trace.jsonl")
        loaded = load_trace(path, max_records=10)
        assert len(loaded) == 10
        assert loaded.max_records == 10
        # The *newest* records survive, original indices intact.
        assert loaded.records[-1] == recorder.records[-1]


class TestResilienceBookkeeping:
    def _record(self, **overrides):
        from repro.evalharness.tracing import TraceRecord
        fields = dict(index=0, at_ms=0.0, use_case="svc",
                      target_key="cloud/gpu/fp32", latency_ms=10.0,
                      energy_mj=5.0, estimated_energy_mj=5.0,
                      accuracy_pct=75.0, qos_ms=100.0)
        fields.update(overrides)
        return TraceRecord(**fields)

    def test_status_validated(self):
        with pytest.raises(ConfigError, match="status"):
            self._record(status="exploded")
        with pytest.raises(ConfigError):
            self._record(retries=-1)

    def test_failed_records_never_meet_qos(self):
        record = self._record(status="failed", latency_ms=1.0)
        assert not record.delivered
        assert not record.meets_qos

    def test_degraded_records_deliver(self):
        record = self._record(status="degraded")
        assert record.delivered
        assert record.meets_qos

    def test_summary_accounts_failed_energy(self, traced):
        recorder, case = traced
        count = len(recorder.records)
        recorder.records.append(self._record(
            index=count, status="failed", energy_mj=7.0))
        recorder.records.append(self._record(
            index=count + 1, status="degraded", retries=2,
            failed_energy_mj=3.0))
        summary = recorder.summary()
        assert summary["availability_pct"] \
            == pytest.approx((count + 1) / (count + 2) * 100.0)
        assert summary["degraded_pct"] \
            == pytest.approx(1 / (count + 2) * 100.0)
        assert summary["failed_energy_mj"] == pytest.approx(10.0)
        assert summary["retries_per_request"] \
            == pytest.approx(2 / (count + 2))

    def test_resilience_fields_roundtrip_jsonl(self, tmp_path):
        recorder = TraceRecorder()
        recorder.records.append(self._record(status="degraded",
                                             retries=3,
                                             failed_energy_mj=12.5))
        loaded = load_trace(recorder.save(tmp_path / "t.jsonl"))
        assert loaded.records[0] == recorder.records[0]


class TestRollingWindow:
    def test_bound_validated(self):
        with pytest.raises(ConfigError):
            TraceRecorder(max_records=0)

    def test_trims_oldest_half(self, zoo):
        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   seed=4)
        case = use_case_for(zoo["mobilenet_v3"])
        recorder = TraceRecorder(max_records=10)
        target = env.targets()[0]
        for _ in range(25):
            recorder.record_result(env.execute(case.network, target),
                                   case)
        assert len(recorder) <= 10

    def test_unbounded_by_default(self):
        assert TraceRecorder().max_records is None
