"""Tests for the table/kv renderers."""

from repro.evalharness.reporting import format_kv, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "value"],
                            [["a", 1.0], ["longer", 22.5]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert len({len(line.rstrip()) for line in lines[2:]}) <= 2

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table(["v"], [[1234.5678], [12.345], [1.2345]])
        assert "1235" in text     # >=100 -> no decimals
        assert "12.3" in text     # >=10 -> one decimal
        assert "1.23" in text     # <10 -> two decimals

    def test_nan_rendered_as_na(self):
        text = format_table(["v"], [[float("nan")]])
        assert "n/a" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text


class TestFormatKv:
    def test_aligned_keys(self):
        text = format_kv([("short", 1), ("much_longer_key", 2)])
        lines = text.splitlines()
        assert lines[0].index(":") == lines[1].index(":")

    def test_title(self):
        text = format_kv([("k", "v")], title="Header")
        assert text.startswith("Header")
