"""Drift-sweep gates (ISSUE 9 acceptance).

The headline pins, at the shared seed:

- guarded serving **strictly dominates** unguarded on post-drift QoS
  violations in every drifted scenario;
- the guard **never fires** on stationary traffic (zero alarms, stage
  HEALTHY, and the two arms' violation counts identical);
- every guard tick is dispatched through the ``repro.sim`` heap as a
  typed ``GUARD_TICK`` event — no per-request sweeps.

The sweep runs once per module (it replays eight full serving episodes)
on a shortened episode; the full-length numbers land in
``benchmarks/results/BENCH_drift.json`` via the non-gating bench job.
"""

import pytest

from repro.common import ConfigError, UnknownKeyError
from repro.evalharness.drift import (
    DRIFT_SCENARIOS,
    DriftScenario,
    build_drift_scenario,
    drift_episode,
    drift_sweep,
)
from repro.faults.plan import FaultPlan
from repro.sim.events import EventKind

_DRIFTED = ("rssi_shift", "corunner_flip", "cloud_slowdown")
_EPISODE = dict(duration_ms=40_000.0, drift_at_ms=15_000.0, seed=0)


@pytest.fixture(scope="module")
def sweep_rows():
    rows = drift_sweep(**_EPISODE)
    return {(row["scenario"], row["guarded"]): row for row in rows}


class TestScenarioDefinitions:
    def test_catalog_names(self):
        assert set(DRIFT_SCENARIOS) == {"stationary", *_DRIFTED}

    def test_stationary_does_not_drift(self):
        assert not DRIFT_SCENARIOS["stationary"].drifts
        assert all(DRIFT_SCENARIOS[name].drifts for name in _DRIFTED)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(UnknownKeyError, match="drift scenario"):
            build_drift_scenario("meteor_strike")

    def test_scenario_validation(self):
        with pytest.raises(ConfigError, match="name"):
            DriftScenario("", "anonymous")
        with pytest.raises(ConfigError, match="straggler_prob"):
            DriftScenario("bad", "x", straggler_prob=1.5)
        with pytest.raises(ConfigError, match="straggler_factor"):
            DriftScenario("bad", "x", straggler_factor=0.5)

    def test_episode_validation(self):
        with pytest.raises(ConfigError, match="duration_ms"):
            drift_episode("stationary", True, duration_ms=0.0)
        with pytest.raises(ConfigError, match="drift_at_ms"):
            drift_episode("stationary", True, duration_ms=1_000.0,
                          drift_at_ms=2_000.0)


class TestGuardedDominance:
    @pytest.mark.parametrize("scenario", _DRIFTED)
    def test_strictly_fewer_post_drift_violations(self, sweep_rows,
                                                  scenario):
        unguarded = sweep_rows[(scenario, False)]
        guarded = sweep_rows[(scenario, True)]
        assert guarded["post_drift_violations"] \
            < unguarded["post_drift_violations"]

    @pytest.mark.parametrize("scenario", _DRIFTED)
    def test_guard_actually_intervened(self, sweep_rows, scenario):
        guard = sweep_rows[(scenario, True)]["guard"]
        assert guard["escalations"] >= 1
        assert guard["alarms"]

    def test_both_arms_face_identical_offered_load(self, sweep_rows):
        for scenario in DRIFT_SCENARIOS:
            assert sweep_rows[(scenario, False)]["offered"] \
                == sweep_rows[(scenario, True)]["offered"]


class TestStationaryNeverFires:
    def test_zero_alarms(self, sweep_rows):
        guard = sweep_rows[("stationary", True)]["guard"]
        assert guard["alarms"] == {}
        assert guard["stage"] == "healthy"
        assert guard["escalations"] == 0
        assert guard["ticks"] > 0

    def test_observer_guard_changes_nothing(self, sweep_rows):
        unguarded = sweep_rows[("stationary", False)]
        guarded = sweep_rows[("stationary", True)]
        assert guarded["post_drift_violations"] \
            == unguarded["post_drift_violations"]
        assert guarded["total_energy_mj"] == unguarded["total_energy_mj"]

    def test_unguarded_arm_never_ticks(self, sweep_rows):
        for scenario in DRIFT_SCENARIOS:
            assert sweep_rows[(scenario, False)]["guard"]["ticks"] == 0


class TestTicksThroughHeap:
    def test_guard_ticks_are_typed_kernel_events(self, monkeypatch):
        from repro.sim.kernel import EventKernel

        scheduled = {"guard_ticks": 0}
        original = EventKernel.schedule

        def counting_schedule(self, time_ms, kind, payload=None,
                              callback=None):
            if kind is EventKind.GUARD_TICK:
                scheduled["guard_ticks"] += 1
            return original(self, time_ms, kind, payload=payload,
                            callback=callback)

        monkeypatch.setattr(EventKernel, "schedule", counting_schedule)
        row = drift_episode("stationary", True, duration_ms=10_000.0,
                            drift_at_ms=5_000.0, seed=0)
        ticks = row["guard"]["ticks"]
        assert ticks > 0
        # Every evaluation rode a scheduled GUARD_TICK (the final
        # pending one is cancelled when the stream drains).
        assert scheduled["guard_ticks"] >= ticks


class TestComposition:
    def test_chaos_plan_composes(self):
        plan = FaultPlan(straggler_prob=0.2, straggler_factor=2.0)
        row = drift_episode("cloud_slowdown", True, plan=plan,
                            duration_ms=10_000.0, drift_at_ms=4_000.0,
                            seed=0)
        assert row["faults"] is not None
        assert row["scenario"] == "cloud_slowdown"

    def test_row_shape(self, sweep_rows):
        row = sweep_rows[("rssi_shift", True)]
        for key in ("offered", "post_drift_requests",
                    "post_drift_violations", "post_drift_violation_pct",
                    "guard", "brownout_escalations", "sheds_by_reason"):
            assert key in row
