"""Tests for the one-call reproduction report."""

import pathlib

import pytest

from repro.common import ConfigError
from repro.evalharness.report import RESULT_ORDER, generate_report


@pytest.fixture()
def results_dir(tmp_path):
    directory = tmp_path / "benchmarks" / "results"
    directory.mkdir(parents=True)
    (directory / "fig09_main.txt").write_text("Fig. 9 table body\n")
    (directory / "calibration.txt").write_text("PASS x14\n")
    return directory


class TestGenerateReport:
    def test_includes_present_artifacts(self, results_dir):
        path = generate_report(results_dir)
        text = pathlib.Path(path).read_text()
        assert "Fig. 9 table body" in text
        assert "PASS x14" in text

    def test_marks_missing_sections(self, results_dir):
        text = pathlib.Path(generate_report(results_dir)).read_text()
        assert "not yet generated" in text

    def test_strict_mode_raises_on_missing(self, results_dir):
        with pytest.raises(ConfigError, match="missing"):
            generate_report(results_dir, strict=True)

    def test_sections_follow_paper_order(self, results_dir):
        text = pathlib.Path(generate_report(results_dir)).read_text()
        positions = [text.index(heading)
                     for _, heading in RESULT_ORDER]
        assert positions == sorted(positions)

    def test_custom_output_path(self, results_dir, tmp_path):
        out = tmp_path / "custom.md"
        assert generate_report(results_dir, output_path=out) == out
        assert out.exists()

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            generate_report(tmp_path / "nope")

    def test_real_results_directory_if_present(self):
        """When the repo's own benchmark artifacts exist, the report
        builds from them."""
        real = pathlib.Path(__file__).parents[2] / "benchmarks" / "results"
        if not real.is_dir():
            pytest.skip("benchmarks not yet run")
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            out = generate_report(real, output_path=pathlib.Path(tmp)
                                  / "REPORT.md")
            text = out.read_text()
            assert "Fig. 9" in text
