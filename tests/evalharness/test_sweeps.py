"""Tests for the parameter sweeps."""

import pytest

from repro.evalharness.sweeps import (
    epsilon_sweep,
    interference_sweep,
    qos_sweep,
    signal_strength_sweep,
)


class TestSignalSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return signal_strength_sweep()

    def test_strong_end_is_cloud(self, result):
        assert result["rows"][0]["optimal_target"].startswith("cloud/")

    def test_weak_end_leaves_cloud(self, result):
        assert not result["rows"][-1]["optimal_target"].startswith(
            "cloud/")

    def test_at_least_one_crossover(self, result):
        assert len(result["crossovers"]) >= 1

    def test_crossover_near_table_i_threshold(self, result):
        """The first location crossover should fall near the -80 dBm
        state boundary of Table I (the link's knee)."""
        first = result["crossovers"][0]
        assert -90.0 <= first[1] <= -70.0


class TestInterferenceSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return interference_sweep()

    def test_idle_end_on_cpu(self, result):
        assert result["rows"][0]["optimal_target"].startswith(
            "local/cpu")

    def test_loaded_end_off_cpu(self, result):
        assert not result["rows"][-1]["optimal_target"].startswith(
            "local/cpu")

    def test_energy_monotone_in_load_for_fixed_family(self, result):
        """The oracle's energy can only rise as interference grows."""
        energies = [r["energy_mj"] for r in result["rows"]]
        assert energies[-1] >= energies[0]


class TestQosSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return qos_sweep()

    def test_energy_non_increasing_among_feasible_deadlines(self, result):
        """Among deadlines the oracle can actually meet, relaxing the
        deadline can only reduce the minimum energy.  (An infeasible
        deadline falls back to the unconstrained energy optimum, which
        may be *cheaper* than the tightest feasible choice — the
        oracle prefers feasibility lexicographically.)"""
        feasible = [r["energy_mj"] for r in result["rows"]
                    if r["meets_qos"]]
        for tight, loose in zip(feasible, feasible[1:]):
            assert loose <= tight * 1.001

    def test_tightest_deadline_changes_choice(self, result):
        keys = [r["optimal_target"] for r in result["rows"]]
        assert len(set(keys)) >= 2

    def test_infeasible_deadline_flagged(self, result):
        assert not result["rows"][0]["meets_qos"]  # 20 ms is impossible


class TestEpsilonSweep:
    def test_runs_and_reports(self):
        result = epsilon_sweep(epsilons=(0.05, 0.3), train_runs=80,
                               eval_runs=8)
        assert len(result["rows"]) == 2
        for row in result["rows"]:
            assert row["mean_energy_mj"] > 0


class TestRadioComparison:
    def test_lte_offload_costs_more(self):
        from repro.evalharness.sweeps import radio_comparison

        result = radio_comparison(network_name="resnet_50")
        rows = {r["radio"]: r for r in result["rows"]}
        assert rows["lte"]["cloud_energy_mj"] \
            > rows["wifi"]["cloud_energy_mj"]

    def test_lte_flips_the_resnet_breakeven(self):
        """Over Wi-Fi the cloud wins ResNet-50; over LTE's tail-heavy
        radio it loses to the best local target."""
        from repro.evalharness.sweeps import radio_comparison

        result = radio_comparison(network_name="resnet_50")
        rows = {r["radio"]: r for r in result["rows"]}
        assert rows["wifi"]["cloud_wins"]
        assert not rows["lte"]["cloud_wins"]

    def test_bert_stays_cloud_even_over_lte(self):
        from repro.evalharness.sweeps import radio_comparison

        result = radio_comparison(network_name="mobilebert")
        rows = {r["radio"]: r for r in result["rows"]}
        assert rows["lte"]["cloud_wins"]
