"""Tests for the energy-breakdown analyzer."""

import pytest

from repro.env.target import ExecutionTarget, Location
from repro.evalharness.breakdown import breakdown_table, decompose_energy
from repro.models.quantization import Precision


@pytest.fixture()
def quiet(env):
    return env.observe()


def _cloud_gpu():
    return ExecutionTarget(Location.CLOUD, "gpu", Precision.FP32)


def _local(env, role="cpu", precision=Precision.FP32):
    proc = env.device.soc.processor(role)
    return ExecutionTarget(Location.LOCAL, role, precision,
                           proc.num_vf_steps - 1)


class TestLocalBreakdown:
    def test_components_sum_to_nominal_energy(self, env, zoo, quiet):
        net = zoo["mobilenet_v3"]
        target = _local(env)
        breakdown = decompose_energy(env, net, target, quiet)
        nominal = env.estimate(net, target, quiet)
        assert breakdown.total_mj == pytest.approx(nominal.energy_mj)

    def test_cpu_run_has_no_host_idle(self, env, zoo, quiet):
        breakdown = decompose_energy(env, zoo["mobilenet_v3"],
                                     _local(env, "cpu"), quiet)
        assert breakdown.components_mj["host_idle"] == 0.0

    def test_dsp_run_charges_host_idle(self, env, zoo, quiet):
        breakdown = decompose_energy(env, zoo["mobilenet_v3"],
                                     _local(env, "dsp", Precision.INT8),
                                     quiet)
        assert breakdown.components_mj["host_idle"] > 0.0

    def test_compute_dominates_heavy_local_run(self, env, zoo, quiet):
        breakdown = decompose_energy(env, zoo["resnet_50"],
                                     _local(env, "cpu"), quiet)
        assert breakdown.dominant_component() == "compute"


class TestRemoteBreakdown:
    def test_components_sum_to_nominal_energy(self, env, zoo, quiet):
        net = zoo["resnet_50"]
        breakdown = decompose_energy(env, net, _cloud_gpu(), quiet)
        nominal = env.estimate(net, _cloud_gpu(), quiet)
        assert breakdown.total_mj == pytest.approx(nominal.energy_mj)

    def test_radio_tail_is_a_major_cloud_cost(self, env, zoo, quiet):
        """The structural reason per-inference offloading is expensive
        for light networks."""
        breakdown = decompose_energy(env, zoo["mobilenet_v3"],
                                     _cloud_gpu(), quiet)
        assert breakdown.share("radio_tail") > 0.3

    def test_tiny_payload_means_tiny_tx(self, env, zoo, quiet):
        bert = decompose_energy(env, zoo["mobilebert"], _cloud_gpu(),
                                quiet)
        vision = decompose_energy(env, zoo["resnet_50"], _cloud_gpu(),
                                  quiet)
        assert bert.components_mj["tx"] < vision.components_mj["tx"]

    def test_weak_signal_inflates_tx(self, env, zoo):
        from repro.env.observation import Observation

        strong = decompose_energy(env, zoo["resnet_50"], _cloud_gpu(),
                                  Observation(rssi_wlan_dbm=-55.0))
        weak = decompose_energy(env, zoo["resnet_50"], _cloud_gpu(),
                                Observation(rssi_wlan_dbm=-86.0))
        assert weak.components_mj["tx"] > 3 * strong.components_mj["tx"]


class TestBreakdownTable:
    def test_side_by_side(self, env, zoo, quiet):
        result = breakdown_table(
            env, zoo["mobilenet_v3"],
            [_local(env, "cpu", Precision.INT8), _cloud_gpu()], quiet,
        )
        assert len(result["breakdowns"]) == 2
        assert "Energy breakdown" in result["table"]
        assert "radio_tail" in result["table"]
