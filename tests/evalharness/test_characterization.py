"""Tests for the Fig. 2-7 characterization drivers.

These check the *shape* claims of the paper's motivation section against
the simulator, which is the reproduction's core contract.
"""

import pytest

from repro.evalharness.characterization import (
    fig2_characterization,
    fig3_layer_latency,
    fig4_accuracy_tradeoff,
    fig5_interference,
    fig6_signal,
    representative_targets,
)


class TestRepresentativeTargets:
    def test_one_per_slot(self, env):
        targets = representative_targets(env)
        slots = {(t.location, t.role, t.precision) for t in targets}
        assert len(slots) == len(targets) == 10


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return fig2_characterization()

    def _best(self, result, device, network):
        rows = [r for r in result["rows"]
                if r["device"] == device and r["network"] == network]
        feasible = [r for r in rows if r["meets_qos"]] or rows
        return max(feasible, key=lambda r: r["ppw_norm"])

    def test_high_end_light_nn_prefers_edge(self, result):
        """Fig. 2: light NNs run best on-device on high-end phones."""
        best = self._best(result, "mi8pro", "mobilenet_v3")
        assert best["target"].startswith("local/")

    def test_heavy_nn_prefers_cloud_everywhere(self, result):
        for device in ("mi8pro", "galaxy_s10e", "moto_x_force"):
            best = self._best(result, device, "mobilebert")
            assert best["target"].startswith("cloud/")

    def test_mid_end_must_scale_out(self, result):
        """Fig. 2: the Moto X Force cannot win locally even on light
        NNs; the connected edge device is the efficient choice."""
        best = self._best(result, "moto_x_force", "inception_v1")
        assert best["target"].startswith("connected/")

    def test_ppw_normalized_to_edge_cpu(self, result):
        for device in ("mi8pro",):
            rows = [r for r in result["rows"]
                    if r["device"] == device
                    and r["target"].startswith("local/cpu/fp32")]
            assert rows[0]["ppw_norm"] == pytest.approx(1.0)

    def test_table_rendered(self, result):
        assert "Fig. 2" in result["table"]


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return fig3_layer_latency()

    def _row(self, result, network, processor):
        return next(r for r in result["rows"]
                    if r["network"] == network
                    and r["processor"] == processor)

    def test_fc_layers_slower_on_coprocessors(self, result):
        """Fig. 3: FC latency explodes on GPU/DSP relative to CPU."""
        cpu = self._row(result, "mobilenet_v3", "cpu")
        gpu = self._row(result, "mobilenet_v3", "gpu")
        dsp = self._row(result, "mobilenet_v3", "dsp")
        assert gpu["fc_ms"] > 2.0 * cpu["fc_ms"]
        assert dsp["fc_ms"] > 2.0 * cpu["fc_ms"]

    def test_conv_layers_faster_on_coprocessors(self, result):
        cpu = self._row(result, "inception_v1", "cpu")
        gpu = self._row(result, "inception_v1", "gpu")
        assert gpu["conv_ms"] < cpu["conv_ms"]

    def test_conv_heavy_network_wins_on_coprocessor(self, result):
        """Inception v1 total is faster off-CPU; MobileNet v3 is not."""
        inception_gpu = self._row(result, "inception_v1", "gpu")
        assert inception_gpu["total_norm_cpu"] < 1.0


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return fig4_accuracy_tradeoff()

    def _optimum(self, result, network, target):
        return next(o for o in result["optima"]
                    if o["network"] == network
                    and o["accuracy_target"] == target)

    def test_inception_low_target_picks_dsp_int8(self, result):
        """Fig. 4 caption: at 50% the optimum is DSP INT8."""
        assert self._optimum(result, "inception_v1", 50.0)[
            "optimal_target"] == "local/dsp/int8/vf0"

    def test_mobilenet_low_target_picks_cpu_int8(self, result):
        """Fig. 4 caption: at 50% MobileNet v3's optimum is CPU INT8."""
        assert self._optimum(result, "mobilenet_v3", 50.0)[
            "optimal_target"].startswith("local/cpu/int8")

    def test_higher_target_shifts_off_int8(self, result):
        for network in ("inception_v1", "mobilenet_v3"):
            optimum = self._optimum(result, network, 65.0)
            assert "int8" not in optimum["optimal_target"]


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return fig5_interference()

    def _optimum(self, result, scenario):
        return next(o["optimal_target"] for o in result["optima"]
                    if o["scenario"] == scenario)

    def test_quiet_optimum_is_cpu(self, result):
        assert self._optimum(result, "S1").startswith("local/cpu")

    def test_cpu_corunner_shifts_off_cpu(self, result):
        """Fig. 5: CPU-intensive co-runner moves the optimum off-CPU."""
        assert not self._optimum(result, "S2").startswith("local/cpu")

    def test_memory_corunner_shifts_off_device(self, result):
        """Fig. 5: memory-intensive co-runner moves the optimum off the
        device entirely."""
        assert not self._optimum(result, "S3").startswith("local/")

    def test_cpu_ppw_degrades_under_cpu_corunner(self, result):
        def cpu_ppw(scenario):
            return next(r["ppw_norm"] for r in result["rows"]
                        if r["scenario"] == scenario
                        and r["target"].startswith("local/cpu/fp32"))
        assert cpu_ppw("S2") < cpu_ppw("S1")


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6_signal()

    def _optimum(self, result, scenario):
        return next(o["optimal_target"] for o in result["optima"]
                    if o["scenario"] == scenario)

    def test_strong_signal_prefers_cloud(self, result):
        assert self._optimum(result, "S1").startswith("cloud/")

    def test_weak_wifi_prefers_connected_edge(self, result):
        """Fig. 6: weak Wi-Fi alone still leaves Wi-Fi Direct usable."""
        assert self._optimum(result, "S4").startswith("connected/")

    def test_both_weak_prefers_local(self, result):
        assert self._optimum(result, "S4+S5").startswith("local/")
