"""Tests for the chaos evaluation driver."""

import pytest

from repro.common import ConfigError
from repro.evalharness.chaos import (
    DEFAULT_LEVELS,
    ChaosLevel,
    chaos_episode,
    chaos_sweep,
)
from repro.faults import FaultPlan

#: One faulted level, small request count: the seeded regression anchor.
_PLAN = FaultPlan(loss_scale=1.0, abort_prob=0.15)


class TestEpisode:
    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ConfigError, match="scheduler"):
            chaos_episode("adaptive", FaultPlan.none())

    def test_bad_request_count_rejected(self):
        with pytest.raises(ConfigError):
            chaos_episode("naive", FaultPlan.none(), num_requests=0)

    def test_row_shape(self):
        row = chaos_episode("static_local", FaultPlan.none(),
                            num_requests=5)
        assert row["scheduler"] == "static_local"
        assert row["num_inferences"] == 5
        assert row["availability_pct"] == 100.0
        assert row["fault_attempts"] == 0

    def test_static_local_immune_to_faults(self):
        row = chaos_episode("static_local", _PLAN, num_requests=20,
                            seed=3)
        assert row["availability_pct"] == 100.0
        assert row["fault_billed_energy_mj"] == 0.0

    def test_static_remote_suffers(self):
        row = chaos_episode("static_remote", _PLAN, num_requests=60,
                            seed=3)
        assert row["availability_pct"] < 100.0
        assert row["fault_billed_energy_mj"] > 0.0


class TestResilienceDominatesNaive:
    @pytest.fixture(scope="class")
    def pair(self):
        kwargs = dict(num_requests=120, seed=3)
        return (chaos_episode("resilient", _PLAN, **kwargs),
                chaos_episode("naive", _PLAN, **kwargs))

    def test_strictly_higher_availability(self, pair):
        resilient, naive = pair
        assert naive["availability_pct"] < 100.0
        assert resilient["availability_pct"] \
            > naive["availability_pct"]

    def test_strictly_lower_qos_violations(self, pair):
        resilient, naive = pair
        assert resilient["qos_violation_pct"] \
            < naive["qos_violation_pct"]

    def test_recovery_mechanisms_engaged(self, pair):
        resilient, _ = pair
        assert resilient["retries_per_request"] > 0.0

    def test_conservation_in_both(self, pair):
        for row in pair:
            assert row["failed_energy_mj"] \
                == pytest.approx(row["fault_billed_energy_mj"])


class TestSweep:
    def test_default_levels_are_ordered_intensities(self):
        assert DEFAULT_LEVELS[0].plan == FaultPlan.none()
        assert all(level.plan.active for level in DEFAULT_LEVELS[1:])

    def test_level_needs_name(self):
        with pytest.raises(ConfigError):
            ChaosLevel("", FaultPlan.none())

    def test_sweep_covers_grid(self):
        levels = (ChaosLevel("calm", FaultPlan.none()),
                  ChaosLevel("rough", _PLAN))
        rows = chaos_sweep(levels=levels,
                           schedulers=("naive", "static_local"),
                           num_requests=10, seed=1)
        assert len(rows) == 4
        assert {(r["level"], r["scheduler"]) for r in rows} == {
            ("calm", "naive"), ("calm", "static_local"),
            ("rough", "naive"), ("rough", "static_local"),
        }

    def test_calm_level_is_fault_free(self):
        rows = chaos_sweep(levels=(ChaosLevel("calm", FaultPlan.none()),),
                           schedulers=("resilient", "naive"),
                           num_requests=15, seed=2)
        for row in rows:
            assert row["availability_pct"] == 100.0
            assert row["fault_billed_energy_mj"] == 0.0
