"""Tests for the RL design-comparison driver."""

import pytest

from repro.evalharness.rl_comparison import compare_rl_designs


@pytest.fixture(scope="module")
def result():
    return compare_rl_designs(network_names=("mobilenet_v3",),
                              train_runs=100, eval_runs=10, seed=0)


class TestCompareRlDesigns:
    def test_all_four_learners(self, result):
        assert [r["learner"] for r in result["rows"]] == [
            "q_learning", "sarsa", "linear_q", "mlp_q",
        ]

    def test_tabular_learners_match_oracle(self, result):
        rows = {r["learner"]: r for r in result["rows"]}
        assert rows["q_learning"]["prediction_accuracy_pct"] >= 70.0
        assert rows["sarsa"]["prediction_accuracy_pct"] >= 70.0

    def test_linear_q_smallest_memory(self, result):
        rows = {r["learner"]: r for r in result["rows"]}
        assert rows["linear_q"]["memory_bytes"] \
            < rows["q_learning"]["memory_bytes"]

    def test_decision_overheads_positive(self, result):
        for row in result["rows"]:
            assert row["decide_us"] > 0

    def test_table_rendered(self, result):
        assert "RL design comparison" in result["table"]
