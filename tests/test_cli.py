"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestListCommand:
    def test_lists_inventory(self):
        code, text = run_cli("list")
        assert code == 0
        assert "mi8pro" in text
        assert "mobilebert" in text
        assert "S4" in text


class TestTrainPredict:
    def test_train_save_predict_roundtrip(self, tmp_path):
        save_dir = str(tmp_path / "engine")
        code, text = run_cli(
            "train", "--device", "mi8pro", "--network", "mobilenet_v3",
            "--runs", "80", "--seed", "0", "--save", save_dir,
        )
        assert code == 0
        assert "greedy decision" in text
        assert "saved" in text

        code, text = run_cli(
            "predict", "--load", save_dir, "--device", "mi8pro",
            "--network", "mobilenet_v3", "--scenario", "S4",
        )
        assert code == 0
        assert "decision" in text
        assert "mJ" in text

    def test_train_without_save(self):
        code, text = run_cli("train", "--runs", "30", "--seed", "1")
        assert code == 0
        assert "saved" not in text


class TestExperimentCommand:
    def test_fig3_prints_table(self):
        code, text = run_cli("experiment", "fig3")
        assert code == 0
        assert "Fig. 3" in text

    def test_fig5_prints_table(self):
        code, text = run_cli("experiment", "fig5")
        assert code == 0
        assert "interference" in text


class TestOverloadCommand:
    def test_surge_table_smoke(self):
        code, text = run_cli(
            "overload", "--profile", "surge", "--policy", "shed_brownout",
            "--duration-ms", "3000", "--warmup", "60",
        )
        assert code == 0
        assert "shed%" in text
        assert "shed_brownout" in text

    def test_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["overload", "--policy", "yolo"])


class TestDriftCommand:
    def test_drift_table_smoke(self):
        code, text = run_cli(
            "drift", "--scenario", "stationary",
            "--duration-ms", "5000", "--drift-at-ms", "2000",
            "--warmup", "60",
        )
        assert code == 0
        assert "post-drift viol" in text
        assert "stationary" in text

    def test_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["drift", "--scenario",
                                       "meteor_strike"])


class TestAnalysisExperiments:
    def test_pareto_prints_frontier(self):
        code, text = run_cli("experiment", "pareto")
        assert code == 0
        assert "Pareto frontier" in text

    def test_calibration_all_pass(self):
        code, text = run_cli("experiment", "calibration")
        assert code == 0
        assert "FAIL" not in text
