"""Property-based tests (hypothesis) on core data structures/invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.convergence import episodes_to_converge
from repro.core.discretize import cluster_edges, dbscan
from repro.core.qlearning import QLearningConfig, QTable
from repro.core.state import table_i_state_space
from repro.env.observation import Observation
from repro.env.target import ExecutionTarget, Location
from repro.hardware.dvfs import build_vf_table
from repro.models.layers import LayerType, make_layer
from repro.models.quantization import Precision
from repro.wireless.profiles import default_wifi

# ---------------------------------------------------------------------------
# State space
# ---------------------------------------------------------------------------

_SPACE = table_i_state_space()

observations = st.builds(
    Observation,
    cpu_util=st.floats(0.0, 1.0, allow_nan=False),
    mem_util=st.floats(0.0, 1.0, allow_nan=False),
    rssi_wlan_dbm=st.floats(-100.0, -30.0, allow_nan=False),
    rssi_p2p_dbm=st.floats(-100.0, -30.0, allow_nan=False),
)


class _FakeNetwork:
    def __init__(self, conv, fc, rc, mega):
        self.num_conv = conv
        self.num_fc = fc
        self.num_rc = rc
        self.mega_macs = mega


networks = st.builds(
    _FakeNetwork,
    conv=st.integers(0, 200),
    fc=st.integers(0, 40),
    rc=st.integers(0, 40),
    mega=st.floats(1.0, 10_000.0, allow_nan=False),
)


@given(network=networks, observation=observations)
def test_state_encode_always_in_range(network, observation):
    index = _SPACE.encode(network, observation)
    assert 0 <= index < _SPACE.size


@given(network=networks, observation=observations)
def test_state_encode_deterministic(network, observation):
    assert (_SPACE.encode(network, observation)
            == _SPACE.encode(network, observation))


@given(observation=observations)
def test_rssi_state_matches_table_i_threshold(observation):
    labels = _SPACE.describe(_FakeNetwork(10, 1, 0, 100.0), observation)
    expected = "weak" if observation.rssi_wlan_dbm <= -80.0 else "regular"
    assert labels["s_rssi_w"] == expected


# ---------------------------------------------------------------------------
# Q-table
# ---------------------------------------------------------------------------

@given(
    rewards=st.lists(st.floats(-100.0, 0.0, allow_nan=False), min_size=1,
                     max_size=50),
    state=st.integers(0, 9),
    action=st.integers(0, 4),
)
@settings(max_examples=50)
def test_q_values_bounded_by_reward_range(rewards, state, action):
    """With rewards in [lo, 0] and init in [-1, 0], Q values never
    escape [lo/(1-mu) - 1, 0]-ish bounds (contraction property)."""
    table = QTable(10, 5, config=QLearningConfig(), seed=0)
    for reward in rewards:
        table.update(state, action, reward, (state + 1) % 10)
    mu = table.config.discount
    lower = min(-1.0, min(rewards)) / (1.0 - mu) - 1.0
    assert lower <= table.value(state, action) <= 0.5


@given(st.integers(1, 40), st.integers(1, 40))
def test_qtable_visits_match_updates(num_updates, seed):
    table = QTable(4, 4, seed=seed)
    rng = np.random.default_rng(seed)
    for _ in range(num_updates):
        table.update(int(rng.integers(4)), int(rng.integers(4)), -1.0, 0)
    assert int(table.visits.sum()) == num_updates == table.update_count


@given(st.floats(-50.0, -0.01, allow_nan=False))
def test_repeated_reward_converges_to_fixed_point(reward):
    """Q(s,a) for a self-loop converges to R / (1 - mu) when (s,a) is
    also the best action of the next state."""
    table = QTable(1, 1, seed=0)
    for _ in range(200):
        table.update(0, 0, reward, 0)
    mu = table.config.discount
    assert table.value(0, 0) == np.float32(
        table.value(0, 0)
    )  # dtype stable
    assert abs(table.value(0, 0) - reward / (1 - mu)) < abs(reward) * 0.02


# ---------------------------------------------------------------------------
# Wireless link
# ---------------------------------------------------------------------------

@given(st.floats(-100.0, -30.0, allow_nan=False),
       st.floats(-100.0, -30.0, allow_nan=False))
def test_rate_monotone_in_rssi(a, b):
    link = default_wifi()
    lo, hi = min(a, b), max(a, b)
    assert link.data_rate_mbps(lo) <= link.data_rate_mbps(hi) + 1e-9


@given(st.floats(-100.0, -30.0, allow_nan=False),
       st.floats(0.0, 1e7, allow_nan=False))
def test_transfer_time_non_negative_and_monotone_in_bytes(rssi, size):
    link = default_wifi()
    t = link.transfer_ms(size, rssi)
    assert t >= 0.0
    assert link.transfer_ms(size * 2, rssi) >= t


@given(st.floats(-100.0, -30.0, allow_nan=False))
def test_tx_power_bounded(rssi):
    link = default_wifi()
    assert (link.tx_power_min_mw - 1e-9 <= link.tx_power_mw(rssi)
            <= link.tx_power_max_mw + 1e-9)


# ---------------------------------------------------------------------------
# Processor latency model
# ---------------------------------------------------------------------------

from repro.hardware.processor import Processor, ProcessorKind  # noqa: E402

_CPU = Processor(
    name="prop_cpu", kind=ProcessorKind.CPU,
    vf_table=build_vf_table(8, 2000), peak_gmacs=10.0,
    precisions={Precision.FP32: 1.0, Precision.INT8: 2.0},
    busy_power_mw=4000.0, idle_power_mw=300.0,
)


@given(st.floats(1e3, 1e10, allow_nan=False), st.integers(0, 7))
def test_latency_positive_and_monotone_in_vf(macs, vf):
    layer = make_layer(LayerType.CONV, "c", macs=macs)
    latency = _CPU.layer_latency_ms(layer, Precision.FP32, vf)
    assert latency > 0
    top = _CPU.layer_latency_ms(layer, Precision.FP32, -1)
    assert latency >= top - 1e-12


@given(st.integers(0, 7))
def test_busy_power_monotone_in_vf(vf):
    if vf < 7:
        assert _CPU.busy_power_at(vf) <= _CPU.busy_power_at(vf + 1) + 1e-9


# ---------------------------------------------------------------------------
# DBSCAN
# ---------------------------------------------------------------------------

@given(st.lists(st.floats(-100.0, 100.0, allow_nan=False), min_size=5,
                max_size=60))
@settings(max_examples=40)
def test_dbscan_labels_partition_points(points):
    labels = dbscan(points, eps=5.0, min_samples=3)
    assert len(labels) == len(points)
    assert labels.min() >= -1


@given(st.lists(st.floats(0.0, 100.0, allow_nan=False), min_size=5,
                max_size=60))
@settings(max_examples=40)
def test_cluster_edges_sorted_and_between_extremes(points):
    values = np.asarray(points)
    labels = dbscan(values, eps=3.0, min_samples=3)
    edges = cluster_edges(values, labels)
    assert list(edges) == sorted(edges)
    if edges:
        assert values.min() <= edges[0] and edges[-1] <= values.max()


# ---------------------------------------------------------------------------
# Convergence
# ---------------------------------------------------------------------------

@given(st.floats(-100.0, -0.1, allow_nan=False), st.integers(20, 60))
def test_constant_rewards_always_converge(value, length):
    assert episodes_to_converge([value] * length) < length


# ---------------------------------------------------------------------------
# Execution targets
# ---------------------------------------------------------------------------

@given(st.sampled_from(["cpu", "gpu", "dsp"]),
       st.sampled_from(list(Precision)), st.integers(0, 30))
def test_local_target_key_roundtrips_fields(role, precision, vf):
    target = ExecutionTarget(Location.LOCAL, role, precision, vf)
    assert target.key == f"local/{role}/{precision.label}/vf{vf}"


# ---------------------------------------------------------------------------
# Reward (eq. 5)
# ---------------------------------------------------------------------------

from repro.core.reward import RewardConfig, compute_reward  # noqa: E402
from repro.env.qos import UseCase  # noqa: E402
from repro.env.result import ExecutionResult  # noqa: E402
from repro.models.zoo import build_network  # noqa: E402

_NET = build_network("mobilenet_v3")


def _reward(latency, energy, accuracy=70.0, qos=50.0, target=None,
            config=RewardConfig()):
    result = ExecutionResult(
        latency_ms=latency, energy_mj=energy, estimated_energy_mj=energy,
        accuracy_pct=accuracy, target_key="x",
    )
    case = UseCase("p", _NET, qos_ms=qos, accuracy_target=target)
    return compute_reward(result, case, config)


@given(st.floats(1.0, 5000.0, allow_nan=False),
       st.floats(1.0, 5000.0, allow_nan=False),
       st.floats(0.1, 500.0, allow_nan=False))
def test_reward_monotone_decreasing_in_energy(e1, e2, latency):
    lo, hi = sorted((e1, e2))
    assert _reward(latency, lo) >= _reward(latency, hi)


@given(st.floats(0.1, 49.9, allow_nan=False),
       st.floats(1.0, 5000.0, allow_nan=False))
def test_reward_in_qos_beats_same_point_out_of_qos(latency, energy):
    inside = _reward(latency, energy, qos=50.0)
    outside = _reward(latency + 50.0, energy, qos=50.0)
    assert inside > outside


@given(st.floats(0.0, 69.9, allow_nan=False))
def test_reward_accuracy_failure_below_any_success(failing_accuracy):
    failing = _reward(10.0, 50.0, accuracy=failing_accuracy, target=70.0)
    succeeding = _reward(10.0, 4000.0, accuracy=70.0, target=70.0)
    assert failing < succeeding


@given(st.floats(1.0, 5000.0, allow_nan=False),
       st.floats(0.1, 500.0, allow_nan=False),
       st.floats(10.0, 100.0, allow_nan=False))
def test_normalized_and_raw_rewards_agree_on_ordering(energy, latency,
                                                      accuracy):
    """The normalized mode is the raw mode scaled by a constant (plus the
    same accuracy term), so pairwise orderings must agree."""
    other_energy = energy * 1.5
    normalized = RewardConfig(normalize=True)
    raw = RewardConfig(normalize=False)
    n1 = _reward(latency, energy, accuracy, config=normalized)
    n2 = _reward(latency, other_energy, accuracy, config=normalized)
    r1 = _reward(latency, energy, accuracy, config=raw)
    r2 = _reward(latency, other_energy, accuracy, config=raw)
    assert (n1 > n2) == (r1 > r2)


# ---------------------------------------------------------------------------
# Transfer mapping
# ---------------------------------------------------------------------------

from repro.core.action import ActionSpace  # noqa: E402
from repro.core.transfer import map_actions  # noqa: E402
from repro.env.environment import EdgeCloudEnvironment  # noqa: E402
from repro.hardware.devices import build_device  # noqa: E402

_SPACES = {
    name: ActionSpace.from_environment(
        EdgeCloudEnvironment(build_device(name), seed=0)
    )
    for name in ("mi8pro", "galaxy_s10e", "moto_x_force")
}


@given(st.sampled_from(sorted(_SPACES)), st.sampled_from(sorted(_SPACES)))
def test_transfer_mapping_preserves_slots(source_name, target_name):
    source, target = _SPACES[source_name], _SPACES[target_name]
    mapping = map_actions(source, target)
    for target_index, source_index in enumerate(mapping):
        if source_index is None:
            continue
        a = target.target(target_index)
        b = source.target(source_index)
        assert (a.location, a.role, a.precision) \
            == (b.location, b.role, b.precision)


@given(st.sampled_from(sorted(_SPACES)))
def test_transfer_mapping_identity_on_self(name):
    space = _SPACES[name]
    assert map_actions(space, space) == list(range(len(space)))


# ---------------------------------------------------------------------------
# Zoo invariants
# ---------------------------------------------------------------------------

from repro.models.zoo import NETWORK_NAMES, TABLE_III  # noqa: E402

_ZOO = {name: build_network(name) for name in NETWORK_NAMES}


@given(st.sampled_from(sorted(NETWORK_NAMES)))
def test_zoo_composition_always_matches_table_iii(name):
    assert _ZOO[name].composition.as_tuple() == TABLE_III[name]


@given(st.sampled_from(sorted(NETWORK_NAMES)),
       st.integers(0, 200))
def test_zoo_transfer_bytes_defined_at_every_split(name, raw_point):
    network = _ZOO[name]
    point = raw_point % (len(network.layers) + 1)
    wire = network.transfer_bytes_at(point)
    assert wire >= 0.0
    if point == len(network.layers):
        assert wire == 0.0


@given(st.sampled_from(sorted(NETWORK_NAMES)))
def test_zoo_total_macs_is_sum_of_layers(name):
    network = _ZOO[name]
    assert network.total_macs == pytest.approx(
        sum(l.macs for l in network.layers)
    )


import pytest  # noqa: E402
