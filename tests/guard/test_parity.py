"""Guard parity pins (acceptance): the disabled guard changes nothing.

Two layers of the guarantee:

- ``GuardConfig.disabled()`` (the system default) is structurally
  inert: zero ticks, empty reason column, no engine mutation — the
  serving byte-stream matches a guard-free service exactly.
- An *enabled* guard that never leaves HEALTHY is a pure observer: the
  full trace (decisions, measurements, timestamps) is bit-identical to
  the disabled run, because the detectors consume only values the
  serving path already computed and draw no RNG.
"""

from dataclasses import asdict

from repro.core.service import AutoScaleService
from repro.core.tracing import TraceRecorder
from repro.env.environment import EdgeCloudEnvironment
from repro.env.qos import UseCase
from repro.guard import GuardConfig, GuardStage, PolicyGuard
from repro.hardware.devices import build_device
from repro.models.zoo import build_network
from repro.serving.arrivals import Arrival
from repro.serving.pipeline import ServingConfig, ServingPipeline

_ARRIVALS = tuple(Arrival(at_ms=200.0 * i, name="svc") for i in range(40))


def _episode(guard):
    """One fixed-seed serving episode; returns (records, status).

    The warmed resnet-50/qos-200 workload serves cleanly under S1 (the
    learned cloud decision is fast and cheap), so an enabled guard has
    nothing to alarm on — which is the point of the parity pins.
    """
    env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                               seed=7, think_time_ms=0.0)
    service = AutoScaleService(env, seed=7, guard=guard)
    use_case = UseCase(name="svc", network=build_network("resnet_50"),
                       qos_ms=200.0, accuracy_target=70.0)
    service.register(use_case)
    for _ in range(400):
        service.handle("svc")
    service.trace = TraceRecorder(max_records=service.trace_limit)
    env.rewind_clock()
    pipeline = ServingPipeline(service, ServingConfig())
    pipeline.serve(list(_ARRIVALS))
    records = [asdict(record) for record in service.trace.records]
    return records, pipeline.status()


class TestDisabledGuardParity:
    def test_default_service_guard_is_disabled(self):
        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   seed=0)
        assert not AutoScaleService(env).guard.enabled

    def test_disabled_equals_no_guard_bit_for_bit(self):
        baseline, baseline_status = _episode(guard=None)
        explicit, explicit_status = _episode(
            guard=PolicyGuard(GuardConfig.disabled()))
        assert explicit == baseline
        assert explicit_status["guard"]["ticks"] == 0
        assert baseline_status["guard"]["ticks"] == 0

    def test_disabled_reason_column_stays_empty(self):
        records, _ = _episode(guard=None)
        assert all(record["reason"] == "" for record in records)


class TestHealthyGuardIsPureObserver:
    def test_stationary_traces_bit_identical(self):
        baseline, _ = _episode(guard=None)
        observed, status = _episode(guard=PolicyGuard(GuardConfig()))
        assert status["guard"]["stage"] == "healthy"
        assert status["guard"]["alarms"] == {}
        assert status["guard"]["ticks"] > 0
        assert observed == baseline

    def test_status_surfaces_all_health_ledgers(self):
        _, status = _episode(guard=PolicyGuard(GuardConfig()))
        assert "sheds" in status
        assert "faults" in status
        assert "guard" in status
        assert "brownout_tier" in status


class TestActiveGuardAnnotations:
    def test_shadow_stage_stamps_reason_and_overrides_decisions(self):
        # recover_ticks is huge so quiet stationary ticks cannot
        # de-escalate the hand-armed stage mid-episode.
        guard = PolicyGuard(GuardConfig(recover_ticks=1_000))
        guard.stage = GuardStage.SHADOW
        records, status = _episode(guard=guard)
        served = [r for r in records if r["status"] == "ok"]
        assert served
        assert all(r["reason"] == "guard/shadow" for r in served)
        assert status["guard"]["stage"] == "shadow"

    def test_degrade_stage_serves_local_only(self):
        guard = PolicyGuard(GuardConfig(recover_ticks=1_000))
        guard.stage = GuardStage.DEGRADE
        records, _ = _episode(guard=guard)
        served = [r for r in records if r["status"] == "ok"]
        assert served
        assert all(r["reason"] == "guard/degrade" for r in served)
        assert all(not r["target_key"].startswith("cloud/")
                   for r in served)
