"""Detector unit + seeded property tests (ISSUE 9, satellite 4).

The two headline properties:

- **Zero false alarms** across 1 000 stationary seeds: Gaussian
  residuals with no shift never trip the CUSUM, and stationary Q-update
  magnitudes never trip the surge detector.
- **Bounded detection**: after an injected step change of ``delta``
  standard deviations, the CUSUM is guaranteed to alarm within
  ``ceil(h_sigma / (delta - k_sigma))`` post-change samples.
"""

import math

import pytest

from repro.common import ConfigError, make_rng
from repro.guard import QSurgeDetector, ResidualDetector, StreakDetector


class TestResidualConfig:
    def test_rejects_tiny_warmup(self):
        with pytest.raises(ConfigError, match="warmup"):
            ResidualDetector(warmup=4)

    def test_rejects_non_positive_thresholds(self):
        with pytest.raises(ConfigError):
            ResidualDetector(k_sigma=0.0)
        with pytest.raises(ConfigError):
            ResidualDetector(h_sigma=-1.0)

    def test_rejects_non_int_warmup(self):
        with pytest.raises(ConfigError):
            ResidualDetector(warmup=40.0)


class TestResidualDetector:
    def test_silent_during_warmup(self):
        detector = ResidualDetector(warmup=10)
        for value in range(10):
            detector.note("b", float(value))
        assert detector.alarms == 0
        assert detector.drain() == []

    def test_step_change_alarms(self):
        detector = ResidualDetector(warmup=20, k_sigma=0.5, h_sigma=8.0)
        rng = make_rng(7)
        for _ in range(20):
            detector.note("b", float(rng.normal(0.0, 0.05)))
        for _ in range(40):
            detector.note("b", 1.0)  # energy suddenly 2x the nominal
        assert detector.alarms >= 1
        assert detector.drain() == ["residual_cusum"] * detector.alarms

    def test_buckets_are_independent(self):
        detector = ResidualDetector(warmup=10, h_sigma=6.0)
        rng = make_rng(11)
        for _ in range(10):
            detector.note("calm", float(rng.normal(0.0, 0.1)))
            detector.note("shifting", float(rng.normal(0.0, 0.1)))
        for _ in range(30):
            detector.note("calm", float(rng.normal(0.0, 0.1)))
            detector.note("shifting", 2.0)
        assert detector.alarms >= 1
        calm = detector.state_dict()["buckets"]["calm"]
        assert calm["pos"] < detector.h_sigma

    def test_non_finite_residuals_ignored(self):
        detector = ResidualDetector(warmup=10)
        detector.note("b", float("nan"))
        detector.note("b", float("inf"))
        assert detector.state_dict()["buckets"] == {}

    def test_reset_transients_keeps_baseline(self):
        detector = ResidualDetector(warmup=10)
        rng = make_rng(3)
        for _ in range(15):
            detector.note("b", float(rng.normal(0.0, 0.1)))
        before = detector.state_dict()["buckets"]["b"]
        detector.reset_transients()
        after = detector.state_dict()["buckets"]["b"]
        assert after["pos"] == 0.0 and after["neg"] == 0.0
        assert after["mu"] == before["mu"]
        assert after["m2"] == before["m2"]

    def test_state_round_trip(self):
        detector = ResidualDetector(warmup=10)
        rng = make_rng(5)
        for _ in range(25):
            detector.note("b", float(rng.normal(0.0, 0.2)))
        clone = ResidualDetector(warmup=10)
        clone.load_state_dict(detector.state_dict())
        assert clone.state_dict() == detector.state_dict()

    def test_corrupt_state_rejected(self):
        detector = ResidualDetector()
        with pytest.raises(ConfigError, match="residual"):
            detector.load_state_dict({"alarms": 0})


class TestStreakDetector:
    def test_alarm_at_limit_and_rearm(self):
        detector = StreakDetector(limit=3)
        for _ in range(6):
            detector.note(False)
        assert detector.alarms == 2
        assert detector.drain() == ["qos_streak", "qos_streak"]

    def test_success_resets(self):
        detector = StreakDetector(limit=3)
        for _ in range(2):
            detector.note(False)
        detector.note(True)
        detector.note(False)
        assert detector.alarms == 0

    def test_state_round_trip(self):
        detector = StreakDetector(limit=5)
        for _ in range(7):
            detector.note(False)
        clone = StreakDetector(limit=5)
        clone.load_state_dict(detector.state_dict())
        assert clone.state_dict() == detector.state_dict()

    def test_corrupt_state_rejected(self):
        with pytest.raises(ConfigError, match="streak"):
            StreakDetector().load_state_dict({"streak": "many"})


class TestQSurgeDetector:
    def test_rejects_factor_at_most_one(self):
        with pytest.raises(ConfigError, match="factor"):
            QSurgeDetector(factor=1.0)

    def test_sustained_surge_alarms(self):
        detector = QSurgeDetector(warmup=20, factor=4.0, sustain=5)
        rng = make_rng(9)
        for _ in range(20):
            detector.note(float(rng.normal(0.0, 1.0)))
        for _ in range(30):
            detector.note(50.0)
        assert detector.alarms >= 1
        assert set(detector.drain()) <= {"q_surge"}

    def test_brief_spike_does_not_alarm(self):
        detector = QSurgeDetector(warmup=20, factor=4.0, sustain=10)
        rng = make_rng(13)
        for _ in range(20):
            detector.note(float(rng.normal(0.0, 1.0)))
        detector.note(20.0)
        for _ in range(40):
            detector.note(float(rng.normal(0.0, 1.0)))
        assert detector.alarms == 0

    def test_state_round_trip(self):
        detector = QSurgeDetector(warmup=10)
        rng = make_rng(17)
        for _ in range(25):
            detector.note(float(rng.normal(0.0, 1.0)))
        clone = QSurgeDetector(warmup=10)
        clone.load_state_dict(detector.state_dict())
        assert clone.state_dict() == detector.state_dict()

    def test_corrupt_state_rejected(self):
        with pytest.raises(ConfigError, match="q-surge"):
            QSurgeDetector().load_state_dict({"count": 1})


class TestSeededProperties:
    """The satellite-4 guarantees, pinned over seeded ensembles."""

    def test_zero_false_alarms_across_1k_stationary_seeds(self):
        for seed in range(1_000):
            rng = make_rng(seed)
            detector = ResidualDetector(warmup=40)
            for _ in range(200):
                detector.note("b", float(rng.normal(0.0, 1.0)))
            assert detector.alarms == 0, f"false alarm at seed {seed}"

    def test_zero_false_surges_across_1k_stationary_seeds(self):
        for seed in range(1_000):
            rng = make_rng(seed)
            detector = QSurgeDetector(warmup=60)
            for _ in range(200):
                detector.note(float(rng.normal(0.0, 1.0)))
            assert detector.alarms == 0, f"false surge at seed {seed}"

    @pytest.mark.parametrize("delta", [3.0, 5.0, 8.0])
    def test_step_change_detected_within_bound(self, delta):
        """A step of ``delta`` estimated sigmas must alarm within
        ``ceil(h / (delta - k))`` post-change samples, for every seed."""
        for seed in range(50):
            rng = make_rng(seed)
            detector = ResidualDetector(warmup=40, k_sigma=0.5,
                                        h_sigma=12.0)
            for _ in range(40):
                detector.note("b", float(rng.normal(0.0, 1.0)))
            bucket = detector.state_dict()["buckets"]["b"]
            sigma = max(math.sqrt(bucket["m2"] / (detector.warmup - 1)),
                        detector.min_sigma)
            shifted = bucket["mu"] + delta * sigma
            bound = math.ceil(detector.h_sigma
                              / (delta - detector.k_sigma))
            for sample in range(1, bound + 1):
                detector.note("b", shifted)
                if detector.alarms:
                    break
            assert detector.alarms >= 1, (
                f"seed {seed}: no alarm within {bound} samples at "
                f"delta={delta}"
            )
            assert sample <= bound
