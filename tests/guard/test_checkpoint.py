"""Guard persistence: crash-safe checkpoint round trips (satellite 3)."""

import json

import pytest

from repro.common import ConfigError
from repro.core.persistence import load_guard, save_guard
from repro.core.service import AutoScaleService
from repro.env.environment import EdgeCloudEnvironment
from repro.env.qos import use_case_for
from repro.guard import GuardConfig, GuardStage, PolicyGuard
from repro.hardware.devices import build_device
from repro.models.zoo import build_network


def _fast_config():
    return GuardConfig(qos_streak_limit=3, escalate_ticks=1,
                       recover_ticks=2, residual_warmup=8,
                       qsurge_warmup=8, qsurge_sustain=2)


def _armed_guard():
    """A guard escalated to SHADOW with detector state in flight."""
    guard = PolicyGuard(_fast_config())
    for _ in range(12):
        guard.note_result("inception_v1|7", 100.0, 101.0, qos_ok=True)
    for tick in range(2):
        for _ in range(guard.config.qos_streak_limit):
            guard.note_refusal()
        guard.evaluate(now_ms=1_000.0 * (tick + 1))
    guard.note_refusal()  # partial streak: dwell state mid-flight
    assert guard.stage is GuardStage.SHADOW
    return guard


class TestSaveLoadGuard:
    def test_round_trip_is_exact(self, tmp_path):
        guard = _armed_guard()
        save_guard(guard, tmp_path)
        restored = load_guard(tmp_path)
        assert restored.config == guard.config
        assert restored.stage is GuardStage.SHADOW
        assert restored.state_dict() == guard.state_dict()

    def test_missing_blob_returns_none(self, tmp_path):
        assert load_guard(tmp_path) is None

    def test_garbage_json_rejected(self, tmp_path):
        save_guard(_armed_guard(), tmp_path)
        (tmp_path / "guard.json").write_text("{not json")
        with pytest.raises(ConfigError, match="corrupt guard"):
            load_guard(tmp_path)

    def test_tampered_state_fails_digest(self, tmp_path):
        save_guard(_armed_guard(), tmp_path)
        path = tmp_path / "guard.json"
        blob = json.loads(path.read_text())
        blob["state"]["escalations"] = 99
        path.write_text(json.dumps(blob))
        with pytest.raises(ConfigError, match="sha256"):
            load_guard(tmp_path)

    def test_unsupported_format_rejected(self, tmp_path):
        save_guard(_armed_guard(), tmp_path)
        path = tmp_path / "guard.json"
        blob = json.loads(path.read_text())
        blob["format_version"] = 99
        path.write_text(json.dumps(blob))
        with pytest.raises(ConfigError, match="format"):
            load_guard(tmp_path)


class TestServiceCheckpoint:
    @pytest.fixture()
    def env(self):
        return EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                    seed=42)

    def test_armed_guard_survives_restart(self, tmp_path, env):
        service = AutoScaleService(env, seed=42, guard=_armed_guard())
        use_case = use_case_for(build_network("mobilenet_v3"))
        service.register(use_case)
        for _ in range(5):
            service.handle(use_case.name)
        service.checkpoint(tmp_path)
        restored = AutoScaleService.restore(
            tmp_path,
            EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                 seed=42),
        )
        assert restored.guard.stage is GuardStage.SHADOW
        assert restored.guard.state_dict() \
            == service.guard.state_dict()

    def test_disabled_guard_writes_no_blob(self, tmp_path, env):
        service = AutoScaleService(env, seed=42)
        use_case = use_case_for(build_network("mobilenet_v3"))
        service.register(use_case)
        service.handle(use_case.name)
        service.checkpoint(tmp_path)
        assert not (tmp_path / "guard.json").exists()
        restored = AutoScaleService.restore(
            tmp_path,
            EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                 seed=42),
        )
        assert not restored.guard.enabled

    def test_explicit_guard_overrides_blob(self, tmp_path, env):
        service = AutoScaleService(env, seed=42, guard=_armed_guard())
        use_case = use_case_for(build_network("mobilenet_v3"))
        service.register(use_case)
        service.handle(use_case.name)
        service.checkpoint(tmp_path)
        override = PolicyGuard(GuardConfig.disabled())
        restored = AutoScaleService.restore(
            tmp_path,
            EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                 seed=42),
            guard=override,
        )
        assert restored.guard is override
