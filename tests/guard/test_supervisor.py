"""PolicyGuard state-machine tests: ladder, hysteresis, reasons."""

import pytest

from repro.common import ConfigError
from repro.guard import GuardConfig, GuardStage, PolicyGuard


def _config(**overrides):
    """A fast-moving test config: low limits, short dwells."""
    base = dict(qos_streak_limit=3, escalate_ticks=1, recover_ticks=2,
                residual_warmup=8, qsurge_warmup=8, qsurge_sustain=2)
    base.update(overrides)
    return GuardConfig(**base)


def _streak_alarm(guard):
    """Feed one full bad-outcome streak (one pending streak alarm)."""
    for _ in range(guard.config.qos_streak_limit):
        guard.note_refusal()


class TestGuardConfig:
    def test_defaults_are_enabled(self):
        assert GuardConfig().enabled

    def test_disabled_is_inert_flag(self):
        assert not GuardConfig.disabled().enabled

    def test_rejects_bad_tick_interval(self):
        with pytest.raises(ConfigError, match="tick_interval_ms"):
            GuardConfig(tick_interval_ms=0.0)

    def test_rejects_non_int_dwells(self):
        with pytest.raises(ConfigError, match="escalate_ticks"):
            GuardConfig(escalate_ticks=0)
        with pytest.raises(ConfigError, match="recover_ticks"):
            GuardConfig(recover_ticks=1.5)

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ConfigError, match="readapt_epsilon"):
            GuardConfig(readapt_epsilon=1.5)

    def test_as_dict_round_trips(self):
        config = _config()
        assert GuardConfig(**config.as_dict()) == config


class TestStageLadder:
    def test_depth_ordering(self):
        depths = [stage.depth for stage in (
            GuardStage.HEALTHY, GuardStage.READAPT, GuardStage.SHADOW,
            GuardStage.DEGRADE)]
        assert depths == [0, 1, 2, 3]

    def test_escalates_one_rung_per_alarmed_tick(self):
        guard = PolicyGuard(_config())
        expected = [GuardStage.READAPT, GuardStage.SHADOW,
                    GuardStage.DEGRADE]
        for stage in expected:
            _streak_alarm(guard)
            transitions = guard.evaluate(now_ms=1_000.0 * guard.ticks)
            assert len(transitions) == 1
            assert guard.stage is stage
        assert guard.escalations == 3

    def test_degrade_is_terminal_rung(self):
        guard = PolicyGuard(_config())
        for _ in range(5):
            _streak_alarm(guard)
            guard.evaluate(now_ms=0.0)
        assert guard.stage is GuardStage.DEGRADE
        assert guard.escalations == 3

    def test_escalation_dwell(self):
        guard = PolicyGuard(_config(escalate_ticks=2))
        _streak_alarm(guard)
        assert guard.evaluate(now_ms=0.0) == []
        assert guard.stage is GuardStage.HEALTHY
        _streak_alarm(guard)
        assert len(guard.evaluate(now_ms=1_000.0)) == 1
        assert guard.stage is GuardStage.READAPT

    def test_quiet_tick_resets_escalation_dwell(self):
        guard = PolicyGuard(_config(escalate_ticks=2))
        _streak_alarm(guard)
        guard.evaluate(now_ms=0.0)
        guard.evaluate(now_ms=1_000.0)  # quiet: dwell resets
        _streak_alarm(guard)
        assert guard.evaluate(now_ms=2_000.0) == []
        assert guard.stage is GuardStage.HEALTHY

    def test_recovery_descends_one_rung_per_dwell(self):
        guard = PolicyGuard(_config())
        for _ in range(2):
            _streak_alarm(guard)
            guard.evaluate(now_ms=0.0)
        assert guard.stage is GuardStage.SHADOW
        quiet = 0
        stages = []
        while guard.stage is not GuardStage.HEALTHY:
            quiet += 1
            if guard.evaluate(now_ms=1_000.0 * quiet):
                stages.append(guard.stage)
        assert stages == [GuardStage.READAPT, GuardStage.HEALTHY]
        assert guard.deescalations == 2
        # recover_ticks=2 quiet ticks per rung down
        assert quiet == 4

    def test_alarm_resets_recovery_dwell(self):
        guard = PolicyGuard(_config(recover_ticks=2))
        _streak_alarm(guard)
        guard.evaluate(now_ms=0.0)
        assert guard.stage is GuardStage.READAPT
        guard.evaluate(now_ms=1_000.0)  # quiet 1 of 2
        _streak_alarm(guard)
        guard.evaluate(now_ms=2_000.0)  # alarmed: escalates again
        assert guard.stage is GuardStage.SHADOW
        guard.evaluate(now_ms=3_000.0)  # quiet 1 of 2 (reset)
        transitions = guard.evaluate(now_ms=4_000.0)
        assert [t.reason for t in transitions] == ["recovered"]
        assert guard.stage is GuardStage.READAPT


class TestReasonsAndStatus:
    def test_escalation_reason_joins_sorted_detectors(self):
        guard = PolicyGuard(_config())
        _streak_alarm(guard)
        # And a Q surge pending in the same tick.
        for _ in range(guard.config.qsurge_warmup):
            guard.note_q_delta(0.001, 1.0)
        for _ in range(guard.config.qsurge_sustain + 5):
            guard.note_q_delta(10.0, 1.0)
        (transition,) = guard.evaluate(now_ms=0.0)
        assert transition.reason == "q_surge+qos_streak"
        assert transition.from_stage == "healthy"
        assert transition.to_stage == "readapt"

    def test_transitions_carry_times(self):
        guard = PolicyGuard(_config())
        _streak_alarm(guard)
        guard.evaluate(now_ms=2_500.0)
        assert guard.transitions[0].at_ms == 2500.0

    def test_annotation_tracks_stage(self):
        guard = PolicyGuard(_config())
        assert guard.annotation() == ""
        _streak_alarm(guard)
        guard.evaluate(now_ms=0.0)
        assert guard.annotation() == "guard/readapt"

    def test_status_counters(self):
        guard = PolicyGuard(_config())
        _streak_alarm(guard)
        guard.evaluate(now_ms=0.0)
        status = guard.status()
        assert status["enabled"]
        assert status["stage"] == "readapt"
        assert status["ticks"] == 1
        assert status["escalations"] == 1
        assert status["alarms"] == {"qos_streak": 1}
        assert status["transitions"] == 1


class TestDisabledGuard:
    def test_feeds_and_evaluate_are_noops(self):
        guard = PolicyGuard(GuardConfig.disabled())
        guard.note_refusal()
        guard.note_result("b", 10.0, 20.0, qos_ok=False)
        guard.note_qos(False)
        guard.note_q_delta(100.0, 0.9)
        assert guard.evaluate(now_ms=0.0) == []
        assert guard.ticks == 0
        assert not guard.active
        assert guard.status()["alarms"] == {}


class TestStatePersistence:
    def test_round_trip_preserves_everything(self):
        guard = PolicyGuard(_config())
        for _ in range(2):
            _streak_alarm(guard)
            guard.evaluate(now_ms=1_000.0 * guard.ticks)
        guard.note_refusal()  # a partial streak in flight
        clone = PolicyGuard(_config())
        clone.load_state_dict(guard.state_dict())
        assert clone.state_dict() == guard.state_dict()
        assert clone.stage is GuardStage.SHADOW

    def test_corrupt_state_rejected(self):
        guard = PolicyGuard(_config())
        state = guard.state_dict()
        state.pop("stage")
        with pytest.raises(ConfigError, match="corrupt guard state"):
            PolicyGuard(_config()).load_state_dict(state)

    def test_unknown_stage_rejected(self):
        guard = PolicyGuard(_config())
        state = guard.state_dict()
        state["stage"] = "panicking"
        with pytest.raises(ConfigError):
            PolicyGuard(_config()).load_state_dict(state)
