"""Tests for the per-layer profiler."""

import pytest

from repro.common import ConfigError
from repro.models.layers import LayerType
from repro.models.profiler import profile_network
from repro.models.quantization import Precision


@pytest.fixture()
def cpu(mi8pro_device):
    return mi8pro_device.soc.cpu


@pytest.fixture()
def gpu(mi8pro_device):
    return mi8pro_device.soc.processor("gpu")


class TestProfileNetwork:
    def test_totals_match_processor_model(self, cpu, zoo):
        network = zoo["inception_v1"]
        profile = profile_network(cpu, network, Precision.FP32)
        assert profile.total_latency_ms == pytest.approx(
            cpu.network_latency_ms(network, Precision.FP32)
        )

    def test_cumulative_monotone(self, cpu, zoo):
        profile = profile_network(cpu, zoo["mobilenet_v3"],
                                  Precision.FP32)
        cumulative = [l.cumulative_ms for l in profile.layers]
        assert cumulative == sorted(cumulative)
        assert cumulative[-1] == pytest.approx(profile.total_latency_ms)

    def test_energy_uses_busy_power(self, cpu, zoo):
        profile = profile_network(cpu, zoo["mobilenet_v3"],
                                  Precision.FP32, vf_index=-1)
        expected = cpu.busy_power_at(-1) * profile.total_latency_ms / 1000
        assert profile.total_energy_mj == pytest.approx(expected)

    def test_platform_power_added(self, cpu, zoo):
        bare = profile_network(cpu, zoo["mobilenet_v3"], Precision.FP32)
        with_base = profile_network(cpu, zoo["mobilenet_v3"],
                                    Precision.FP32,
                                    platform_idle_mw=500.0)
        assert with_base.total_energy_mj > bare.total_energy_mj

    def test_unsupported_precision_rejected(self, gpu, zoo):
        with pytest.raises(ConfigError):
            profile_network(gpu, zoo["mobilenet_v3"], Precision.INT8)


class TestAnalysis:
    def test_by_kind_partitions_latency(self, cpu, zoo):
        profile = profile_network(cpu, zoo["inception_v1"],
                                  Precision.FP32)
        assert sum(profile.by_kind().values()) == pytest.approx(
            profile.total_latency_ms
        )

    def test_dominant_kind_conv_for_inception_on_cpu(self, cpu, zoo):
        profile = profile_network(cpu, zoo["inception_v1"],
                                  Precision.FP32)
        assert profile.dominant_kind() is LayerType.CONV

    def test_dominant_kind_fc_for_mobilenet_v3_on_gpu(self, gpu, zoo):
        """Fig. 3's message at per-layer resolution."""
        profile = profile_network(gpu, zoo["mobilenet_v3"],
                                  Precision.FP32)
        assert profile.dominant_kind() is LayerType.FC

    def test_bottlenecks_sorted(self, cpu, zoo):
        profile = profile_network(cpu, zoo["resnet_50"], Precision.FP32)
        top = profile.bottlenecks(5)
        assert len(top) == 5
        latencies = [l.latency_ms for l in top]
        assert latencies == sorted(latencies, reverse=True)

    def test_table_rendered(self, cpu, zoo):
        profile = profile_network(cpu, zoo["mobilenet_v3"],
                                  Precision.FP32)
        text = profile.table(top=3)
        assert "mobilenet_v3" in text
        assert text.count("\n") < 10
