"""Tests for the Table-III network zoo."""

import pytest

from repro.models.layers import LayerType
from repro.models.network import Task
from repro.models.zoo import (
    NETWORK_NAMES,
    TABLE_III,
    build_network,
    heavy_networks,
    light_networks,
    load_zoo,
)

# Table III verbatim from the paper: (CONV, FC, RC).
PAPER_TABLE_III = {
    "inception_v1": (49, 1, 0),
    "inception_v3": (94, 1, 0),
    "mobilenet_v1": (14, 1, 0),
    "mobilenet_v2": (35, 1, 0),
    "mobilenet_v3": (23, 20, 0),
    "resnet_50": (53, 1, 0),
    "ssd_mobilenet_v1": (19, 1, 0),
    "ssd_mobilenet_v2": (52, 1, 0),
    "ssd_mobilenet_v3": (28, 20, 0),
    "mobilebert": (0, 1, 24),
}


class TestTableIII:
    def test_ten_networks(self):
        assert len(NETWORK_NAMES) == 10

    def test_module_constant_matches_paper(self):
        assert TABLE_III == PAPER_TABLE_III

    @pytest.mark.parametrize("name", sorted(PAPER_TABLE_III))
    def test_built_composition_matches_paper(self, zoo, name):
        assert zoo[name].composition.as_tuple() == PAPER_TABLE_III[name]

    def test_tasks(self, zoo):
        assert zoo["inception_v1"].task == Task.IMAGE_CLASSIFICATION
        assert zoo["ssd_mobilenet_v2"].task == Task.OBJECT_DETECTION
        assert zoo["mobilebert"].task == Task.TRANSLATION


class TestMacBudgets:
    """The S_MAC bins (Table I) depend on these totals."""

    def test_light_networks_under_1000m(self, zoo):
        for name in light_networks():
            assert zoo[name].mega_macs < 1000.0

    def test_heavy_networks_at_least_2000m(self, zoo):
        for name in heavy_networks():
            assert zoo[name].mega_macs >= 2000.0

    def test_mobilebert_is_heavy(self):
        assert "mobilebert" in heavy_networks()

    def test_mobilenets_are_light(self):
        for name in ("mobilenet_v1", "mobilenet_v2", "mobilenet_v3"):
            assert name in light_networks()


class TestWorkloadShape:
    def test_layer_macs_positive(self, zoo):
        for network in zoo.values():
            for layer in network.layers:
                assert layer.macs > 0

    def test_conv_dominates_vision_macs(self, zoo):
        net = zoo["resnet_50"]
        conv_macs = sum(l.macs for l in net.layers
                        if l.kind is LayerType.CONV)
        assert conv_macs > 0.9 * net.total_macs

    def test_mobilenet_v3_has_visible_fc_share(self, zoo):
        """The 20 squeeze-excite FC layers must matter for Fig. 3."""
        net = zoo["mobilenet_v3"]
        fc_macs = sum(l.macs for l in net.layers if l.kind is LayerType.FC)
        assert fc_macs / net.total_macs > 0.1

    def test_mobilebert_is_all_recurrent(self, zoo):
        net = zoo["mobilebert"]
        rc_macs = sum(l.macs for l in net.layers if l.kind is LayerType.RC)
        assert rc_macs > 0.9 * net.total_macs

    def test_early_activations_exceed_late(self, zoo):
        """Activation profile must decay so late splits are cheap."""
        for name in ("inception_v1", "resnet_50"):
            layers = zoo[name].layers
            assert layers[0].output_bytes > layers[-1].output_bytes

    def test_mid_network_activation_exceeds_wire_input(self, zoo):
        """Splitting early should cost more than shipping the input."""
        net = zoo["inception_v1"]
        assert net.layers[0].output_bytes > net.input_bytes

    def test_text_input_is_tiny(self, zoo):
        """MobileBERT's offload payload is tokens, not pixels (Fig. 2)."""
        assert zoo["mobilebert"].input_bytes < 10_000
        assert zoo["inception_v1"].input_bytes > 10_000


class TestBuildApi:
    def test_unknown_name_raises_keyerror_with_choices(self):
        with pytest.raises(KeyError, match="mobilenet_v1"):
            build_network("alexnet")

    def test_load_zoo_keys(self, zoo):
        assert set(zoo) == set(NETWORK_NAMES)

    def test_build_is_deterministic(self):
        a = build_network("mobilenet_v2")
        b = build_network("mobilenet_v2")
        assert a.total_macs == b.total_macs
        assert [l.name for l in a.layers] == [l.name for l in b.layers]


class TestCustomNetworks:
    """The adoption path: scheduling a user-defined model."""

    def test_vision_composition_honoured(self):
        from repro.models.zoo import build_custom_network

        net = build_custom_network("my_net", conv=40, fc=2, mmacs=900.0)
        assert net.composition.as_tuple() == (40, 2, 0)
        assert net.mega_macs == pytest.approx(900.0)

    def test_transformer_style(self):
        from repro.models.network import Task
        from repro.models.zoo import build_custom_network

        net = build_custom_network("my_bert", task=Task.TRANSLATION,
                                   conv=0, fc=1, rc=12, mmacs=2500.0)
        assert net.composition.as_tuple() == (0, 1, 12)

    def test_fc_heavy_gets_visible_fc_share(self):
        from repro.models.layers import LayerType
        from repro.models.zoo import build_custom_network

        net = build_custom_network("my_se_net", conv=25, fc=16,
                                   mmacs=400.0)
        fc_macs = sum(l.macs for l in net.layers
                      if l.kind is LayerType.FC)
        assert fc_macs / net.total_macs > 0.1

    def test_zoo_name_collision_rejected(self):
        from repro.common import ConfigError
        from repro.models.zoo import build_custom_network

        with pytest.raises(ConfigError, match="Table-III"):
            build_custom_network("mobilenet_v3")

    def test_mixed_conv_and_rc_rejected(self):
        from repro.common import ConfigError
        from repro.models.zoo import build_custom_network

        with pytest.raises(ConfigError):
            build_custom_network("hybrid", conv=10, rc=4)

    def test_end_to_end_with_custom_accuracy(self, mi8pro_device):
        """A custom network schedules end to end through AutoScale."""
        from repro.core.engine import AutoScale
        from repro.env.environment import EdgeCloudEnvironment
        from repro.env.qos import use_case_for
        from repro.models.accuracy import AccuracyTable, _BASE_FP32
        from repro.models.zoo import build_custom_network

        net = build_custom_network("adopter_net", conv=30, fc=1,
                                   mmacs=700.0)
        accuracy = AccuracyTable(
            base_fp32={**_BASE_FP32, "adopter_net": 73.0},
        )
        env = EdgeCloudEnvironment(mi8pro_device, scenario="S1",
                                   accuracy=accuracy, seed=0)
        engine = AutoScale(env, seed=0)
        engine.run(use_case_for(net), 90)
        engine.freeze()
        target = engine.predict(net, env.observe())
        result = env.estimate(net, target, env.observe())
        assert result.latency_ms <= 50.0
