"""Tests for the layer taxonomy."""

import pytest

from repro.common import ConfigError
from repro.models.layers import (
    COMPUTE_INTENSIVE_TYPES,
    LayerType,
    default_memory_bound,
    make_layer,
)


class TestLayerType:
    def test_conv_fc_rc_are_compute_intensive(self):
        for kind in (LayerType.CONV, LayerType.FC, LayerType.RC):
            assert kind.is_compute_intensive

    def test_tail_layers_are_not_compute_intensive(self):
        for kind in (LayerType.POOL, LayerType.NORM, LayerType.SOFTMAX,
                     LayerType.ARGMAX, LayerType.DROPOUT):
            assert not kind.is_compute_intensive

    def test_compute_intensive_set_has_exactly_three(self):
        assert len(COMPUTE_INTENSIVE_TYPES) == 3


class TestMakeLayer:
    def test_defaults_memory_bound_by_type(self):
        conv = make_layer(LayerType.CONV, "c0", macs=1e6)
        fc = make_layer(LayerType.FC, "f0", macs=1e6)
        rc = make_layer(LayerType.RC, "r0", macs=1e6)
        # FC and RC layers stream weights: far more memory-bound (II-A).
        assert fc.memory_bound > conv.memory_bound
        assert rc.memory_bound >= fc.memory_bound

    def test_explicit_memory_bound_respected(self):
        layer = make_layer(LayerType.CONV, "c0", macs=1.0,
                           memory_bound=0.42)
        assert layer.memory_bound == 0.42

    def test_every_type_has_default(self):
        for kind in LayerType:
            assert 0.0 <= default_memory_bound(kind) <= 1.0


class TestLayerValidation:
    def test_negative_macs_rejected(self):
        with pytest.raises(ConfigError):
            make_layer(LayerType.CONV, "bad", macs=-1.0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ConfigError):
            make_layer(LayerType.CONV, "bad", macs=1.0, param_bytes=-5)

    def test_memory_bound_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            make_layer(LayerType.CONV, "bad", macs=1.0, memory_bound=1.5)

    def test_layer_is_frozen(self):
        layer = make_layer(LayerType.CONV, "c0", macs=1.0)
        with pytest.raises(AttributeError):
            layer.macs = 2.0
