"""Tests for the NeuralNetwork descriptor."""

import pytest

from repro.common import ConfigError
from repro.models.layers import LayerType, make_layer
from repro.models.network import NeuralNetwork, Task


def _tiny_network():
    layers = (
        make_layer(LayerType.CONV, "conv_0", macs=1e6, output_bytes=1000),
        make_layer(LayerType.CONV, "conv_1", macs=2e6, output_bytes=500),
        make_layer(LayerType.FC, "fc_0", macs=5e5, output_bytes=100),
    )
    return NeuralNetwork(
        name="tiny", task=Task.IMAGE_CLASSIFICATION, layers=layers,
        input_bytes=4000, output_bytes=40,
    )


class TestComposition:
    def test_counts(self):
        net = _tiny_network()
        assert net.num_conv == 2
        assert net.num_fc == 1
        assert net.num_rc == 0

    def test_composition_tuple(self):
        assert _tiny_network().composition.as_tuple() == (2, 1, 0)

    def test_total_macs(self):
        assert _tiny_network().total_macs == pytest.approx(3.5e6)

    def test_mega_macs(self):
        assert _tiny_network().mega_macs == pytest.approx(3.5)


class TestSplit:
    def test_split_at_zero_is_all_remote(self):
        head, tail = _tiny_network().split(0)
        assert head == ()
        assert len(tail) == 3

    def test_split_at_end_is_all_local(self):
        head, tail = _tiny_network().split(3)
        assert len(head) == 3
        assert tail == ()

    def test_split_middle(self):
        head, tail = _tiny_network().split(2)
        assert [l.name for l in head] == ["conv_0", "conv_1"]
        assert [l.name for l in tail] == ["fc_0"]

    def test_out_of_range_split_rejected(self):
        with pytest.raises(ConfigError):
            _tiny_network().split(4)


class TestTransferBytes:
    def test_split_at_zero_ships_input(self):
        net = _tiny_network()
        assert net.transfer_bytes_at(0) == net.input_bytes

    def test_split_at_end_ships_nothing(self):
        assert _tiny_network().transfer_bytes_at(3) == 0.0

    def test_mid_split_ships_activation(self):
        net = _tiny_network()
        assert net.transfer_bytes_at(1) == 1000
        assert net.transfer_bytes_at(2) == 500


class TestValidation:
    def test_unknown_task_rejected(self):
        with pytest.raises(ConfigError):
            NeuralNetwork(
                name="x", task="cooking",
                layers=(make_layer(LayerType.CONV, "c", macs=1.0),),
                input_bytes=1, output_bytes=1,
            )

    def test_empty_layers_rejected(self):
        with pytest.raises(ConfigError):
            NeuralNetwork(name="x", task=Task.IMAGE_CLASSIFICATION,
                          layers=(), input_bytes=1, output_bytes=1)

    def test_duplicate_layer_names_rejected(self):
        layers = (make_layer(LayerType.CONV, "dup", macs=1.0),
                  make_layer(LayerType.CONV, "dup", macs=2.0))
        with pytest.raises(ConfigError):
            NeuralNetwork(name="x", task=Task.IMAGE_CLASSIFICATION,
                          layers=layers, input_bytes=1, output_bytes=1)

    def test_non_positive_io_rejected(self):
        with pytest.raises(ConfigError):
            NeuralNetwork(
                name="x", task=Task.IMAGE_CLASSIFICATION,
                layers=(make_layer(LayerType.CONV, "c", macs=1.0),),
                input_bytes=0, output_bytes=1,
            )

    def test_describe_mentions_composition(self):
        text = _tiny_network().describe()
        assert "CONV=2" in text and "FC=1" in text
