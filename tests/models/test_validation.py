"""Tests for the network validator."""

import pytest

from repro.common import ConfigError
from repro.models.layers import LayerType, make_layer
from repro.models.network import NeuralNetwork, Task
from repro.models.validation import assert_valid_network, validate_network
from repro.models.zoo import NETWORK_NAMES, build_custom_network


class TestZooAndCustomPass:
    @pytest.mark.parametrize("name", sorted(NETWORK_NAMES))
    def test_every_zoo_network_validates(self, zoo, name):
        assert validate_network(zoo[name]) == []

    def test_custom_network_validates(self):
        net = build_custom_network("validated", conv=25, fc=2,
                                   mmacs=600.0)
        assert validate_network(net) == []

    def test_assert_valid_returns_network(self, zoo):
        assert assert_valid_network(zoo["resnet_50"]) is zoo["resnet_50"]


def _network(layers, input_bytes=50_000.0):
    return NeuralNetwork(name="handmade",
                         task=Task.IMAGE_CLASSIFICATION,
                         layers=tuple(layers),
                         input_bytes=input_bytes, output_bytes=4000.0)


class TestDetectsProblems:
    def test_no_compute_intensive_layer(self):
        net = _network([
            make_layer(LayerType.POOL, "p0", macs=1e6,
                       output_bytes=1000.0),
        ])
        issues = validate_network(net)
        assert any("CONV/FC/RC" in issue for issue in issues)

    def test_tail_dominated_network(self):
        net = _network([
            make_layer(LayerType.CONV, "c0", macs=1e6,
                       output_bytes=60_000.0),
            make_layer(LayerType.POOL, "p0", macs=9e6,
                       output_bytes=1000.0),
        ])
        issues = validate_network(net)
        assert any("tail layers" in issue for issue in issues)

    def test_growing_final_activation(self):
        net = _network([
            make_layer(LayerType.CONV, "c0", macs=1e7,
                       output_bytes=900_000.0),
        ], input_bytes=50_000.0)
        issues = validate_network(net)
        assert any("final activation" in issue for issue in issues)

    def test_mixed_conv_and_rc(self):
        net = _network([
            make_layer(LayerType.CONV, "c0", macs=1e7,
                       output_bytes=10_000.0),
            make_layer(LayerType.RC, "r0", macs=1e7,
                       output_bytes=1000.0),
        ])
        issues = validate_network(net)
        assert any("mixed" in issue for issue in issues)

    def test_non_network_input(self):
        issues = validate_network("not a network")
        assert issues and "NeuralNetwork" in issues[0]

    def test_assert_raises_with_all_issues(self):
        net = _network([
            make_layer(LayerType.POOL, "p0", macs=1e6,
                       output_bytes=900_000.0),
        ])
        with pytest.raises(ConfigError) as excinfo:
            assert_valid_network(net)
        assert "failed validation" in str(excinfo.value)
