"""Tests for precision/quantization support."""

import pytest

from repro.models.quantization import Precision


class TestPrecision:
    def test_bytes_per_value(self):
        assert Precision.FP32.bytes_per_value == 4
        assert Precision.FP16.bytes_per_value == 2
        assert Precision.INT8.bytes_per_value == 1

    def test_size_ratio(self):
        assert Precision.FP32.size_ratio == 1.0
        assert Precision.FP16.size_ratio == 0.5
        assert Precision.INT8.size_ratio == 0.25

    def test_scale_bytes(self):
        assert Precision.INT8.scale_bytes(4000) == 1000

    def test_compute_scale_monotone(self):
        """Lower precision means more arithmetic throughput (II-B)."""
        assert (Precision.INT8.compute_scale
                > Precision.FP16.compute_scale
                > Precision.FP32.compute_scale == 1.0)

    def test_from_label(self):
        assert Precision.from_label("int8") is Precision.INT8
        assert Precision.from_label("fp32") is Precision.FP32

    def test_from_label_unknown(self):
        with pytest.raises(KeyError):
            Precision.from_label("int4")

    def test_str(self):
        assert str(Precision.FP16) == "FP16"
