"""Tests for the accuracy tables (Fig. 4 semantics)."""

import pytest

from repro.common import ConfigError
from repro.models.accuracy import DEFAULT_ACCURACY, AccuracyTable
from repro.models.quantization import Precision


class TestDefaultTable:
    def test_all_zoo_networks_present(self, zoo):
        for name in zoo:
            for precision in Precision:
                assert 0 < DEFAULT_ACCURACY.lookup(name, precision) <= 100

    def test_fp16_close_to_fp32(self):
        for name in DEFAULT_ACCURACY.networks():
            fp32 = DEFAULT_ACCURACY.lookup(name, Precision.FP32)
            fp16 = DEFAULT_ACCURACY.lookup(name, Precision.FP16)
            assert fp32 - fp16 == pytest.approx(0.1, abs=1e-9)

    def test_int8_never_better_than_fp32(self):
        for name in DEFAULT_ACCURACY.networks():
            assert (DEFAULT_ACCURACY.lookup(name, Precision.INT8)
                    <= DEFAULT_ACCURACY.lookup(name, Precision.FP32))

    def test_fig4_inception_v1_thresholds(self):
        """Fig. 4: Inception v1 INT8 passes a 50% target but fails 65%."""
        int8 = DEFAULT_ACCURACY.lookup("inception_v1", Precision.INT8)
        assert 50.0 <= int8 < 65.0
        fp32 = DEFAULT_ACCURACY.lookup("inception_v1", Precision.FP32)
        assert fp32 >= 65.0

    def test_fig4_mobilenet_v3_thresholds(self):
        """Fig. 4: MobileNet v3 INT8 passes 50% but fails 65%."""
        int8 = DEFAULT_ACCURACY.lookup("mobilenet_v3", Precision.INT8)
        assert 50.0 <= int8 < 65.0

    def test_mobilenet_v3_is_quantization_sensitive(self):
        drop_v3 = (DEFAULT_ACCURACY.lookup("mobilenet_v3", Precision.FP32)
                   - DEFAULT_ACCURACY.lookup("mobilenet_v3", Precision.INT8))
        drop_v2 = (DEFAULT_ACCURACY.lookup("mobilenet_v2", Precision.FP32)
                   - DEFAULT_ACCURACY.lookup("mobilenet_v2", Precision.INT8))
        assert drop_v3 > drop_v2


class TestSatisfies:
    def test_none_target_always_satisfied(self):
        assert DEFAULT_ACCURACY.satisfies("mobilenet_v3", Precision.INT8,
                                          None)

    def test_threshold_comparison(self):
        acc = DEFAULT_ACCURACY.lookup("resnet_50", Precision.FP32)
        assert DEFAULT_ACCURACY.satisfies("resnet_50", Precision.FP32,
                                          acc)
        assert not DEFAULT_ACCURACY.satisfies("resnet_50", Precision.FP32,
                                              acc + 0.1)


class TestCustomTable:
    def test_custom_base(self):
        table = AccuracyTable(base_fp32={"net": 80.0},
                              int8_drop={"net": 10.0})
        assert table.lookup("net", Precision.FP32) == 80.0
        assert table.lookup("net", Precision.INT8) == 70.0

    def test_unknown_network_raises(self):
        with pytest.raises(KeyError, match="nonexistent"):
            DEFAULT_ACCURACY.lookup("nonexistent", Precision.FP32)

    def test_invalid_base_rejected(self):
        with pytest.raises(ConfigError):
            AccuracyTable(base_fp32={"net": 150.0})

    def test_drop_clamped_at_zero(self):
        table = AccuracyTable(base_fp32={"net": 5.0},
                              int8_drop={"net": 50.0})
        assert table.lookup("net", Precision.INT8) == 0.0
