"""Tests for fault plans and outage windows."""

import pytest

from repro.common import ConfigError
from repro.env.target import Location
from repro.faults import FaultPlan, OutageWindow


class TestOutageWindow:
    def test_string_location_normalized(self):
        window = OutageWindow("cloud")
        assert window.location is Location.CLOUD

    def test_local_rejected(self):
        with pytest.raises(ConfigError, match="remote"):
            OutageWindow(Location.LOCAL)

    def test_bad_timing_rejected(self):
        with pytest.raises(ConfigError):
            OutageWindow("cloud", start_ms=-1.0)
        with pytest.raises(ConfigError):
            OutageWindow("cloud", duration_ms=0.0)
        # A period must exceed the duration (or be 0 = one-shot).
        with pytest.raises(ConfigError):
            OutageWindow("cloud", duration_ms=100.0, period_ms=100.0)

    def test_one_shot_coverage(self):
        window = OutageWindow("cloud", start_ms=100.0, duration_ms=50.0)
        assert not window.covers(Location.CLOUD, 99.0)
        assert window.covers(Location.CLOUD, 100.0)
        assert window.covers(Location.CLOUD, 149.0)
        assert not window.covers(Location.CLOUD, 150.0)
        assert not window.covers(Location.CLOUD, 1e6)

    def test_periodic_coverage_wraps(self):
        window = OutageWindow("cloud", start_ms=0.0, duration_ms=25.0,
                              period_ms=100.0)
        assert window.covers(Location.CLOUD, 10.0)
        assert not window.covers(Location.CLOUD, 30.0)
        assert window.covers(Location.CLOUD, 110.0)
        assert not window.covers(Location.CLOUD, 130.0)

    def test_wrong_location_not_covered(self):
        window = OutageWindow("cloud")
        assert not window.covers(Location.CONNECTED, 0.0)


class TestFaultPlan:
    def test_none_is_inactive(self):
        assert not FaultPlan.none().active

    def test_each_fault_activates(self):
        assert FaultPlan(loss_scale=0.1).active
        assert FaultPlan(abort_prob=0.1).active
        assert FaultPlan(straggler_prob=0.1).active
        assert FaultPlan(outages=(OutageWindow("cloud"),)).active

    def test_probability_bounds(self):
        for name in ("loss_scale", "straggler_prob", "abort_prob"):
            with pytest.raises(ConfigError, match=name):
                FaultPlan(**{name: 1.5})
            with pytest.raises(ConfigError, match=name):
                FaultPlan(**{name: -0.1})

    def test_other_bounds(self):
        with pytest.raises(ConfigError, match="straggler factor"):
            FaultPlan(straggler_factor=0.5)
        with pytest.raises(ConfigError, match="timeout"):
            FaultPlan(unavailable_timeout_ms=0.0)

    def test_outage_covers_any_window(self):
        plan = FaultPlan(outages=[
            OutageWindow("cloud", start_ms=0.0, duration_ms=10.0),
            OutageWindow("connected", start_ms=50.0, duration_ms=10.0),
        ])
        assert isinstance(plan.outages, tuple)  # normalized
        assert plan.outage_covers(Location.CLOUD, 5.0)
        assert plan.outage_covers(Location.CONNECTED, 55.0)
        assert not plan.outage_covers(Location.CLOUD, 55.0)
