"""Tests for typed failed attempts and the fault injector."""

import pytest

from repro.common import ConfigError, SimulationError, make_rng
from repro.env.result import ExecutionResult
from repro.env.target import ExecutionTarget, Location
from repro.faults import (
    FailedAttempt,
    FaultInjector,
    FaultKind,
    FaultPlan,
    OutageWindow,
    truncate_attempt,
)
from repro.models.quantization import Precision
from repro.wireless.profiles import default_wifi

IDLE_POWER_MW = 200.0


def remote_result():
    return ExecutionResult(
        latency_ms=100.0, energy_mj=50.0, estimated_energy_mj=40.0,
        accuracy_pct=76.0, target_key="cloud/gpu/fp32",
        detail={"tx_ms": 20.0, "rtt_ms": 10.0, "remote_ms": 60.0},
    )


def cloud_target():
    return ExecutionTarget(location=Location.CLOUD, role="gpu",
                           precision=Precision.FP32)


class TestFailedAttempt:
    def test_discriminator_and_surface(self):
        attempt = FailedAttempt(
            kind=FaultKind.ABORT, target_key="cloud/gpu/fp32",
            latency_ms=10.0, energy_mj=5.0, estimated_energy_mj=4.0,
        )
        assert attempt.failed
        assert not ExecutionResult(
            latency_ms=1.0, energy_mj=1.0, estimated_energy_mj=1.0,
            accuracy_pct=50.0, target_key="x",
        ).failed
        assert attempt.accuracy_pct == 0.0
        assert not attempt.meets_qos(1e9)

    def test_nonpositive_bill_rejected(self):
        with pytest.raises(ConfigError):
            FailedAttempt(kind=FaultKind.ABORT, target_key="x",
                          latency_ms=10.0, energy_mj=0.0,
                          estimated_energy_mj=4.0)


class TestTruncateAttempt:
    def test_linear_burn_billing(self):
        attempt = truncate_attempt(remote_result(), 25.0, FaultKind.ABORT)
        assert attempt.kind is FaultKind.ABORT
        assert attempt.latency_ms == pytest.approx(25.0)
        assert attempt.energy_mj == pytest.approx(50.0 * 0.25)
        assert attempt.estimated_energy_mj == pytest.approx(40.0 * 0.25)
        assert attempt.detail["elapsed_fraction"] == pytest.approx(0.25)

    def test_energy_is_conserved(self):
        """Truncated bill + unspent remainder == the full attempt."""
        result = remote_result()
        attempt = truncate_attempt(result, 33.0, FaultKind.PACKET_LOSS)
        remainder_mj = result.energy_mj * (1.0 - 33.0 / result.latency_ms)
        assert attempt.energy_mj + remainder_mj \
            == pytest.approx(result.energy_mj)

    def test_out_of_range_elapsed_rejected(self):
        for elapsed_ms in (0.0, -1.0, 100.0, 150.0):
            with pytest.raises(SimulationError):
                truncate_attempt(remote_result(), elapsed_ms,
                                 FaultKind.ABORT)


class TestInjector:
    def test_inactive_plan_passes_through(self):
        injector = FaultInjector(FaultPlan.none())
        assert not injector.active
        result = remote_result()
        outcome = injector.apply(result, cloud_target(), default_wifi(),
                                 -55.0, 0.0, make_rng(0), IDLE_POWER_MW)
        assert outcome is result
        assert injector.stats.total_failures == 0

    def test_outage_bills_idle_floor(self):
        plan = FaultPlan(outages=(OutageWindow("cloud", duration_ms=500.0),),
                         unavailable_timeout_ms=250.0)
        injector = FaultInjector(plan)
        outcome = injector.apply(remote_result(), cloud_target(),
                                 default_wifi(), -55.0, 100.0,
                                 make_rng(0), IDLE_POWER_MW)
        assert outcome.failed
        assert outcome.kind is FaultKind.UNAVAILABLE
        assert outcome.latency_ms == pytest.approx(250.0)
        assert outcome.energy_mj \
            == pytest.approx(IDLE_POWER_MW * 250.0 / 1000.0)
        assert injector.stats.failures == {"unavailable": 1}

    def test_outage_only_while_covered(self):
        plan = FaultPlan(outages=(OutageWindow("cloud", duration_ms=500.0),))
        injector = FaultInjector(plan)
        outcome = injector.apply(remote_result(), cloud_target(),
                                 default_wifi(), -55.0, 600.0,
                                 make_rng(0), IDLE_POWER_MW)
        assert not outcome.failed

    def test_packet_loss_dies_in_radio_window(self):
        plan = FaultPlan(loss_scale=1.0)
        injector = FaultInjector(plan)
        link = default_wifi()
        assert link.loss_probability(-100.0) > 0.99
        outcome = injector.apply(remote_result(), cloud_target(), link,
                                 -100.0, 0.0, make_rng(0), IDLE_POWER_MW)
        assert outcome.failed
        assert outcome.kind is FaultKind.PACKET_LOSS
        # Death lands inside the radio phase (tx 20 ms + rtt 10 ms).
        assert 0.0 < outcome.latency_ms <= 30.0

    def test_loss_negligible_at_strong_signal(self):
        link = default_wifi()
        assert link.loss_probability(-55.0) < 1e-4

    def test_certain_abort_truncates(self):
        injector = FaultInjector(FaultPlan(abort_prob=1.0))
        outcome = injector.apply(remote_result(), cloud_target(),
                                 default_wifi(), -55.0, 0.0,
                                 make_rng(0), IDLE_POWER_MW)
        assert outcome.failed
        assert outcome.kind is FaultKind.ABORT
        assert 0.0 < outcome.latency_ms < 100.0

    def test_straggler_stretches_and_bills_the_wait(self):
        injector = FaultInjector(FaultPlan(straggler_prob=1.0,
                                           straggler_factor=4.0))
        result = remote_result()
        outcome = injector.apply(result, cloud_target(), default_wifi(),
                                 -55.0, 0.0, make_rng(0), IDLE_POWER_MW)
        assert not outcome.failed
        extra_ms = 3.0 * result.detail["remote_ms"]
        assert outcome.latency_ms \
            == pytest.approx(result.latency_ms + extra_ms)
        assert outcome.energy_mj == pytest.approx(
            result.energy_mj + IDLE_POWER_MW * extra_ms / 1000.0
        )
        assert injector.stats.stragglers == 1
        assert injector.stats.total_failures == 0

    def test_deadline_timeout_without_any_plan(self):
        injector = FaultInjector(FaultPlan.none())
        outcome = injector.apply(remote_result(), cloud_target(),
                                 default_wifi(), -55.0, 0.0,
                                 make_rng(0), IDLE_POWER_MW,
                                 deadline_ms=60.0)
        assert outcome.failed
        assert outcome.kind is FaultKind.TIMEOUT
        assert outcome.latency_ms == pytest.approx(60.0)
        assert outcome.energy_mj == pytest.approx(50.0 * 0.6)

    def test_deadline_spares_fast_attempts(self):
        injector = FaultInjector(FaultPlan.none())
        outcome = injector.apply(remote_result(), cloud_target(),
                                 default_wifi(), -55.0, 0.0,
                                 make_rng(0), IDLE_POWER_MW,
                                 deadline_ms=150.0)
        assert not outcome.failed

    def test_ledger_matches_billed_failures(self):
        injector = FaultInjector(FaultPlan(abort_prob=1.0))
        billed_mj = 0.0
        for _ in range(10):
            outcome = injector.apply(remote_result(), cloud_target(),
                                     default_wifi(), -55.0, 0.0,
                                     make_rng(3), IDLE_POWER_MW)
            billed_mj += outcome.energy_mj
        stats = injector.stats
        assert stats.attempts == 10
        assert stats.total_failures == 10
        assert stats.billed_energy_mj == pytest.approx(billed_mj)
