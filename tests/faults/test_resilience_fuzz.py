"""Seeded fuzz tests for the resilience primitives.

The backoff schedule and the breaker state machine guard the serving
path under failure; a single bad sample (a negative delay, a breaker
that leaks traffic mid-cooldown) would corrupt the virtual clock or
defeat the isolation.  These tests sweep a thousand seeds so the
properties hold across the RNG space, not just at the seeds the unit
tests happen to use.
"""

from repro.common import make_rng
from repro.faults import CircuitBreaker, ResiliencePolicy
from repro.faults.breaker import BreakerConfig, BreakerState

N_SEEDS = 1_000


class TestBackoffFuzz:
    def test_delays_bounded_and_non_negative_across_seeds(self):
        policy = ResiliencePolicy(backoff_base_ms=25.0,
                                  backoff_cap_ms=400.0,
                                  backoff_jitter=0.5)
        for seed in range(N_SEEDS):
            rng = make_rng(seed)
            for retry_index in range(6):
                delay_ms = policy.backoff_ms(retry_index, rng)
                assert 0.0 <= delay_ms <= policy.backoff_cap_ms

    def test_jitter_stays_inside_its_band_across_seeds(self):
        """With jitter ``j`` the sampled delay must land in
        ``[(1 - j) * full, full]`` where ``full`` is the deterministic
        exponential schedule — jitter only ever shortens a delay."""
        policy = ResiliencePolicy(backoff_base_ms=20.0,
                                  backoff_cap_ms=320.0,
                                  backoff_jitter=0.3)
        for seed in range(N_SEEDS):
            rng = make_rng(seed)
            for retry_index in range(5):
                full_ms = min(policy.backoff_cap_ms,
                              policy.backoff_base_ms * 2.0 ** retry_index)
                delay_ms = policy.backoff_ms(retry_index, rng)
                assert (1.0 - policy.backoff_jitter) * full_ms \
                    <= delay_ms <= full_ms

    def test_zero_jitter_is_exactly_exponential_across_seeds(self):
        policy = ResiliencePolicy(backoff_base_ms=10.0,
                                  backoff_cap_ms=80.0,
                                  backoff_jitter=0.0)
        expected = [10.0, 20.0, 40.0, 80.0, 80.0]
        for seed in range(0, N_SEEDS, 50):
            rng = make_rng(seed)
            assert [policy.backoff_ms(i, rng) for i in range(5)] \
                == expected


class TestBreakerFuzz:
    def test_open_breaker_never_leaks_before_cooldown(self):
        """Fuzz the event sequence: whatever mix of failures, successes,
        and probes a seed generates, an OPEN breaker must reject every
        attempt until its cooldown has fully elapsed."""
        config = BreakerConfig(failure_threshold=3, cooldown_ms=2_000.0)
        for seed in range(N_SEEDS):
            rng = make_rng(seed)
            breaker = CircuitBreaker(config)
            now_ms = 0.0
            for _ in range(40):
                now_ms += float(rng.uniform(1.0, 900.0))
                opened_at_ms = breaker.opened_at_ms
                was_open = breaker.state is BreakerState.OPEN
                allowed = breaker.allows(now_ms)
                if was_open and now_ms - opened_at_ms \
                        < config.cooldown_ms:
                    assert not allowed, (
                        f"seed {seed}: OPEN breaker admitted traffic "
                        f"{now_ms - opened_at_ms:.0f} ms into a "
                        f"{config.cooldown_ms:.0f} ms cooldown"
                    )
                if allowed:
                    if rng.random() < 0.5:
                        breaker.record_failure(now_ms)
                    else:
                        breaker.record_success(now_ms)

    def test_cooldown_expiry_admits_exactly_one_probe_state(self):
        """After the cooldown the first attempt transitions the breaker
        to HALF_OPEN (never straight to CLOSED) across seeds."""
        config = BreakerConfig(failure_threshold=1, cooldown_ms=500.0)
        for seed in range(0, N_SEEDS, 10):
            rng = make_rng(seed)
            breaker = CircuitBreaker(config)
            open_at_ms = float(rng.uniform(0.0, 1_000.0))
            breaker.record_failure(open_at_ms)
            assert breaker.state is BreakerState.OPEN
            # A 0.01 ms guard band keeps float rounding of
            # ``open_at + cooldown`` out of the property.
            assert not breaker.allows(
                open_at_ms + config.cooldown_ms - 0.01)
            assert breaker.allows(
                open_at_ms + config.cooldown_ms + 0.01)
            assert breaker.state is BreakerState.HALF_OPEN
