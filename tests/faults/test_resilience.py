"""Tests for the serving-path resilience policy."""

import pytest

from repro.common import ConfigError, make_rng
from repro.faults import ResiliencePolicy


class TestValidation:
    def test_bounds(self):
        with pytest.raises(ConfigError):
            ResiliencePolicy(max_retries=-1)
        with pytest.raises(ConfigError):
            ResiliencePolicy(backoff_base_ms=0.0)
        with pytest.raises(ConfigError):
            ResiliencePolicy(backoff_base_ms=100.0, backoff_cap_ms=50.0)
        with pytest.raises(ConfigError):
            ResiliencePolicy(backoff_jitter=1.5)
        with pytest.raises(ConfigError):
            ResiliencePolicy(timeout_headroom=-1.0)

    def test_disabled(self):
        policy = ResiliencePolicy.disabled()
        assert not policy.enabled
        assert policy.deadline_ms(100.0) is None


class TestDeadline:
    def test_headroom_scales_qos(self):
        policy = ResiliencePolicy(timeout_headroom=4.0)
        assert policy.deadline_ms(50.0) == pytest.approx(200.0)

    def test_zero_headroom_disables(self):
        policy = ResiliencePolicy(timeout_headroom=0.0)
        assert policy.deadline_ms(50.0) is None


class TestBackoff:
    def test_doubles_then_caps(self):
        policy = ResiliencePolicy(backoff_base_ms=10.0,
                                  backoff_cap_ms=35.0,
                                  backoff_jitter=0.0)
        rng = make_rng(0)
        delays = [policy.backoff_ms(i, rng) for i in range(4)]
        assert delays == pytest.approx([10.0, 20.0, 35.0, 35.0])

    def test_jitter_stays_within_band(self):
        policy = ResiliencePolicy(backoff_base_ms=10.0,
                                  backoff_cap_ms=1_000.0,
                                  backoff_jitter=0.5)
        rng = make_rng(7)
        for retry_index in range(3):
            full_ms = 10.0 * 2.0 ** retry_index
            for _ in range(50):
                delay_ms = policy.backoff_ms(retry_index, rng)
                assert 0.5 * full_ms <= delay_ms <= full_ms

    def test_negative_retry_index_rejected(self):
        with pytest.raises(ConfigError):
            ResiliencePolicy().backoff_ms(-1, make_rng(0))
