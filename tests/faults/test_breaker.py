"""Tests for the per-target circuit breaker state machine."""

import pytest

from repro.common import ConfigError
from repro.faults import BreakerConfig, BreakerState, CircuitBreaker


@pytest.fixture()
def breaker():
    return CircuitBreaker(BreakerConfig(failure_threshold=3,
                                        cooldown_ms=1_000.0,
                                        half_open_successes=2))


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ConfigError):
            BreakerConfig(cooldown_ms=0.0)
        with pytest.raises(ConfigError):
            BreakerConfig(half_open_successes=0)


class TestStateMachine:
    def test_starts_closed_and_allows(self, breaker):
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allows(0.0)

    def test_opens_after_threshold_consecutive_failures(self, breaker):
        breaker.record_failure(0.0)
        breaker.record_failure(10.0)
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(20.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.times_opened == 1
        assert not breaker.allows(20.0)

    def test_success_resets_the_failure_streak(self, breaker):
        breaker.record_failure(0.0)
        breaker.record_failure(10.0)
        breaker.record_success(20.0)
        breaker.record_failure(30.0)
        breaker.record_failure(40.0)
        assert breaker.state is BreakerState.CLOSED

    def test_cooldown_admits_half_open_probe(self, breaker):
        for at_ms in (0.0, 1.0, 2.0):
            breaker.record_failure(at_ms)
        assert not breaker.allows(500.0)   # still cooling down
        assert breaker.allows(1_002.0)     # cooldown elapsed -> probe
        assert breaker.state is BreakerState.HALF_OPEN

    def test_probe_successes_close(self, breaker):
        for at_ms in (0.0, 1.0, 2.0):
            breaker.record_failure(at_ms)
        assert breaker.allows(2_000.0)
        breaker.record_success(2_000.0)
        assert breaker.state is BreakerState.HALF_OPEN  # needs 2
        breaker.record_success(2_100.0)
        assert breaker.state is BreakerState.CLOSED

    def test_probe_failure_reopens(self, breaker):
        for at_ms in (0.0, 1.0, 2.0):
            breaker.record_failure(at_ms)
        assert breaker.allows(2_000.0)
        breaker.record_failure(2_000.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.times_opened == 2
        # The cooldown restarts from the reopen time.
        assert not breaker.allows(2_500.0)
        assert breaker.allows(3_000.0)
