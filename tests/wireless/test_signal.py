"""Tests for the signal-strength processes."""

import numpy as np
import pytest

from repro.common import ConfigError, make_rng
from repro.wireless.signal import (
    ConstantSignal,
    GaussianSignal,
    RandomWalkSignal,
)


class TestConstantSignal:
    def test_constant(self):
        signal = ConstantSignal(-60.0)
        rng = make_rng(0)
        assert signal.sample(rng) == -60.0
        assert signal.sample(rng, now_ms=99999.0) == -60.0

    def test_implausible_rssi_rejected(self):
        with pytest.raises(ConfigError):
            ConstantSignal(-200.0)
        with pytest.raises(ConfigError):
            ConstantSignal(-5.0)


class TestGaussianSignal:
    def test_mean_and_spread(self):
        signal = GaussianSignal(mean_dbm=-72.0, std_db=9.0)
        rng = make_rng(1)
        samples = [signal.sample(rng) for _ in range(3000)]
        assert np.mean(samples) == pytest.approx(-72.0, abs=1.0)
        assert np.std(samples) == pytest.approx(9.0, abs=1.0)

    def test_clamped_to_plausible_range(self):
        signal = GaussianSignal(mean_dbm=-95.0, std_db=30.0)
        rng = make_rng(2)
        for _ in range(500):
            value = signal.sample(rng)
            assert -100.0 <= value <= -30.0

    def test_sometimes_weak_sometimes_regular(self):
        """D3 must actually cross the -80 dBm state boundary."""
        signal = GaussianSignal(mean_dbm=-72.0, std_db=9.0)
        rng = make_rng(3)
        samples = [signal.sample(rng) for _ in range(500)]
        assert any(s <= -80.0 for s in samples)
        assert any(s > -80.0 for s in samples)

    def test_negative_std_rejected(self):
        with pytest.raises(ConfigError):
            GaussianSignal(std_db=-1.0)


class TestRandomWalkSignal:
    def test_smooth_steps(self):
        walk = RandomWalkSignal(mean_dbm=-70.0, std_db=8.0, reversion=0.05)
        rng = make_rng(4)
        previous = walk.sample(rng)
        jumps = []
        for _ in range(200):
            current = walk.sample(rng)
            jumps.append(abs(current - previous))
            previous = current
        # Consecutive samples should be correlated: typical step much
        # smaller than the process's stationary spread.
        assert np.median(jumps) < 8.0

    def test_mean_reversion(self):
        walk = RandomWalkSignal(mean_dbm=-70.0, std_db=5.0, reversion=0.2)
        rng = make_rng(5)
        samples = [walk.sample(rng) for _ in range(4000)]
        assert np.mean(samples[500:]) == pytest.approx(-70.0, abs=2.5)

    def test_reset(self):
        walk = RandomWalkSignal(mean_dbm=-70.0)
        rng = make_rng(6)
        for _ in range(50):
            walk.sample(rng)
        walk.reset()
        assert walk._state == -70.0

    def test_bad_reversion_rejected(self):
        with pytest.raises(ConfigError):
            RandomWalkSignal(reversion=0.0)
