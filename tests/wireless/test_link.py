"""Tests for the wireless link model."""

import pytest

from repro.common import ConfigError
from repro.wireless.link import WEAK_RSSI_DBM, LinkKind, WirelessLink
from repro.wireless.profiles import default_wifi, default_wifi_direct


class TestRateCurve:
    def test_strong_signal_near_max(self):
        link = default_wifi()
        assert link.data_rate_mbps(-50.0) > 0.95 * link.max_rate_mbps

    def test_weak_signal_collapses(self):
        link = default_wifi()
        assert link.data_rate_mbps(-90.0) < 0.1 * link.max_rate_mbps

    def test_rate_monotone_in_rssi(self):
        link = default_wifi()
        rates = [link.data_rate_mbps(rssi)
                 for rssi in (-95, -85, -80, -70, -55)]
        assert rates == sorted(rates)

    def test_rate_never_zero(self):
        link = default_wifi()
        assert link.data_rate_mbps(-100.0) > 0.0

    def test_exponential_blowup_below_knee(self):
        """Section III-B: latency increases exponentially at weak signal."""
        link = default_wifi()
        t_strong = link.transfer_ms(1_000_000, -55.0)
        t_weak = link.transfer_ms(1_000_000, -86.0)
        assert t_weak > 5.0 * t_strong


class TestPowerCurve:
    def test_tx_power_rises_at_weak_signal(self):
        link = default_wifi()
        assert link.tx_power_mw(-90.0) > link.tx_power_mw(-50.0)

    def test_tx_power_within_bounds(self):
        link = default_wifi()
        for rssi in (-95, -80, -60, -40):
            power = link.tx_power_mw(rssi)
            assert link.tx_power_min_mw <= power <= link.tx_power_max_mw


class TestRttAndWeakness:
    def test_rtt_inflated_at_weak_signal(self):
        link = default_wifi()
        assert link.effective_rtt_ms(-90.0) > link.effective_rtt_ms(-55.0)

    def test_weak_threshold_matches_table_i(self):
        link = default_wifi()
        assert link.is_weak(WEAK_RSSI_DBM)
        assert link.is_weak(-85.0)
        assert not link.is_weak(-79.9)

    def test_weakness_bounds(self):
        link = default_wifi()
        assert 0.0 < link.weakness(-100.0) < 1.0
        assert link.weakness(-100.0) > 0.99
        assert link.weakness(-40.0) < 0.01


class TestTransfer:
    def test_zero_bytes_is_free(self):
        assert default_wifi().transfer_ms(0, -55.0) == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ConfigError):
            default_wifi().transfer_ms(-1, -55.0)

    def test_transfer_linear_in_bytes(self):
        link = default_wifi()
        assert link.transfer_ms(2_000_000, -55.0) == pytest.approx(
            2 * link.transfer_ms(1_000_000, -55.0)
        )

    def test_tail_energy(self):
        link = default_wifi()
        assert link.tail_energy_mj() == pytest.approx(
            link.tail_power_mw * link.tail_ms / 1000.0
        )


class TestProfiles:
    def test_kinds(self):
        assert default_wifi().kind is LinkKind.WLAN
        assert default_wifi_direct().kind is LinkKind.P2P

    def test_p2p_has_shorter_rtt_and_tail(self):
        """Why connected-edge offload is cheap for light NNs (Fig. 2)."""
        wifi, p2p = default_wifi(), default_wifi_direct()
        assert p2p.rtt_ms < wifi.rtt_ms
        assert p2p.tail_energy_mj() < wifi.tail_energy_mj()


class TestValidation:
    def test_bad_rate(self):
        with pytest.raises(ConfigError):
            WirelessLink(name="x", kind=LinkKind.WLAN, max_rate_mbps=0.0)

    def test_inverted_tx_power_range(self):
        with pytest.raises(ConfigError):
            WirelessLink(name="x", kind=LinkKind.WLAN, max_rate_mbps=10.0,
                         tx_power_min_mw=900.0, tx_power_max_mw=700.0)


class TestLteProfile:
    def test_lte_is_wlan_kind(self):
        from repro.wireless.profiles import default_lte

        assert default_lte().kind is LinkKind.WLAN

    def test_lte_tail_dwarfs_wifi(self):
        """The RRC demotion tail — why per-inference cellular offloading
        is so expensive."""
        from repro.wireless.profiles import default_lte

        assert default_lte().tail_energy_mj() \
            > 2 * default_wifi().tail_energy_mj()

    def test_lte_usable_at_rssi_that_kills_wifi(self):
        """Cellular keeps a workable rate at RSSI levels where Wi-Fi has
        collapsed (different link budget)."""
        from repro.wireless.profiles import default_lte

        lte, wifi = default_lte(), default_wifi()
        assert (lte.data_rate_mbps(-88.0) / lte.max_rate_mbps
                > wifi.data_rate_mbps(-88.0) / wifi.max_rate_mbps)

    def test_lte_rtt_longer(self):
        from repro.wireless.profiles import default_lte

        assert default_lte().rtt_ms > default_wifi().rtt_ms
