"""Tests for the equation (4) transmission-energy model."""

import pytest

from repro.common import ConfigError
from repro.wireless.energy import transmission_energy_mj
from repro.wireless.profiles import default_wifi


class TestEq4:
    def test_components_sum(self):
        link = default_wifi()
        breakdown = transmission_energy_mj(link, -55.0, 64_000, 4_000,
                                           total_latency_ms=50.0)
        assert breakdown.radio_energy_mj == pytest.approx(
            breakdown.tx_energy_mj + breakdown.rx_energy_mj
            + breakdown.idle_energy_mj + breakdown.tail_energy_mj
        )

    def test_eq4_excludes_tail(self):
        link = default_wifi()
        breakdown = transmission_energy_mj(link, -55.0, 64_000, 4_000,
                                           total_latency_ms=50.0)
        assert breakdown.eq4_energy_mj == pytest.approx(
            breakdown.radio_energy_mj - breakdown.tail_energy_mj
        )

    def test_times_partition_latency(self):
        link = default_wifi()
        breakdown = transmission_energy_mj(link, -55.0, 64_000, 4_000,
                                           total_latency_ms=50.0)
        assert (breakdown.tx_ms + breakdown.rx_ms + breakdown.wait_ms
                == pytest.approx(50.0))

    def test_tx_energy_matches_power_times_time(self):
        link = default_wifi()
        breakdown = transmission_energy_mj(link, -55.0, 64_000, 0,
                                           total_latency_ms=50.0)
        assert breakdown.tx_energy_mj == pytest.approx(
            link.tx_power_mw(-55.0) * breakdown.tx_ms / 1000.0
        )

    def test_weak_signal_costs_more(self):
        """Both slower transfers and a hotter radio at weak RSSI."""
        link = default_wifi()
        strong = transmission_energy_mj(link, -55.0, 500_000, 4_000,
                                        total_latency_ms=500.0)
        weak = transmission_energy_mj(link, -86.0, 500_000, 4_000,
                                      total_latency_ms=500.0)
        assert weak.tx_energy_mj > 3.0 * strong.tx_energy_mj

    def test_tail_flag(self):
        link = default_wifi()
        no_tail = transmission_energy_mj(link, -55.0, 1000, 100,
                                         total_latency_ms=10.0,
                                         include_tail=False)
        assert no_tail.tail_energy_mj == 0.0

    def test_latency_shorter_than_transfer_rejected(self):
        link = default_wifi()
        with pytest.raises(ConfigError):
            transmission_energy_mj(link, -86.0, 10_000_000, 0,
                                   total_latency_ms=1.0)


class TestEffectiveTimeOverrides:
    """Regression: a slowed transmission must be billed at TX/RX power.

    Callers that stretch ``transfer_ms`` (contention, jitter) pass the
    effective times; without them the stretched portion was silently
    charged at radio *idle* power."""

    def test_overrides_replace_clean_transfer_times(self):
        link = default_wifi()
        clean = transmission_energy_mj(link, -55.0, 64_000, 4_000,
                                       total_latency_ms=50.0)
        slowed = transmission_energy_mj(
            link, -55.0, 64_000, 4_000, total_latency_ms=50.0,
            tx_ms=clean.tx_ms * 1.5, rx_ms=clean.rx_ms * 1.5,
        )
        assert slowed.tx_ms == pytest.approx(clean.tx_ms * 1.5)
        assert slowed.rx_ms == pytest.approx(clean.rx_ms * 1.5)
        assert (slowed.tx_ms + slowed.rx_ms + slowed.wait_ms
                == pytest.approx(50.0))

    def test_slowed_transfer_billed_at_tx_power(self):
        """Same total latency, longer effective TX -> more radio energy
        (the extra milliseconds move from idle power to TX power)."""
        link = default_wifi()
        clean = transmission_energy_mj(link, -55.0, 64_000, 4_000,
                                       total_latency_ms=50.0)
        slowed = transmission_energy_mj(
            link, -55.0, 64_000, 4_000, total_latency_ms=50.0,
            tx_ms=clean.tx_ms * 1.5, rx_ms=clean.rx_ms * 1.5,
        )
        assert slowed.radio_energy_mj > clean.radio_energy_mj
        assert slowed.idle_energy_mj < clean.idle_energy_mj

    def test_negative_override_rejected(self):
        link = default_wifi()
        with pytest.raises(ConfigError):
            transmission_energy_mj(link, -55.0, 64_000, 4_000,
                                   total_latency_ms=50.0, tx_ms=-1.0)
