"""Shared fixtures for the test suite."""

import pytest

from repro.env.environment import EdgeCloudEnvironment
from repro.env.qos import use_case_for
from repro.hardware.devices import build_device
from repro.models.zoo import load_zoo


@pytest.fixture(scope="session")
def zoo():
    """The full Table-III network zoo (built once per session)."""
    return load_zoo()


@pytest.fixture()
def mi8pro_device():
    return build_device("mi8pro")


@pytest.fixture()
def moto_device():
    return build_device("moto_x_force")


@pytest.fixture()
def s10e_device():
    return build_device("galaxy_s10e")


@pytest.fixture()
def env(mi8pro_device):
    """A quiescent Mi8Pro edge-cloud environment with a fixed seed."""
    return EdgeCloudEnvironment(mi8pro_device, scenario="S1", seed=1234)


@pytest.fixture()
def mobilenet_case(zoo):
    return use_case_for(zoo["mobilenet_v3"])


@pytest.fixture()
def resnet_case(zoo):
    return use_case_for(zoo["resnet_50"])


@pytest.fixture()
def bert_case(zoo):
    return use_case_for(zoo["mobilebert"])
