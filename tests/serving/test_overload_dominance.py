"""Regression: the full pipeline strictly dominates naive FIFO at surge.

This pins the headline acceptance property of the overload work: at the
highest default arrival intensity the shedder+brownout pipeline beats an
unbounded FIFO on *both* end-to-end QoS-violation rate and energy per
delivered inference — and plain shedding sits between the two on
violations.  The margins asserted here are a fraction of the measured
ones (roughly 54 pp violations, 6.8 mJ energy at seed 0), so the test
survives numerical drift while still failing on a real regression.
"""

import pytest

from repro.evalharness.overload import DEFAULT_PROFILES, overload_episode

DURATION_MS = 15_000.0
WARMUP_REQUESTS = 300
SEED = 0


@pytest.fixture(scope="module")
def surge_rows():
    surge = DEFAULT_PROFILES[-1]
    assert surge.name == "surge"
    return {
        policy: overload_episode(policy, surge, duration_ms=DURATION_MS,
                                 warmup_requests=WARMUP_REQUESTS,
                                 seed=SEED)
        for policy in ("fifo", "shed", "shed_brownout")
    }


class TestSurgeDominance:
    def test_fifo_collapses_under_surge(self, surge_rows):
        """The baseline must actually be overloaded, or the comparison
        is vacuous."""
        assert surge_rows["fifo"]["qos_violation_pct"] > 90.0
        assert surge_rows["fifo"]["shed_pct"] == 0.0

    def test_full_pipeline_strictly_dominates_fifo(self, surge_rows):
        fifo = surge_rows["fifo"]
        full = surge_rows["shed_brownout"]
        assert full["qos_violation_pct"] \
            < fifo["qos_violation_pct"] - 20.0
        assert full["energy_per_delivered_mj"] \
            < fifo["energy_per_delivered_mj"] - 2.0

    def test_shedding_alone_sits_between(self, surge_rows):
        shed = surge_rows["shed"]
        assert surge_rows["shed_brownout"]["qos_violation_pct"] \
            < shed["qos_violation_pct"] \
            < surge_rows["fifo"]["qos_violation_pct"]

    def test_brownout_actually_degraded_service(self, surge_rows):
        """The energy win must come from the degradation tiers doing
        work, not from an accounting artifact."""
        assert surge_rows["shed_brownout"]["brownout_escalations"] >= 1

    def test_queue_delay_tail_is_bounded_by_shedding(self, surge_rows):
        """FIFO's p99 queue delay grows with the backlog; the bounded
        pipeline keeps it near the QoS budget."""
        assert surge_rows["shed_brownout"]["p99_queue_delay_ms"] \
            < surge_rows["fifo"]["p99_queue_delay_ms"] / 10.0
