"""Tests for the brownout controller: hysteresis and tier masks."""

import pytest

from repro.common import ConfigError
from repro.models.quantization import Precision
from repro.serving.brownout import (
    BrownoutConfig,
    BrownoutController,
    BrownoutTier,
)


def _controller(enter_depth=8, exit_depth=2, patience=3, enabled=True):
    return BrownoutController(BrownoutConfig(
        enabled=enabled, enter_depth=enter_depth, exit_depth=exit_depth,
        patience=patience,
    ))


class TestConfig:
    def test_watermarks_must_form_a_band(self):
        with pytest.raises(ConfigError):
            BrownoutConfig(enter_depth=4, exit_depth=4)
        with pytest.raises(ConfigError):
            BrownoutConfig(enter_depth=0)
        with pytest.raises(ConfigError):
            BrownoutConfig(patience=0)

    def test_disabled_never_escalates(self):
        controller = _controller(enabled=False)
        for _ in range(5):
            assert controller.observe_pressure(1_000) \
                is BrownoutTier.NORMAL
        assert controller.escalations == 0


class TestHysteresis:
    def test_escalation_is_immediate_and_stepwise(self):
        controller = _controller(enter_depth=8)
        assert controller.observe_pressure(8) \
            is BrownoutTier.REDUCED_PRECISION
        assert controller.observe_pressure(50) is BrownoutTier.LOCAL_ONLY
        # Deepest tier saturates; no further transition to count.
        assert controller.observe_pressure(50) is BrownoutTier.LOCAL_ONLY
        assert controller.escalations == 2

    def test_deescalation_waits_for_patience(self):
        controller = _controller(exit_depth=2, patience=3)
        controller.observe_pressure(10)  # -> REDUCED_PRECISION
        assert controller.observe_pressure(0) \
            is BrownoutTier.REDUCED_PRECISION
        assert controller.observe_pressure(1) \
            is BrownoutTier.REDUCED_PRECISION
        assert controller.observe_pressure(2) is BrownoutTier.NORMAL
        assert controller.deescalations == 1

    def test_band_depth_resets_the_calm_streak(self):
        controller = _controller(enter_depth=8, exit_depth=2, patience=2)
        controller.observe_pressure(10)  # -> REDUCED_PRECISION
        controller.observe_pressure(0)   # calm 1/2
        controller.observe_pressure(5)   # inside the band: streak resets
        controller.observe_pressure(0)   # calm 1/2 again
        assert controller.observe_pressure(0) is BrownoutTier.NORMAL

    def test_negative_depth_rejected(self):
        with pytest.raises(ConfigError):
            _controller().observe_pressure(-1)


class _FakeTarget:
    def __init__(self, precision, is_remote):
        self.precision = precision
        self.is_remote = is_remote


_SPACE = [
    _FakeTarget(Precision.FP32, is_remote=True),
    _FakeTarget(Precision.FP16, is_remote=True),
    _FakeTarget(Precision.INT8, is_remote=True),
    _FakeTarget(Precision.FP32, is_remote=False),
    _FakeTarget(Precision.INT8, is_remote=False),
]


class TestMasks:
    def test_normal_tier_has_no_mask(self):
        assert _controller().mask(_SPACE) is None

    def test_reduced_precision_masks_to_int8(self):
        controller = _controller()
        controller.tier = BrownoutTier.REDUCED_PRECISION
        assert list(controller.mask(_SPACE)) \
            == [False, False, True, False, True]

    def test_reduced_precision_falls_back_to_non_fp32(self):
        controller = _controller()
        controller.tier = BrownoutTier.REDUCED_PRECISION
        space = [_FakeTarget(Precision.FP32, True),
                 _FakeTarget(Precision.FP16, False)]
        assert list(controller.mask(space)) == [False, True]

    def test_local_only_masks_to_local_int8(self):
        controller = _controller()
        controller.tier = BrownoutTier.LOCAL_ONLY
        assert list(controller.mask(_SPACE)) \
            == [False, False, False, False, True]

    def test_local_only_falls_back_to_plain_local(self):
        controller = _controller()
        controller.tier = BrownoutTier.LOCAL_ONLY
        space = [_FakeTarget(Precision.FP32, True),
                 _FakeTarget(Precision.FP32, False)]
        assert list(controller.mask(space)) == [False, True]

    def test_mask_never_empties_the_action_space(self):
        controller = _controller()
        controller.tier = BrownoutTier.LOCAL_ONLY
        remote_only = [_FakeTarget(Precision.FP32, True)]
        assert controller.mask(remote_only) is None
