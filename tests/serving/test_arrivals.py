"""Tests for the open-loop arrival generators."""

import pytest

from repro.common import ConfigError, make_rng
from repro.serving.arrivals import (
    Arrival,
    MarkovModulatedArrivals,
    PoissonArrivals,
    TraceArrivals,
    merge_arrivals,
)


def _sorted_by_time(arrivals):
    return all(a.at_ms <= b.at_ms for a, b in zip(arrivals, arrivals[1:]))


class TestArrival:
    def test_validation(self):
        with pytest.raises(ConfigError):
            Arrival(-1.0, "svc")
        with pytest.raises(ConfigError):
            Arrival(float("nan"), "svc")
        with pytest.raises(ConfigError):
            Arrival(0.0, "")


class TestPoisson:
    def test_seeded_stream_is_reproducible(self):
        process = PoissonArrivals("svc", arrivals_per_s=5.0)
        first = process.generate(10_000.0, make_rng(7))
        second = process.generate(10_000.0, make_rng(7))
        assert first == second

    def test_sorted_and_inside_window(self):
        arrivals = PoissonArrivals("svc", arrivals_per_s=5.0) \
            .generate(10_000.0, make_rng(7))
        assert _sorted_by_time(arrivals)
        assert all(0.0 <= a.at_ms < 10_000.0 for a in arrivals)
        assert all(a.name == "svc" for a in arrivals)

    def test_count_tracks_intensity(self):
        # 5/s over 10 s => ~50 arrivals; a loose 2x band keeps this
        # seed-robust while catching unit errors (s vs ms).
        arrivals = PoissonArrivals("svc", arrivals_per_s=5.0) \
            .generate(10_000.0, make_rng(7))
        assert 25 <= len(arrivals) <= 100

    def test_intensity_validated(self):
        with pytest.raises(ConfigError):
            PoissonArrivals("svc", arrivals_per_s=0.0)


class TestMarkovModulated:
    def test_seeded_stream_is_reproducible(self):
        process = MarkovModulatedArrivals("svc", calm_per_s=2.0,
                                          burst_per_s=40.0)
        assert process.generate(30_000.0, make_rng(3)) \
            == process.generate(30_000.0, make_rng(3))

    def test_sorted_and_inside_window(self):
        arrivals = MarkovModulatedArrivals("svc").generate(
            30_000.0, make_rng(3))
        assert _sorted_by_time(arrivals)
        assert all(0.0 <= a.at_ms < 30_000.0 for a in arrivals)

    def test_bursts_raise_the_mean_intensity(self):
        calm = PoissonArrivals("svc", arrivals_per_s=2.0) \
            .generate(60_000.0, make_rng(3))
        bursty = MarkovModulatedArrivals(
            "svc", calm_per_s=2.0, burst_per_s=50.0,
            calm_dwell_ms=5_000.0, burst_dwell_ms=5_000.0,
        ).generate(60_000.0, make_rng(3))
        assert len(bursty) > len(calm)

    def test_validation(self):
        with pytest.raises(ConfigError):
            MarkovModulatedArrivals("svc", calm_per_s=0.0)
        with pytest.raises(ConfigError):
            MarkovModulatedArrivals("svc", burst_dwell_ms=0.0)


class TestTrace:
    def test_replays_sorted_window_subset(self):
        trace = TraceArrivals(((50.0, "b"), (10.0, "a"),
                               Arrival(2_000.0, "c")))
        arrivals = trace.generate(1_000.0)
        assert arrivals == [Arrival(10.0, "a"), Arrival(50.0, "b")]

    def test_deterministic_without_rng(self):
        trace = TraceArrivals(((1.0, "a"),))
        assert trace.generate(10.0) == trace.generate(10.0, make_rng(0))


class TestMerge:
    def test_time_ordered_with_name_tiebreak(self):
        merged = merge_arrivals(
            [Arrival(5.0, "b"), Arrival(9.0, "b")],
            [Arrival(5.0, "a"), Arrival(1.0, "a")],
        )
        assert merged == [Arrival(1.0, "a"), Arrival(5.0, "a"),
                          Arrival(5.0, "b"), Arrival(9.0, "b")]
