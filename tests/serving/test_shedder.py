"""Tests for deadline derivation, shed outcomes, and the shed ledger."""

import numpy as np
import pytest

from repro.common import ConfigError
from repro.serving.shedder import (
    DeadlinePolicy,
    ShedReason,
    SheddedRequest,
    ShedStats,
    min_feasible_latency_ms,
    shed_verdict,
)


def _shed(reason=ShedReason.EXPIRED, **overrides):
    fields = dict(reason=reason, name="svc", at_ms=10.0, shed_at_ms=50.0,
                  deadline_ms=40.0, queue_delay_ms=40.0)
    fields.update(overrides)
    return SheddedRequest(**fields)


class TestSheddedRequest:
    def test_bills_zero_everything(self):
        shed = _shed()
        assert shed.latency_ms == 0.0
        assert shed.energy_mj == 0.0
        assert shed.estimated_energy_mj == 0.0
        assert shed.accuracy_pct == 0.0

    def test_discriminators_and_target_key(self):
        shed = _shed(reason=ShedReason.QUEUE_FULL)
        assert shed.shed and not shed.failed
        assert shed.target_key == "shed/queue_full"
        assert not shed.meets_qos(1e9)

    def test_validation(self):
        with pytest.raises(ConfigError):
            _shed(shed_at_ms=5.0)  # shed before arrival
        with pytest.raises(ConfigError):
            _shed(queue_delay_ms=-1.0)


class TestShedStats:
    def test_partitions_offered_requests(self):
        stats = ShedStats()
        for _ in range(10):
            stats.note_offered()
        for _ in range(7):
            stats.note_served()
        stats.note_shed(ShedReason.EXPIRED)
        stats.note_shed(ShedReason.EXPIRED)
        stats.note_shed(ShedReason.INFEASIBLE)
        assert stats.served + stats.total_sheds == stats.offered
        assert stats.sheds == {"expired": 2, "infeasible": 1}
        assert stats.shed_pct() == pytest.approx(30.0)

    def test_sheds_are_free(self):
        stats = ShedStats()
        stats.note_shed(ShedReason.QUEUE_FULL)
        assert stats.billed_energy_mj == 0.0
        assert stats.as_dict()["billed_energy_mj"] == 0.0

    def test_idle_ledger_reads_zero(self):
        assert ShedStats().shed_pct() == 0.0


class TestDeadlinePolicy:
    def test_default_is_exactly_the_qos_budget(self):
        assert DeadlinePolicy().deadline_ms(100.0, 33.0) == 133.0

    def test_factor_and_slack(self):
        policy = DeadlinePolicy(qos_factor=2.0, slack_ms=10.0)
        assert policy.deadline_ms(100.0, 33.0) == pytest.approx(176.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            DeadlinePolicy(qos_factor=0.0)
        with pytest.raises(ConfigError):
            DeadlinePolicy(slack_ms=-1.0)


class _FakeSweep:
    def __init__(self, latency_ms):
        self.latency_ms = np.asarray(latency_ms)


class TestFeasibilityFloor:
    def test_unmasked_minimum(self):
        assert min_feasible_latency_ms(_FakeSweep([30.0, 10.0, 20.0])) \
            == 10.0

    def test_mask_restricts_the_floor(self):
        sweep = _FakeSweep([30.0, 10.0, 20.0])
        allowed = np.array([True, False, True])
        assert min_feasible_latency_ms(sweep, allowed) == 20.0

    def test_all_false_mask_means_no_mask(self):
        sweep = _FakeSweep([30.0, 10.0, 20.0])
        allowed = np.zeros(3, dtype=bool)
        assert min_feasible_latency_ms(sweep, allowed) == 10.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            min_feasible_latency_ms(_FakeSweep([1.0, 2.0]),
                                    np.array([True]))

    def test_oversized_mask_rejected(self):
        with pytest.raises(ConfigError):
            min_feasible_latency_ms(_FakeSweep([1.0, 2.0]),
                                    np.ones(3, dtype=bool))

    def test_2d_mask_rejected(self):
        """The floor is per-request scalar; a batched (n, targets)
        matrix must be rejected, not silently broadcast."""
        with pytest.raises(ConfigError):
            min_feasible_latency_ms(_FakeSweep([1.0, 2.0]),
                                    np.ones((1, 2), dtype=bool))


class TestShedVerdict:
    """The vectorized drain's classifier mirrors the scalar drain's
    inline checks and the inclusive-deadline convention."""

    def test_servable_inside_budget(self):
        assert shed_verdict(0.0, 100.0, 50.0) is None

    def test_expired_once_strictly_past_deadline(self):
        assert shed_verdict(100.1, 100.0, 0.0) is ShedReason.EXPIRED

    def test_at_deadline_is_not_expired(self):
        # Inclusive deadline: remaining == 0 is still alive; any
        # positive service floor then overshoots => INFEASIBLE, the
        # same verdict the scalar drain reaches at this boundary.
        assert shed_verdict(100.0, 100.0, 0.1) is ShedReason.INFEASIBLE
        assert shed_verdict(100.0, 100.0, 0.0) is None

    def test_floor_landing_exactly_on_deadline_is_kept(self):
        assert shed_verdict(40.0, 100.0, 60.0) is None

    def test_floor_one_step_past_deadline_is_infeasible(self):
        assert shed_verdict(40.0, 100.0, 60.5) is ShedReason.INFEASIBLE

    def test_expired_takes_precedence_over_infeasible(self):
        # Past the deadline both conditions hold; the verdict must be
        # EXPIRED — mid-batch clock movement can convert a drain-start
        # infeasible into an expired, and the ledger must say which.
        assert shed_verdict(200.0, 100.0, 50.0) is ShedReason.EXPIRED
