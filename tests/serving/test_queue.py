"""Tests for the bounded admission queue."""

import pytest

from repro.common import ConfigError
from repro.serving.arrivals import Arrival
from repro.serving.queue import AdmissionQueue, QueuedRequest


def _request(at_ms=0.0, deadline_ms=100.0, name="svc"):
    return QueuedRequest(Arrival(at_ms, name), use_case=None,
                         deadline_ms=deadline_ms)


class TestQueuedRequest:
    def test_deadline_must_follow_arrival(self):
        with pytest.raises(ConfigError):
            _request(at_ms=50.0, deadline_ms=10.0)

    def test_delay_and_remaining_budget(self):
        request = _request(at_ms=10.0, deadline_ms=110.0)
        assert request.queue_delay_ms(40.0) == 30.0
        assert request.queue_delay_ms(5.0) == 0.0  # clock not there yet
        assert request.remaining_ms(40.0) == 70.0
        assert request.remaining_ms(200.0) == -90.0


class TestAdmissionQueue:
    def test_backpressure_at_capacity(self):
        queue = AdmissionQueue(capacity=2)
        assert queue.admit(_request())
        assert queue.admit(_request())
        assert not queue.admit(_request())
        assert (queue.admitted, queue.rejected) == (2, 1)

    def test_unbounded_never_rejects(self):
        queue = AdmissionQueue(capacity=None)
        for _ in range(500):
            assert queue.admit(_request())
        assert not queue.bounded
        assert queue.rejected == 0

    def test_fifo_order_and_peak_depth(self):
        queue = AdmissionQueue(capacity=8)
        requests = [_request(at_ms=float(index)) for index in range(5)]
        for request in requests:
            queue.admit(request)
        assert queue.peak_depth == 5
        assert queue.take_batch(2) == requests[:2]
        assert queue.take_batch() == requests[2:]
        assert queue.depth == 0
        assert queue.peak_depth == 5  # high-water mark sticks

    def test_validation(self):
        with pytest.raises(ConfigError):
            AdmissionQueue(capacity=0)
        with pytest.raises(ConfigError):
            AdmissionQueue().take_batch(0)

    def test_take_batch_from_empty_queue(self):
        """Draining an empty queue is a no-op, bounded or not."""
        assert AdmissionQueue(capacity=4).take_batch() == []
        assert AdmissionQueue(capacity=None).take_batch(16) == []

    def test_take_batch_limit_beyond_depth_pops_everything(self):
        queue = AdmissionQueue(capacity=8)
        requests = [_request(at_ms=float(index)) for index in range(3)]
        for request in requests:
            queue.admit(request)
        assert queue.take_batch(64) == requests
        assert queue.depth == 0
        # The queue is reusable afterwards.
        assert queue.admit(_request())
        assert queue.depth == 1

    def test_take_batch_of_one_preserves_fifo_per_call(self):
        """``batch_max=1`` is the pinned zero-overload path: each call
        pops exactly the FIFO head, one at a time, in arrival order."""
        queue = AdmissionQueue(capacity=8)
        requests = [_request(at_ms=float(index)) for index in range(4)]
        for request in requests:
            queue.admit(request)
        singles = [queue.take_batch(1) for _ in range(4)]
        assert singles == [[request] for request in requests]
        assert queue.take_batch(1) == []
