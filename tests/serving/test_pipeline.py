"""Tests for the serving pipeline: parity, shedding, brownout, accounting.

The two parity properties here are the load-bearing ones:

- ``ServingConfig.disabled()`` reproduces the direct ``handle`` path
  bit-for-bit (same measurements, same learned table);
- the enabled pipeline under zero overload is *also* bit-identical,
  because the shedder and brownout controller draw no RNG and a
  batch of one coalesces to the scalar path.
"""

import pytest

from repro.common import make_rng
from repro.core.service import AutoScaleService
from repro.env.environment import EdgeCloudEnvironment
from repro.env.qos import UseCase, use_case_for
from repro.hardware.devices import build_device
from repro.serving.arrivals import Arrival, PoissonArrivals, TraceArrivals
from repro.serving.brownout import BrownoutConfig
from repro.serving.pipeline import ServingConfig, ServingPipeline
from repro.serving.shedder import DeadlinePolicy


def _service(seed, think_time_ms=0.0):
    env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                               seed=seed, think_time_ms=think_time_ms)
    return AutoScaleService(env, seed=seed)


def _measurements(outcome):
    return (outcome.latency_ms, outcome.energy_mj,
            outcome.estimated_energy_mj, outcome.target_key)


class TestConfig:
    def test_presets(self):
        assert not ServingConfig.disabled().enabled
        fifo = ServingConfig.fifo()
        assert fifo.queue_capacity is None
        assert not fifo.shedding
        assert not fifo.brownout.enabled
        assert not ServingConfig.shed_only().brownout.enabled

    def test_batch_max_validated(self):
        from repro.common import ConfigError
        with pytest.raises(ConfigError):
            ServingConfig(batch_max=0)


class TestDisabledBitIdentity:
    def test_disabled_pipeline_matches_direct_handle(self, zoo):
        """Acceptance: over a seeded 300-request workload the disabled
        pipeline must be indistinguishable from advancing the clock and
        calling ``handle`` directly — measurements and learned table."""
        case = use_case_for(zoo["resnet_50"])
        arrivals = PoissonArrivals(case.name, arrivals_per_s=5.0) \
            .generate(60_000.0, make_rng(11))
        assert len(arrivals) >= 250

        piped = _service(31)
        piped.register(case)
        outcomes = piped.serve(arrivals, ServingConfig.disabled())

        direct = _service(31)
        direct.register(case)
        env = direct.environment
        references = []
        for arrival in arrivals:
            if env.clock.now_ms < arrival.at_ms:
                env.clock.advance(arrival.at_ms - env.clock.now_ms)
            references.append(direct.handle(case.name))

        assert len(outcomes) == len(arrivals)
        for served, reference in zip(outcomes, references):
            assert _measurements(served.outcome) \
                == _measurements(reference)
        assert (piped.engine.qtable.values
                == direct.engine.qtable.values).all()

    def test_disabled_pipeline_keeps_closed_loop_think_time(self, zoo):
        """The disabled path must not silently change the environment's
        clock behaviour — think time stays whatever the env was built
        with."""
        case = use_case_for(zoo["mobilenet_v3"])
        service = _service(7, think_time_ms=150.0)
        service.register(case)
        service.serve([Arrival(0.0, case.name)], ServingConfig.disabled())
        # One request: latency + the 150 ms think time.
        record = service.trace.records[-1]
        assert service.environment.clock.now_ms \
            == pytest.approx(record.latency_ms + 150.0)


class TestZeroOverloadBitIdentity:
    def test_enabled_pipeline_is_bit_identical_when_unstressed(self, zoo):
        """Acceptance: with arrivals so sparse every batch has size one
        and nothing sheds or browns out, the *full* pipeline reproduces
        the direct path bit-for-bit — the machinery is provably inert
        until overload actually happens."""
        case = use_case_for(zoo["resnet_50"])
        arrivals = [Arrival(20_000.0 * index, case.name)
                    for index in range(40)]

        piped = _service(13)
        piped.register(case)
        pipeline = ServingPipeline(piped, ServingConfig())
        outcomes = pipeline.serve(arrivals)

        direct = _service(13)
        direct.register(case)
        env = direct.environment
        references = []
        for arrival in arrivals:
            if env.clock.now_ms < arrival.at_ms:
                env.clock.advance(arrival.at_ms - env.clock.now_ms)
            references.append(direct.handle(case.name))

        assert pipeline.shed_stats.total_sheds == 0
        assert pipeline.status()["brownout_escalations"] == 0
        for served, reference in zip(outcomes, references):
            assert served.delivered
            assert _measurements(served.outcome) \
                == _measurements(reference)
        assert (piped.engine.qtable.values
                == direct.engine.qtable.values).all()


class TestCoalescingParity:
    def test_one_selection_per_group_matches_per_request(self, zoo):
        """Acceptance: coalesced batch decisions must equal what
        per-request selection would have chosen.  With a frozen engine
        selection is deterministic, so the ten requests of one drain
        cycle must all get the single group decision — and that decision
        must match a twin engine selecting once per request."""
        case = use_case_for(zoo["resnet_50"])
        arrivals = [Arrival(0.0, case.name) for _ in range(10)]

        piped = _service(19)
        piped.set_learning(False)
        piped.register(case)
        selections = []
        inner = piped.engine.select_action

        def counting(state, explore=None, allowed=None):
            decision = inner(state, explore=explore, allowed=allowed)
            selections.append(decision)
            return decision

        piped.engine.select_action = counting
        config = ServingConfig(queue_capacity=None, shedding=False,
                               brownout=BrownoutConfig.disabled())
        outcomes = ServingPipeline(piped, config).serve(arrivals)

        # Coalescing: ten requests, one Q-table read.
        assert len(selections) == 1
        assert len(outcomes) == 10

        twin = _service(19)
        twin.set_learning(False)
        twin.register(case)
        twin_env = twin.environment
        observation = twin_env.observe()
        state = twin.engine.observe_state(case.network, observation)
        per_request = [twin.engine.select_action(state)
                       for _ in range(10)]
        expected_key = twin.engine.action_space \
            .target(per_request[0][0]).key
        assert all(decision == per_request[0]
                   for decision in per_request)
        assert all(served.outcome.target_key == expected_key
                   for served in outcomes)


class TestShedding:
    def test_queue_full_backpressure_sheds_deterministically(self, zoo):
        case = use_case_for(zoo["mobilenet_v3"])
        service = _service(5)
        service.register(case)
        config = ServingConfig(queue_capacity=1,
                               brownout=BrownoutConfig.disabled())
        pipeline = ServingPipeline(service, config)
        outcomes = pipeline.serve([Arrival(0.0, case.name)
                                   for _ in range(3)])
        sheds = [o for o in outcomes if o.shed]
        assert len(sheds) == 2
        assert all(o.outcome.reason.value == "queue_full" for o in sheds)
        assert pipeline.queue.rejected == 2

    def test_infeasible_work_is_shed_before_spending_energy(self, zoo):
        """A QoS budget below the fastest nominal latency is provably
        unservable; the shedder must refuse it at zero energy."""
        case = UseCase(name="impossible", network=zoo["mobilenet_v3"],
                       qos_ms=0.01)
        service = _service(5)
        service.register(case)
        pipeline = ServingPipeline(service, ServingConfig())
        outcomes = pipeline.serve([Arrival(0.0, case.name)])
        assert outcomes[0].shed
        assert outcomes[0].outcome.reason.value == "infeasible"
        assert service.trace.records[-1].status == "shed"
        assert service.trace.records[-1].energy_mj == 0.0

    def test_overload_burst_partitions_offered_requests(self, zoo):
        """Under a hopeless burst every offered request is exactly one
        of served/shed, sheds bill zero energy, and expired deadlines
        surface as their own reason."""
        case = use_case_for(zoo["mobilenet_v3"])
        service = _service(5)
        service.register(case)
        pipeline = ServingPipeline(service, ServingConfig(
            brownout=BrownoutConfig.disabled()))
        burst = TraceArrivals(tuple((0.0, case.name)
                                    for _ in range(60)))
        outcomes = pipeline.serve(burst.generate(1_000.0))
        stats = pipeline.shed_stats
        assert stats.offered == 60
        assert stats.served + stats.total_sheds == 60
        assert stats.sheds.get("expired", 0) > 0
        assert stats.billed_energy_mj == 0.0
        assert len(outcomes) == 60
        shed_records = [r for r in service.trace.records
                        if r.status == "shed"]
        assert len(shed_records) == stats.total_sheds
        assert all(r.energy_mj == 0.0 for r in shed_records)


class TestBrownout:
    def test_sustained_pressure_escalates_and_stamps_tiers(self, zoo):
        case = use_case_for(zoo["mobilenet_v3"])
        service = _service(5)
        service.register(case)
        pipeline = ServingPipeline(service, ServingConfig(
            deadline=DeadlinePolicy(qos_factor=50.0)))
        pipeline.serve([Arrival(0.0, case.name) for _ in range(30)])
        status = pipeline.status()
        assert status["brownout_escalations"] >= 1
        tiers = {r.tier for r in service.trace.records}
        assert tiers - {"normal"}, "no record served under a brownout tier"


class TestStatus:
    def test_snapshot_keys(self, zoo):
        case = use_case_for(zoo["mobilenet_v3"])
        service = _service(5)
        service.register(case)
        pipeline = ServingPipeline(service, ServingConfig())
        pipeline.serve([Arrival(0.0, case.name)])
        status = pipeline.status()
        for key in ("queue_depth", "queue_peak_depth", "queue_admitted",
                    "queue_rejected", "brownout_tier",
                    "brownout_escalations", "brownout_deescalations",
                    "sheds"):
            assert key in status
        assert status["queue_depth"] == 0
