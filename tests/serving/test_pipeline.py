"""Tests for the serving pipeline: parity, shedding, brownout, accounting.

The two parity properties here are the load-bearing ones:

- ``ServingConfig.disabled()`` reproduces the direct ``handle`` path
  bit-for-bit (same measurements, same learned table);
- the enabled pipeline under zero overload is *also* bit-identical,
  because the shedder and brownout controller draw no RNG and a
  batch of one coalesces to the scalar path.
"""

import pytest

from repro.common import make_rng
from repro.core.service import AutoScaleService
from repro.env.environment import EdgeCloudEnvironment
from repro.env.qos import UseCase, use_case_for
from repro.hardware.devices import build_device
from repro.serving.arrivals import Arrival, PoissonArrivals, TraceArrivals
from repro.serving.brownout import BrownoutConfig
from repro.serving.pipeline import ServingConfig, ServingPipeline
from repro.serving.shedder import DeadlinePolicy


def _service(seed, think_time_ms=0.0):
    env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                               seed=seed, think_time_ms=think_time_ms)
    return AutoScaleService(env, seed=seed)


def _measurements(outcome):
    return (outcome.latency_ms, outcome.energy_mj,
            outcome.estimated_energy_mj, outcome.target_key)


class TestConfig:
    def test_presets(self):
        assert not ServingConfig.disabled().enabled
        fifo = ServingConfig.fifo()
        assert fifo.queue_capacity is None
        assert not fifo.shedding
        assert not fifo.brownout.enabled
        assert not ServingConfig.shed_only().brownout.enabled

    def test_batch_max_validated(self):
        from repro.common import ConfigError
        with pytest.raises(ConfigError):
            ServingConfig(batch_max=0)


class TestDisabledBitIdentity:
    def test_disabled_pipeline_matches_direct_handle(self, zoo):
        """Acceptance: over a seeded 300-request workload the disabled
        pipeline must be indistinguishable from advancing the clock and
        calling ``handle`` directly — measurements and learned table."""
        case = use_case_for(zoo["resnet_50"])
        arrivals = PoissonArrivals(case.name, arrivals_per_s=5.0) \
            .generate(60_000.0, make_rng(11))
        assert len(arrivals) >= 250

        piped = _service(31)
        piped.register(case)
        outcomes = piped.serve(arrivals, ServingConfig.disabled())

        direct = _service(31)
        direct.register(case)
        env = direct.environment
        references = []
        for arrival in arrivals:
            if env.clock.now_ms < arrival.at_ms:
                env.clock.advance(arrival.at_ms - env.clock.now_ms)
            references.append(direct.handle(case.name))

        assert len(outcomes) == len(arrivals)
        for served, reference in zip(outcomes, references):
            assert _measurements(served.outcome) \
                == _measurements(reference)
        assert (piped.engine.qtable.values
                == direct.engine.qtable.values).all()

    def test_disabled_pipeline_keeps_closed_loop_think_time(self, zoo):
        """The disabled path must not silently change the environment's
        clock behaviour — think time stays whatever the env was built
        with."""
        case = use_case_for(zoo["mobilenet_v3"])
        service = _service(7, think_time_ms=150.0)
        service.register(case)
        service.serve([Arrival(0.0, case.name)], ServingConfig.disabled())
        # One request: latency + the 150 ms think time.
        record = service.trace.records[-1]
        assert service.environment.clock.now_ms \
            == pytest.approx(record.latency_ms + 150.0)


class TestZeroOverloadBitIdentity:
    def test_enabled_pipeline_is_bit_identical_when_unstressed(self, zoo):
        """Acceptance: with arrivals so sparse every batch has size one
        and nothing sheds or browns out, the *full* pipeline reproduces
        the direct path bit-for-bit — the machinery is provably inert
        until overload actually happens."""
        case = use_case_for(zoo["resnet_50"])
        arrivals = [Arrival(20_000.0 * index, case.name)
                    for index in range(40)]

        piped = _service(13)
        piped.register(case)
        pipeline = ServingPipeline(piped, ServingConfig())
        outcomes = pipeline.serve(arrivals)

        direct = _service(13)
        direct.register(case)
        env = direct.environment
        references = []
        for arrival in arrivals:
            if env.clock.now_ms < arrival.at_ms:
                env.clock.advance(arrival.at_ms - env.clock.now_ms)
            references.append(direct.handle(case.name))

        assert pipeline.shed_stats.total_sheds == 0
        assert pipeline.status()["brownout_escalations"] == 0
        for served, reference in zip(outcomes, references):
            assert served.delivered
            assert _measurements(served.outcome) \
                == _measurements(reference)
        assert (piped.engine.qtable.values
                == direct.engine.qtable.values).all()


class TestCoalescingParity:
    def test_one_selection_per_group_matches_per_request(self, zoo):
        """Acceptance: coalesced batch decisions must equal what
        per-request selection would have chosen.  With a frozen engine
        selection is deterministic, so the ten requests of one drain
        cycle must all get the single group decision — and that decision
        must match a twin engine selecting once per request."""
        case = use_case_for(zoo["resnet_50"])
        arrivals = [Arrival(0.0, case.name) for _ in range(10)]

        piped = _service(19)
        piped.set_learning(False)
        piped.register(case)
        selections = []
        inner = piped.engine.select_action
        inner_batch = piped.engine.select_action_batch

        def counting(state, explore=None, allowed=None):
            decision = inner(state, explore=explore, allowed=allowed)
            selections.append(decision)
            return decision

        def counting_batch(states, allowed=None, explore=None):
            decisions = inner_batch(states, allowed=allowed,
                                    explore=explore)
            selections.extend(decisions)
            return decisions

        piped.engine.select_action = counting
        piped.engine.select_action_batch = counting_batch
        config = ServingConfig(queue_capacity=None, shedding=False,
                               brownout=BrownoutConfig.disabled())
        outcomes = ServingPipeline(piped, config).serve(arrivals)

        # Coalescing: ten requests, one Q-table read — whichever drain
        # implementation ran, exactly one group decision was made.
        assert len(selections) == 1
        assert len(outcomes) == 10

        twin = _service(19)
        twin.set_learning(False)
        twin.register(case)
        twin_env = twin.environment
        observation = twin_env.observe()
        state = twin.engine.observe_state(case.network, observation)
        per_request = [twin.engine.select_action(state)
                       for _ in range(10)]
        expected_key = twin.engine.action_space \
            .target(per_request[0][0]).key
        assert all(decision == per_request[0]
                   for decision in per_request)
        assert all(served.outcome.target_key == expected_key
                   for served in outcomes)


class TestShedding:
    def test_queue_full_backpressure_sheds_deterministically(self, zoo):
        case = use_case_for(zoo["mobilenet_v3"])
        service = _service(5)
        service.register(case)
        config = ServingConfig(queue_capacity=1,
                               brownout=BrownoutConfig.disabled())
        pipeline = ServingPipeline(service, config)
        outcomes = pipeline.serve([Arrival(0.0, case.name)
                                   for _ in range(3)])
        sheds = [o for o in outcomes if o.shed]
        assert len(sheds) == 2
        assert all(o.outcome.reason.value == "queue_full" for o in sheds)
        assert pipeline.queue.rejected == 2

    def test_infeasible_work_is_shed_before_spending_energy(self, zoo):
        """A QoS budget below the fastest nominal latency is provably
        unservable; the shedder must refuse it at zero energy."""
        case = UseCase(name="impossible", network=zoo["mobilenet_v3"],
                       qos_ms=0.01)
        service = _service(5)
        service.register(case)
        pipeline = ServingPipeline(service, ServingConfig())
        outcomes = pipeline.serve([Arrival(0.0, case.name)])
        assert outcomes[0].shed
        assert outcomes[0].outcome.reason.value == "infeasible"
        assert service.trace.records[-1].status == "shed"
        assert service.trace.records[-1].energy_mj == 0.0

    def test_overload_burst_partitions_offered_requests(self, zoo):
        """Under a hopeless burst every offered request is exactly one
        of served/shed, sheds bill zero energy, and expired deadlines
        surface as their own reason."""
        case = use_case_for(zoo["mobilenet_v3"])
        service = _service(5)
        service.register(case)
        pipeline = ServingPipeline(service, ServingConfig(
            brownout=BrownoutConfig.disabled()))
        burst = TraceArrivals(tuple((0.0, case.name)
                                    for _ in range(60)))
        outcomes = pipeline.serve(burst.generate(1_000.0))
        stats = pipeline.shed_stats
        assert stats.offered == 60
        assert stats.served + stats.total_sheds == 60
        assert stats.sheds.get("expired", 0) > 0
        assert stats.billed_energy_mj == 0.0
        assert len(outcomes) == 60
        shed_records = [r for r in service.trace.records
                        if r.status == "shed"]
        assert len(shed_records) == stats.total_sheds
        assert all(r.energy_mj == 0.0 for r in shed_records)


class TestDeadlineBoundary:
    """The deadline is inclusive, and both shed checks agree on it.

    These pin the convention documented on ``DeadlinePolicy``: at
    ``remaining == 0`` the deadline is not yet blown (EXPIRED needs a
    strictly negative budget), and a feasibility floor landing exactly
    on the deadline is kept (INFEASIBLE needs a strict overshoot).
    """

    def _drain_one(self, zoo, deadline_offset_ms):
        """Queue one request whose deadline sits at ``now + offset``
        and run a single drain cycle."""
        from repro.serving.queue import QueuedRequest

        case = use_case_for(zoo["mobilenet_v3"])
        service = _service(5)
        service.register(case)
        pipeline = ServingPipeline(service, ServingConfig(
            brownout=BrownoutConfig.disabled()))
        env = service.environment
        env.advance_clock(500.0)  # a nonzero 'now' so negatives exist
        now_ms = env.clock.now_ms
        request = QueuedRequest(
            Arrival(0.0, case.name), case,
            deadline_ms=now_ms + deadline_offset_ms,
        )
        pipeline.queue.admit(request)
        outcomes = []
        pipeline._drain_cycle(outcomes)
        return outcomes[0]

    def _floor_ms(self, zoo):
        """The exact floor `_drain_one`'s drain will compute: a twin
        environment replaying the same seed, clock advance, and first
        observation draw."""
        from repro.serving.shedder import min_feasible_latency_ms

        case = use_case_for(zoo["mobilenet_v3"])
        service = _service(5)
        env = service.environment
        env.advance_clock(500.0)
        sweep = env.estimate_all(case.network, env.observe())
        return min_feasible_latency_ms(sweep)

    def test_remaining_zero_is_not_expired(self, zoo):
        """At exactly the deadline the budget is spent but not blown:
        the request is refused for infeasibility (no positive service
        floor fits a zero budget), never mislabelled EXPIRED."""
        outcome = self._drain_one(zoo, deadline_offset_ms=0.0)
        assert outcome.shed
        assert outcome.outcome.reason.value == "infeasible"

    def test_remaining_barely_negative_is_expired(self, zoo):
        outcome = self._drain_one(zoo, deadline_offset_ms=-1e-6)
        assert outcome.shed
        assert outcome.outcome.reason.value == "expired"

    def test_floor_equal_to_remaining_is_kept(self, zoo):
        """A fastest-target estimate landing exactly on the (inclusive)
        deadline must be served, not shed."""
        floor_ms = self._floor_ms(zoo)
        outcome = self._drain_one(zoo, deadline_offset_ms=floor_ms)
        assert outcome.delivered

    def test_floor_past_remaining_is_infeasible(self, zoo):
        floor_ms = self._floor_ms(zoo)
        outcome = self._drain_one(zoo,
                                  deadline_offset_ms=floor_ms * 0.999)
        assert outcome.shed
        assert outcome.outcome.reason.value == "infeasible"


class TestResilientTraceStamping:
    """The resilient path's queueing columns survive the rolling window.

    Regression for the ``records[-1]`` re-stamp: with a tiny
    ``trace_limit`` the tail of the buffer is not reliably the resilient
    request's own record, so the columns must be written at record
    construction (threaded through ``_handle_resilient``), never patched
    onto whatever happens to sit at the tail.
    """

    def test_queue_columns_land_on_the_resilient_record(self, zoo):
        from repro.faults import ResiliencePolicy

        case = use_case_for(zoo["mobilenet_v3"])
        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   seed=3, think_time_ms=0.0)
        service = AutoScaleService(env, seed=3, trace_limit=4,
                                   resilience=ResiliencePolicy())
        service.register(case)
        arrivals = [Arrival(float(index), case.name)
                    for index in range(12)]
        outcomes = ServingPipeline(service, ServingConfig()).serve(
            arrivals)
        assert len(outcomes) == 12
        # Every surviving record is internally consistent: a served
        # record's queue delay matches its outcome's, and the rolling
        # window never produced a mis-stamped neighbour.
        served = {id(o.outcome): o for o in outcomes if o.delivered}
        assert served, "expected delivered requests"
        for record in service.trace.records:
            if record.status == "shed":
                continue
            assert record.queue_delay_ms >= 0.0

    def test_resilient_single_request_columns_exact(self, zoo):
        from repro.faults import ResiliencePolicy

        case = use_case_for(zoo["mobilenet_v3"])
        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   seed=3, think_time_ms=0.0)
        service = AutoScaleService(env, seed=3, trace_limit=1,
                                   resilience=ResiliencePolicy())
        service.register(case)
        # trace_limit=1: the buffer holds at most one record, the
        # degenerate case where tail-patching is most fragile.
        outcomes = ServingPipeline(service, ServingConfig()).serve(
            [Arrival(0.0, case.name)])
        assert len(outcomes) == 1
        assert len(service.trace.records) == 1
        record = service.trace.records[-1]
        assert record.queue_delay_ms == outcomes[0].queue_delay_ms
        assert record.tier == outcomes[0].tier


class TestStaleFeasibilityRefresh:
    """The INFEASIBLE floor is judged against current conditions.

    Regression for the stale drain-start sweep: once earlier requests in
    a batch have advanced the clock, the feasibility check must sample a
    fresh observation instead of reusing load/RSSI from a point that no
    longer exists — while a batch of one (the pinned zero-overload path)
    never re-observes.
    """

    def test_batch_of_one_never_reobserves(self, zoo):
        """Under zero overload the refresh must be provably inert: the
        enabled pipeline draws exactly as many observations as the
        direct path (drain sample + the engine's Q-update next-state
        sample per request), none for feasibility."""
        case = use_case_for(zoo["mobilenet_v3"])
        arrivals = [Arrival(0.0, case.name),
                    Arrival(50_000.0, case.name)]

        def count_observes(service, config):
            counted = []
            inner = service.environment.observe

            def counting():
                observation = inner()
                counted.append(observation.now_ms)
                return observation

            service.environment.observe = counting
            ServingPipeline(service, config).serve(arrivals)
            return counted

        piped = _service(5)
        piped.register(case)
        direct = _service(5)
        direct.register(case)
        assert count_observes(piped, ServingConfig()) \
            == count_observes(direct, ServingConfig.disabled())

    def test_late_batch_requests_use_fresh_observations(self, zoo):
        """The *scalar* drain must re-observe once the clock moves —
        it is the reference implementation under dynamic scenarios,
        where a stale sample would hide load/RSSI changes."""
        case = use_case_for(zoo["mobilenet_v3"])
        service = _service(5)
        service.register(case)
        env = service.environment
        feasibility_times = []
        inner_estimate_all = env.estimate_all

        def tracking(network, observation, use_cache=True):
            feasibility_times.append(observation.now_ms)
            return inner_estimate_all(network, observation,
                                      use_cache=use_cache)

        env.estimate_all = tracking
        pipeline = ServingPipeline(service, ServingConfig(
            brownout=BrownoutConfig.disabled(), vectorized=False))
        pipeline.serve([Arrival(0.0, case.name) for _ in range(6)])
        executed = [t for t in feasibility_times]
        # The first check uses the drain-start sample; once the clock
        # has moved, later checks must not reuse its timestamp.
        assert executed[0] == 0.0
        later = [t for t in executed[1:] if t > 0.0]
        assert later, "late-batch feasibility checks never refreshed"

    def test_vectorized_drain_sweeps_once_per_network(self, zoo):
        """The vectorized drain computes one feasibility sweep per
        distinct network at the drain-start observation — no per-request
        re-sweeps — while shedding exactly what the scalar drain sheds
        (value-identical floors under a static scenario)."""
        case = use_case_for(zoo["mobilenet_v3"])
        service = _service(5)
        service.register(case)
        env = service.environment
        sweep_times = []
        inner_estimate_all = env.estimate_all

        def tracking(network, observation, use_cache=True):
            sweep_times.append(observation.now_ms)
            return inner_estimate_all(network, observation,
                                      use_cache=use_cache)

        env.estimate_all = tracking
        pipeline = ServingPipeline(service, ServingConfig(
            brownout=BrownoutConfig.disabled()))
        outcomes = pipeline.serve(
            [Arrival(0.0, case.name) for _ in range(6)])
        # One batch of six, one network: exactly one feasibility sweep,
        # taken at the drain-start instant.
        assert sweep_times == [0.0]

        twin = _service(5)
        twin.register(case)
        reference = ServingPipeline(twin, ServingConfig(
            brownout=BrownoutConfig.disabled(), vectorized=False,
        )).serve([Arrival(0.0, case.name) for _ in range(6)])
        assert [type(o.outcome).__name__ for o in outcomes] \
            == [type(o.outcome).__name__ for o in reference]


class TestBrownout:
    def test_sustained_pressure_escalates_and_stamps_tiers(self, zoo):
        case = use_case_for(zoo["mobilenet_v3"])
        service = _service(5)
        service.register(case)
        pipeline = ServingPipeline(service, ServingConfig(
            deadline=DeadlinePolicy(qos_factor=50.0)))
        pipeline.serve([Arrival(0.0, case.name) for _ in range(30)])
        status = pipeline.status()
        assert status["brownout_escalations"] >= 1
        tiers = {r.tier for r in service.trace.records}
        assert tiers - {"normal"}, "no record served under a brownout tier"


class TestStatus:
    def test_snapshot_keys(self, zoo):
        case = use_case_for(zoo["mobilenet_v3"])
        service = _service(5)
        service.register(case)
        pipeline = ServingPipeline(service, ServingConfig())
        pipeline.serve([Arrival(0.0, case.name)])
        status = pipeline.status()
        for key in ("queue_depth", "queue_peak_depth", "queue_admitted",
                    "queue_rejected", "brownout_tier",
                    "brownout_escalations", "brownout_deescalations",
                    "sheds"):
            assert key in status
        assert status["queue_depth"] == 0
