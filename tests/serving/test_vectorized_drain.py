"""Bit-parity of the vectorized (SoA) drain against the scalar drain.

The acceptance property of the vectorized decision plane: with
``vectorized=True`` (the default) every observable — outcome
measurements, trace rows, Q-table bytes, visit counts, both RNG
streams' bit-generator states, the virtual clock, and the shed ledger —
is byte-equal to a twin run forced onto the scalar reference drain with
``vectorized=False``.  Each scenario below targets one branch of the
vectorized sweep: lazy training selection, the frozen batched-argmax
prefill, brownout/nominal selection, multi-network batches, and
mid-batch expiry.

The use-case-keyed coalescing regression (two use cases sharing a
(network, state) bucket under brownout) is pinned here too, for both
drain implementations.
"""

import numpy as np
import pytest

from repro.core.service import AutoScaleService
from repro.env.environment import EdgeCloudEnvironment
from repro.env.qos import UseCase, use_case_for
from repro.hardware.devices import build_device
from repro.models.quantization import Precision
from repro.serving.arrivals import Arrival, PoissonArrivals
from repro.serving.brownout import BrownoutConfig
from repro.serving.pipeline import ServingConfig, ServingPipeline
from repro.serving.shedder import DeadlinePolicy


def _service(seed):
    env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                               seed=seed)
    return AutoScaleService(env, seed=seed)


def _outcome_signature(outcome):
    signature = (type(outcome).__name__, outcome.latency_ms,
                 outcome.energy_mj, outcome.target_key)
    if outcome.shed:
        signature += (outcome.reason.value, outcome.shed_at_ms,
                      outcome.deadline_ms, outcome.queue_delay_ms)
    return signature


def _run(vectorized, seed, cases, arrivals, config, learning=True,
         pretrain=0):
    service = _service(seed)
    for case in cases:
        service.register(case)
    if pretrain:
        for case in cases:
            service.engine.run(case, pretrain)
        service.environment.reset()
    if not learning:
        service.set_learning(False)
    pipeline = ServingPipeline(
        service, ServingConfig(**{**config, "vectorized": vectorized}))
    outcomes = pipeline.serve(list(arrivals))
    return service, pipeline, outcomes


def _assert_bit_identical(fast, reference):
    service_a, pipeline_a, outcomes_a = fast
    service_b, pipeline_b, outcomes_b = reference
    assert len(outcomes_a) == len(outcomes_b)
    for a, b in zip(outcomes_a, outcomes_b):
        assert _outcome_signature(a.outcome) \
            == _outcome_signature(b.outcome)
        assert (a.queue_delay_ms, a.tier) == (b.queue_delay_ms, b.tier)
    assert list(service_a.trace.records) == list(service_b.trace.records)
    table_a, table_b = service_a.engine.qtable, service_b.engine.qtable
    assert table_a.values.tobytes() == table_b.values.tobytes()
    assert (table_a.visits == table_b.visits).all()
    assert table_a.update_count == table_b.update_count
    assert service_a.engine.rng.bit_generator.state \
        == service_b.engine.rng.bit_generator.state
    assert service_a.environment.rng.bit_generator.state \
        == service_b.environment.rng.bit_generator.state
    assert service_a.environment.clock.now_ms \
        == service_b.environment.clock.now_ms
    assert pipeline_a.shed_stats.as_dict() \
        == pipeline_b.shed_stats.as_dict()


def _parity(seed, cases_of, arrivals_of, config, learning=True,
            pretrain=0):
    runs = [
        _run(vectorized, seed, cases_of(), arrivals_of(), config,
             learning=learning, pretrain=pretrain)
        for vectorized in (True, False)
    ]
    return runs[0], runs[1]


class TestDrainParity:
    def test_training_overload_burst(self, zoo):
        """Training keeps selection lazy per group; a hopeless burst
        mixes serves with EXPIRED and INFEASIBLE sheds mid-batch."""
        case = use_case_for(zoo["mobilenet_v3"])
        fast, reference = _parity(
            11,
            lambda: [case],
            lambda: [Arrival(0.0, case.name) for _ in range(60)],
            dict(brownout=BrownoutConfig.disabled()),
        )
        assert fast[1].shed_stats.total_sheds > 0
        _assert_bit_identical(fast, reference)

    def test_training_epsilon_explorations_replay_exactly(self, zoo):
        """A multi-drain stream with exploration on: the optimistic
        rollback must land every epsilon draw where the scalar
        interleave puts it."""
        case = use_case_for(zoo["mobilenet_v3"])

        def arrivals():
            return PoissonArrivals(case.name, arrivals_per_s=5.0) \
                .generate(30_000.0, np.random.default_rng(3))

        fast, reference = _parity(
            13,
            lambda: [case],
            arrivals,
            dict(queue_capacity=None,
                 deadline=DeadlinePolicy(qos_factor=50.0),
                 brownout=BrownoutConfig.disabled()),
        )
        assert any(record.explored
                   for record in reference[0].trace.records)
        _assert_bit_identical(fast, reference)

    def test_frozen_engine_uses_batched_argmax(self, zoo):
        """Frozen serving takes the upfront select_action_batch path —
        and must still match the scalar drain byte for byte."""
        case = use_case_for(zoo["mobilenet_v3"])
        fast, reference = _parity(
            17,
            lambda: [case],
            lambda: [Arrival(0.0, case.name) for _ in range(40)],
            dict(queue_capacity=None,
                 deadline=DeadlinePolicy(qos_factor=200.0),
                 brownout=BrownoutConfig.disabled()),
            learning=False,
            pretrain=30,
        )
        _assert_bit_identical(fast, reference)

    def test_brownout_tiers_match(self, zoo):
        """Escalated tiers route through the nominal-cost selection in
        both drains."""
        case = use_case_for(zoo["mobilenet_v3"])
        fast, reference = _parity(
            23,
            lambda: [case],
            lambda: [Arrival(0.0, case.name) for _ in range(30)],
            dict(queue_capacity=None,
                 deadline=DeadlinePolicy(qos_factor=100.0)),
        )
        assert reference[1].brownout.escalations >= 1
        _assert_bit_identical(fast, reference)

    def test_multi_network_batches(self, zoo):
        """Heterogeneous batches: three networks interleaved at the
        same instants — per-network floors, states, and coalescing
        groups all diverge inside one drain."""
        def cases():
            return [use_case_for(zoo["mobilenet_v3"]),
                    use_case_for(zoo["resnet_50"]),
                    use_case_for(zoo["mobilebert"])]

        def arrivals():
            names = [case.name for case in cases()]
            return [Arrival(200.0 * burst, names[index % 3])
                    for burst in range(6)
                    for index in range(9)]

        fast, reference = _parity(
            29,
            cases,
            arrivals,
            dict(queue_capacity=None,
                 deadline=DeadlinePolicy(qos_factor=30.0),
                 brownout=BrownoutConfig.disabled()),
        )
        _assert_bit_identical(fast, reference)

    def test_batch_max_one_stays_pinned(self, zoo):
        """The pinned zero-overload path: batch_max=1 must serve
        identically on both drains (and never shed under no load)."""
        case = use_case_for(zoo["mobilenet_v3"])
        fast, reference = _parity(
            31,
            lambda: [case],
            lambda: [Arrival(30_000.0 * index, case.name)
                     for index in range(10)],
            dict(batch_max=1),
        )
        assert fast[1].shed_stats.total_sheds == 0
        _assert_bit_identical(fast, reference)


class TestUseCaseKeyedCoalescing:
    """Regression: shadow/brownout selections depend on the use case's
    QoS budget, so the drain's coalescing key must include the use-case
    name on those branches — two use cases sharing one (network, state)
    bucket must each get *their own* degraded action."""

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_browned_bucket_not_shared_across_use_cases(self, zoo,
                                                        vectorized):
        network = zoo["mobilenet_v3"]
        probe = _service(41)
        env = probe.environment
        observation = env.observe()
        sweep = env.estimate_all(network, observation)
        latencies = np.asarray(sweep.latency_ms)
        energies = np.asarray(sweep.energy_mj)
        space = probe.engine.action_space
        int8 = np.flatnonzero(np.array(
            [target.precision is Precision.INT8 for target in space],
            dtype=bool))
        cheapest = int(int8[np.argmin(energies[int8])])
        fastest_ms = float(latencies[int8].min())
        assert latencies[cheapest] > fastest_ms, \
            "need a cheapest-but-not-fastest INT8 target for this probe"
        # A budget between the fastest INT8 latency and the cheapest
        # INT8 target's latency: 'tight' must be steered away from the
        # global cheapest, 'loose' must land exactly on it.
        tight_ms = (fastest_ms + float(latencies[cheapest])) / 2.0
        fits = int8[latencies[int8] <= tight_ms]
        expected_tight = int(fits[np.argmin(energies[fits])])
        assert expected_tight != cheapest

        loose = UseCase(name="loose", network=network, qos_ms=1e6)
        tight = UseCase(name="tight", network=network, qos_ms=tight_ms)
        service = _service(41)
        service.register(loose)
        service.register(tight)
        pipeline = ServingPipeline(service, ServingConfig(
            queue_capacity=None, shedding=False,
            brownout=BrownoutConfig(enter_depth=1, exit_depth=0),
            vectorized=vectorized,
        ))
        # 'loose' sorts first, so it seeds the (network, state) bucket;
        # before the fix 'tight' inherited its action.
        pipeline.serve([Arrival(0.0, loose.name),
                        Arrival(0.0, tight.name)])
        by_name = {record.use_case: record
                   for record in service.trace.records}
        assert by_name["loose"].tier == "reduced_precision"
        assert by_name["loose"].target_key == space.target(cheapest).key
        assert by_name["tight"].target_key \
            == space.target(expected_tight).key
