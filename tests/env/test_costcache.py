"""Tests for the batched nominal-cost engine (repro.env.costcache)."""

import numpy as np
import pytest

from repro.baselines.oracle import OptOracle
from repro.common import UnknownKeyError, make_rng
from repro.env.costcache import NominalCostEngine
from repro.env.environment import EdgeCloudEnvironment
from repro.env.executor import NoiseConfig
from repro.env.observation import Observation
from repro.env.qos import use_case_for
from repro.hardware.devices import PHONE_NAMES, build_device

#: Relative divergence budget between the vectorized sweep and scalar
#: ``estimate`` — the acceptance criterion is 1e-9; the arrays only
#: reorder float64 sums, so the observed gap is ~1e-15.
PARITY_RTOL = 1e-9

_RESULT_FIELDS = ("latency_ms", "energy_mj", "estimated_energy_mj",
                  "accuracy_pct")


def _random_observation(rng):
    return Observation(
        cpu_util=float(rng.uniform(0.0, 0.95)),
        mem_util=float(rng.uniform(0.0, 0.95)),
        rssi_wlan_dbm=float(rng.uniform(-90.0, -50.0)),
        rssi_p2p_dbm=float(rng.uniform(-90.0, -50.0)),
    )


class TestSweepParity:
    def test_matches_scalar_estimate_per_target(self, env, zoo):
        """Every sweep column agrees with scalar estimate <= 1e-9 rel."""
        rng = make_rng(11)
        networks = [zoo[name] for name in
                    ("mobilenet_v3", "inception_v1", "resnet_50",
                     "mobilebert")]
        for network in networks:
            for _ in range(3):
                observation = _random_observation(rng)
                sweep = env.estimate_all(network, observation,
                                         use_cache=False)
                for index, target in enumerate(env.targets()):
                    scalar = env.estimate(network, target, observation)
                    for field in _RESULT_FIELDS:
                        want = getattr(scalar, field)
                        have = float(getattr(sweep, field)[index])
                        assert have == pytest.approx(want,
                                                     rel=PARITY_RTOL), (
                            f"{network.name} {target.key} {field}"
                        )

    def test_result_for_reconstructs_execution_result(self, env, zoo):
        observation = env.observe()
        network = zoo["mobilenet_v3"]
        sweep = env.estimate_all(network, observation, use_cache=False)
        target = env.targets()[7]
        scalar = env.estimate(network, target, observation)
        batched = sweep.result_for(target)
        assert batched.target_key == scalar.target_key
        for field in _RESULT_FIELDS:
            assert getattr(batched, field) == pytest.approx(
                getattr(scalar, field), rel=PARITY_RTOL
            )

    def test_index_of_unknown_target_raises(self, env, zoo):
        sweep = env.estimate_all(zoo["mobilenet_v3"], env.observe())
        foreign = build_device("galaxy_s10e")
        foreign_env = EdgeCloudEnvironment(foreign, seed=0)
        stranger = next(
            target for target in foreign_env.targets()
            if target.key not in {t.key for t in env.targets()}
        )
        with pytest.raises(UnknownKeyError):
            sweep.index_of(stranger)


class TestExecuteEstimateParity:
    @pytest.mark.parametrize("device_name", (*PHONE_NAMES, "mi8pro_npu"))
    def test_noise_free_execute_agrees_with_estimate(self, zoo,
                                                     device_name):
        """NoiseConfig(0,0,0,0) + idle scenario: execute == estimate on
        latency for every target of every device."""
        env = EdgeCloudEnvironment(
            build_device(device_name), scenario="S1",
            noise=NoiseConfig(0.0, 0.0, 0.0, 0.0), seed=5,
        )
        network = zoo["mobilenet_v3"]
        observation = env.observe()
        sweep = env.estimate_all(network, observation, use_cache=False)
        for index, target in enumerate(env.targets()):
            executed = env.execute(network, target, observation)
            estimated = env.estimate(network, target, observation)
            assert executed.latency_ms == estimated.latency_ms, target.key
            assert executed.latency_ms == pytest.approx(
                float(sweep.latency_ms[index]), rel=PARITY_RTOL
            )


class TestOracleEquivalence:
    def test_batched_oracle_selects_identical_targets(self, env, zoo):
        use_cases = [use_case_for(zoo[name])
                     for name in ("mobilenet_v3", "resnet_50",
                                  "mobilebert")]
        batched = OptOracle(cache=False)
        scalar = OptOracle(cache=False, batched=False)
        rng = make_rng(23)
        for use_case in use_cases:
            for _ in range(5):
                observation = _random_observation(rng)
                assert (batched.select(env, use_case, observation).key
                        == scalar.select(env, use_case, observation).key)

    def test_argbest_subset_matches_full_search_semantics(self, env, zoo):
        use_case = use_case_for(zoo["inception_v1"])
        sweep = env.estimate_all(use_case.network, env.observe(),
                                 use_cache=False)
        best = sweep.argbest(use_case)
        all_indices = list(range(len(sweep)))
        assert sweep.argbest(use_case, indices=all_indices) == best
        assert sweep.argbest(use_case, indices=[best]) == best
        assert sweep.argbest(use_case, indices=[]) is None


class TestCache:
    def test_hit_returns_identical_sweep(self, env, zoo):
        network = zoo["mobilenet_v3"]
        observation = env.observe()
        first = env.estimate_all(network, observation)
        again = env.estimate_all(network, observation)
        assert again is first
        stats = env.cost_engine.stats()
        assert stats.hits == 1 and stats.misses == 1
        target = env.targets()[0]
        assert (first.result_for(target).energy_mj
                == again.result_for(target).energy_mj)

    def test_nearby_observation_hits_same_bin(self, env, zoo):
        network = zoo["mobilenet_v3"]
        base = Observation(cpu_util=0.400, mem_util=0.200,
                           rssi_wlan_dbm=-60.0, rssi_p2p_dbm=-60.0)
        nudged = Observation(cpu_util=0.401, mem_util=0.199,
                             rssi_wlan_dbm=-60.1, rssi_p2p_dbm=-59.9)
        first = env.estimate_all(network, base)
        assert env.estimate_all(network, nudged) is first

    def test_use_cache_false_bypasses_memoization(self, env, zoo):
        network = zoo["mobilenet_v3"]
        observation = env.observe()
        env.estimate_all(network, observation, use_cache=False)
        stats = env.cost_engine.stats()
        assert stats.hits == 0 and stats.misses == 0 and stats.size == 0

    def test_reset_with_seed_invalidates(self, env, zoo):
        network = zoo["mobilenet_v3"]
        observation = env.observe()
        env.estimate_all(network, observation)
        assert env.cost_engine.stats().size == 1
        env.reset(seed=99)
        assert env.cost_engine.stats().size == 0
        env.estimate_all(network, observation)
        assert env.cost_engine.stats().misses == 2

    def test_reset_without_seed_keeps_cache(self, env, zoo):
        env.estimate_all(zoo["mobilenet_v3"], env.observe())
        env.reset()
        assert env.cost_engine.stats().size == 1

    def test_scenario_swap_invalidates(self, env, zoo):
        env.estimate_all(zoo["mobilenet_v3"], env.observe())
        assert env.cost_engine.stats().size == 1
        env.scenario = "S2"
        assert env.cost_engine.stats().size == 0

    def test_lru_eviction_is_bounded(self, mi8pro_device, zoo):
        env = EdgeCloudEnvironment(mi8pro_device, seed=0)
        engine = NominalCostEngine(env, cache_size=2)
        network = zoo["mobilenet_v3"]
        rssi_levels = (-50.0, -60.0, -70.0)
        for rssi_dbm in rssi_levels:
            engine.sweep(network, Observation(rssi_wlan_dbm=rssi_dbm))
        stats = engine.stats()
        assert stats.size == 2
        assert stats.evictions == 1
        assert stats.misses == len(rssi_levels)

    def test_sweep_arrays_are_read_only(self, env, zoo):
        sweep = env.estimate_all(zoo["mobilenet_v3"], env.observe())
        with pytest.raises((ValueError, RuntimeError)):
            sweep.energy_mj[0] = 1.0

    def test_hit_ratio(self, env, zoo):
        network = zoo["mobilenet_v3"]
        observation = env.observe()
        env.estimate_all(network, observation)
        env.estimate_all(network, observation)
        env.estimate_all(network, observation)
        assert env.cost_engine.stats().hit_ratio == pytest.approx(2 / 3)


class TestNetworkTables:
    def test_lazy_per_network_build(self, env, zoo):
        observation = env.observe()
        env.estimate_all(zoo["mobilenet_v3"], observation)
        env.estimate_all(zoo["resnet_50"], observation)
        # Distinct networks occupy distinct cache keys (no collisions).
        assert env.cost_engine.stats().size == 2

    def test_sweep_covers_whole_action_space(self, env, zoo):
        sweep = env.estimate_all(zoo["mobilenet_v3"], env.observe())
        assert len(sweep) == len(env.targets())
        assert np.all(np.isfinite(sweep.energy_mj))
        assert np.all(sweep.latency_ms > 0)
