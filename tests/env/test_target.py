"""Tests for execution targets and action-space enumeration."""

import pytest

from repro.common import ConfigError
from repro.env.target import ExecutionTarget, Location, enumerate_targets
from repro.hardware.devices import build_device
from repro.models.quantization import Precision


class TestExecutionTarget:
    def test_key_local_includes_vf(self):
        target = ExecutionTarget(Location.LOCAL, "gpu", Precision.FP16, 3)
        assert target.key == "local/gpu/fp16/vf3"

    def test_key_remote_has_no_vf(self):
        target = ExecutionTarget(Location.CLOUD, "gpu", Precision.FP32)
        assert target.key == "cloud/gpu/fp32"

    def test_remote_with_dvfs_rejected(self):
        with pytest.raises(ConfigError):
            ExecutionTarget(Location.CLOUD, "gpu", Precision.FP32, 2)

    def test_unknown_role_rejected(self):
        with pytest.raises(ConfigError):
            ExecutionTarget(Location.LOCAL, "fpga", Precision.FP32, 0)

    def test_npu_role_accepted(self):
        """The Section V-C extension: NPU/TPU actions."""
        target = ExecutionTarget(Location.LOCAL, "npu", Precision.INT8, 0)
        assert target.key == "local/npu/int8/vf0"

    def test_is_remote(self):
        assert ExecutionTarget(Location.CLOUD, "cpu",
                               Precision.FP32).is_remote
        assert not ExecutionTarget(Location.LOCAL, "cpu", Precision.FP32,
                                   0).is_remote


class TestEnumeration:
    def test_mi8pro_has_papers_66_actions(self):
        """Section V-C / footnote 8: ~66 actions on the Mi8Pro.

        CPU 23 steps x {FP32, INT8} + GPU 7 steps x {FP32, FP16}
        + DSP + cloud CPU/GPU + connected CPU/GPU/DSP = 66.
        """
        targets = enumerate_targets(
            build_device("mi8pro"), build_device("cloud_server"),
            build_device("galaxy_tab_s6"),
        )
        assert len(targets) == 66

    def test_moto_action_count(self):
        # CPU 15x2 + GPU 6x2 + cloud 2 + connected 3 = 47.
        targets = enumerate_targets(
            build_device("moto_x_force"), build_device("cloud_server"),
            build_device("galaxy_tab_s6"),
        )
        assert len(targets) == 47

    def test_without_dvfs_one_step_per_slot(self):
        targets = enumerate_targets(
            build_device("mi8pro"), build_device("cloud_server"),
            build_device("galaxy_tab_s6"), with_dvfs=False,
        )
        # CPU 2 + GPU 2 + DSP 1 + cloud 2 + connected 3 = 10.
        assert len(targets) == 10

    def test_without_quantization(self):
        targets = enumerate_targets(
            build_device("mi8pro"), build_device("cloud_server"),
            build_device("galaxy_tab_s6"), with_dvfs=False,
            with_quantization=False,
        )
        keys = {t.key for t in targets}
        assert "local/cpu/int8/vf22" not in keys
        assert "local/cpu/fp32/vf22" in keys
        # The DSP is INT8-only, so it survives unquantized enumeration.
        assert "local/dsp/int8/vf0" in keys

    def test_no_remotes(self):
        targets = enumerate_targets(build_device("mi8pro"))
        assert all(t.location is Location.LOCAL for t in targets)

    def test_remote_targets_run_fp32_except_dsp(self):
        targets = enumerate_targets(
            build_device("mi8pro"), build_device("cloud_server"),
            build_device("galaxy_tab_s6"),
        )
        for target in targets:
            if target.is_remote and target.role != "dsp":
                assert target.precision is Precision.FP32

    def test_keys_unique(self):
        targets = enumerate_targets(
            build_device("mi8pro"), build_device("cloud_server"),
            build_device("galaxy_tab_s6"),
        )
        keys = [t.key for t in targets]
        assert len(set(keys)) == len(keys)
