"""Tests for the workload generators."""

import pytest

from repro.common import ConfigError, make_rng
from repro.core.engine import AutoScale
from repro.env.environment import EdgeCloudEnvironment
from repro.env.qos import use_case_for
from repro.env.workload import (
    InferenceRequest,
    MixedWorkload,
    PoissonWorkload,
    SessionWorkload,
    SteadyWorkload,
    run_workload,
)
from repro.hardware.devices import build_device


@pytest.fixture()
def case(zoo):
    return use_case_for(zoo["mobilenet_v3"])


@pytest.fixture()
def other_case(zoo):
    return use_case_for(zoo["resnet_50"])


class TestSteadyWorkload:
    def test_count_and_spacing(self, case):
        requests = SteadyWorkload(case, interval_ms=100.0).generate(
            1000.0)
        assert len(requests) == 10
        gaps = [b.at_ms - a.at_ms for a, b in zip(requests, requests[1:])]
        assert all(g == pytest.approx(100.0) for g in gaps)

    def test_bad_interval(self, case):
        with pytest.raises(ConfigError):
            SteadyWorkload(case, interval_ms=0.0)


class TestPoissonWorkload:
    def test_rate_approximately_met(self, case):
        requests = PoissonWorkload(case, arrivals_per_s=5.0).generate(
            600_000.0, rng=make_rng(0))
        # 5/s over 600 s -> ~3000 requests.
        assert 2700 <= len(requests) <= 3300

    def test_sorted_times_within_horizon(self, case):
        requests = PoissonWorkload(case, arrivals_per_s=2.0).generate(
            10_000.0, rng=make_rng(1))
        times = [r.at_ms for r in requests]
        assert times == sorted(times)
        assert all(0 <= t < 10_000.0 for t in times)

    def test_deterministic_given_seed(self, case):
        a = PoissonWorkload(case, 2.0).generate(10_000.0, make_rng(3))
        b = PoissonWorkload(case, 2.0).generate(10_000.0, make_rng(3))
        assert [r.at_ms for r in a] == [r.at_ms for r in b]


class TestSessionWorkload:
    def test_bursty_structure(self, case):
        requests = SessionWorkload(
            case, session_ms=5_000.0, idle_ms=30_000.0,
            in_session_interval_ms=250.0,
        ).generate(300_000.0, rng=make_rng(2))
        gaps = sorted(b.at_ms - a.at_ms
                      for a, b in zip(requests, requests[1:]))
        # Short in-session gaps and long idle gaps must both appear.
        assert gaps[0] < 2_000.0
        assert gaps[-1] > 10_000.0


class TestMixedWorkload:
    def test_merges_sorted(self, case, other_case):
        mixed = MixedWorkload((
            SteadyWorkload(case, interval_ms=300.0),
            SteadyWorkload(other_case, interval_ms=700.0),
        ))
        requests = mixed.generate(5_000.0)
        times = [r.at_ms for r in requests]
        assert times == sorted(times)
        names = {r.use_case.name for r in requests}
        assert len(names) == 2

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            MixedWorkload(())


class TestRunWorkload:
    def test_drives_engine_and_clock(self, case):
        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   seed=0)
        engine = AutoScale(env, seed=0)
        workload = SteadyWorkload(case, interval_ms=2_000.0)
        steps = run_workload(engine, workload, 20_000.0)
        assert len(steps) == 10
        # The clock advanced past the last arrival.
        assert env.clock.now_ms >= 18_000.0

    def test_frozen_mode(self, case):
        env = EdgeCloudEnvironment(build_device("mi8pro"), scenario="S1",
                                   seed=0)
        engine = AutoScale(env, seed=0)
        engine.run(case, 80)
        before = engine.qtable.update_count
        run_workload(engine, SteadyWorkload(case, 1_000.0), 5_000.0,
                     learn=False)
        assert engine.qtable.update_count == before

    def test_negative_request_time_rejected(self, case):
        with pytest.raises(ConfigError):
            InferenceRequest(-1.0, case)
