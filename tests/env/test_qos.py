"""Tests for QoS targets and use cases (Section V-B)."""

import pytest

from repro.common import ConfigError
from repro.env.qos import (
    QOS_NON_STREAMING_MS,
    QOS_STREAMING_MS,
    QOS_TRANSLATION_MS,
    UseCase,
    use_case_for,
    use_cases_for_zoo,
)


class TestPaperTargets:
    def test_non_streaming_is_50ms(self):
        assert QOS_NON_STREAMING_MS == 50.0

    def test_streaming_is_30fps(self):
        assert QOS_STREAMING_MS == pytest.approx(33.33, abs=0.01)

    def test_translation_is_100ms(self):
        assert QOS_TRANSLATION_MS == 100.0


class TestUseCaseFor:
    def test_vision_non_streaming(self, zoo):
        case = use_case_for(zoo["inception_v1"])
        assert case.qos_ms == 50.0
        assert case.name.endswith("non_streaming")

    def test_vision_streaming(self, zoo):
        case = use_case_for(zoo["ssd_mobilenet_v1"], streaming=True)
        assert case.qos_ms == pytest.approx(1000.0 / 30.0)

    def test_translation_ignores_streaming(self, zoo):
        case = use_case_for(zoo["mobilebert"], streaming=True)
        assert case.qos_ms == 100.0

    def test_accuracy_target_carried(self, zoo):
        case = use_case_for(zoo["resnet_50"], accuracy_target=65.0)
        assert case.accuracy_target == 65.0


class TestUseCase:
    def test_meets_qos(self, zoo):
        case = use_case_for(zoo["resnet_50"])
        assert case.meets_qos(49.9)
        assert not case.meets_qos(50.1)

    def test_meets_accuracy_none_target(self, zoo):
        case = use_case_for(zoo["resnet_50"])
        assert case.meets_accuracy(1.0)

    def test_meets_accuracy_threshold(self, zoo):
        case = use_case_for(zoo["resnet_50"], accuracy_target=70.0)
        assert case.meets_accuracy(70.0)
        assert not case.meets_accuracy(69.9)

    def test_invalid_qos_rejected(self, zoo):
        with pytest.raises(ConfigError):
            UseCase("x", zoo["resnet_50"], qos_ms=0.0)

    def test_invalid_accuracy_target_rejected(self, zoo):
        with pytest.raises(ConfigError):
            UseCase("x", zoo["resnet_50"], qos_ms=50.0,
                    accuracy_target=120.0)


class TestZooHelper:
    def test_all_networks_covered(self, zoo):
        cases = use_cases_for_zoo(zoo)
        assert len(cases) == len(zoo)
        assert [c.network.name for c in cases] == sorted(zoo)
