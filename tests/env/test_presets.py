"""Tests for the composite scenario presets."""

import pytest

from repro.common import make_rng
from repro.env.presets import PRESET_BUILDERS, build_preset


class TestRoster:
    def test_four_presets(self):
        assert set(PRESET_BUILDERS) == {
            "commute", "office", "couch_gaming", "subway",
        }

    def test_unknown_preset(self):
        with pytest.raises(KeyError, match="commute"):
            build_preset("beach")

    def test_builders_fresh(self):
        assert build_preset("commute") is not build_preset("commute")


class TestSemantics:
    def test_couch_gaming_combines_cpu_and_memory_load(self):
        load, wlan, _ = build_preset("couch_gaming").sample(make_rng(0))
        assert load.cpu_util >= 0.75
        assert load.mem_util >= 0.5
        assert wlan > -60.0

    def test_office_browser_bursts(self):
        scenario = build_preset("office")
        rng = make_rng(1)
        cpu = [scenario.sample(rng, t * 500.0)[0].cpu_util
               for t in range(40)]
        assert max(cpu) > 0.5
        assert min(cpu) < 0.4

    def test_subway_blacks_out_periodically(self):
        scenario = build_preset("subway")
        rng = make_rng(2)
        in_tunnel = scenario.sample(rng, now_ms=1_000.0)[1]
        above = scenario.sample(rng, now_ms=60_000.0)[1]
        assert in_tunnel == -100.0
        assert above > -100.0
        # Even above ground the subway Wi-Fi is weak on average.
        assert above <= -70.0

    def test_subway_has_no_usable_peer(self):
        _, _, p2p = build_preset("subway").sample(make_rng(3))
        assert p2p <= -80.0

    def test_commute_signal_drifts(self):
        scenario = build_preset("commute")
        rng = make_rng(4)
        samples = [scenario.sample(rng, t * 1_000.0)[1]
                   for t in range(60)]
        assert max(samples) - min(samples) > 5.0

    def test_environment_accepts_presets(self, mi8pro_device):
        from repro.env.environment import EdgeCloudEnvironment

        env = EdgeCloudEnvironment(mi8pro_device,
                                   scenario=build_preset("office"),
                                   seed=0)
        observation = env.observe()
        assert 0.0 <= observation.cpu_util <= 1.0
