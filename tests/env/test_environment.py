"""Tests for the EdgeCloudEnvironment."""

import pytest

from repro.common import ConfigError
from repro.env.environment import EdgeCloudEnvironment
from repro.env.target import ExecutionTarget, Location
from repro.hardware.devices import build_device
from repro.models.quantization import Precision


class TestConstruction:
    def test_defaults_attach_cloud_and_tablet(self, env):
        assert env.cloud is not None
        assert env.connected is not None

    def test_scenario_by_name(self, mi8pro_device):
        env = EdgeCloudEnvironment(mi8pro_device, scenario="S4")
        assert env.scenario.name == "S4"

    def test_cloud_can_be_removed(self, mi8pro_device):
        env = EdgeCloudEnvironment(mi8pro_device, cloud=False)
        assert env.cloud is None
        assert all(t.location is not Location.CLOUD
                   for t in env.targets())

    def test_removing_both_remotes_rejected(self, mi8pro_device):
        with pytest.raises(ConfigError):
            EdgeCloudEnvironment(mi8pro_device, cloud=False,
                                 connected=False)


class TestObserve:
    def test_s1_observation_is_quiescent(self, env):
        obs = env.observe()
        assert obs.cpu_util == 0.0
        assert obs.mem_util == 0.0
        assert obs.rssi_wlan_dbm > -80.0

    def test_observation_carries_clock(self, env, zoo, mobilenet_case):
        env.execute(mobilenet_case.network, env.targets()[0])
        obs = env.observe()
        assert obs.now_ms > 0.0

    def test_reset_rewinds_clock(self, env, mobilenet_case):
        env.execute(mobilenet_case.network, env.targets()[0])
        env.reset()
        assert env.clock.now_ms == 0.0


class TestExecute:
    def test_execute_advances_clock(self, env, mobilenet_case):
        before = env.clock.now_ms
        result = env.execute(mobilenet_case.network, env.targets()[0])
        assert env.clock.now_ms >= before + result.latency_ms

    def test_estimate_is_deterministic_and_clockless(self, env,
                                                     mobilenet_case):
        obs = env.observe()
        target = env.targets()[0]
        before = env.clock.now_ms
        a = env.estimate(mobilenet_case.network, target, obs)
        b = env.estimate(mobilenet_case.network, target, obs)
        assert a.latency_ms == b.latency_ms
        assert env.clock.now_ms == before

    def test_execute_noisy_around_estimate(self, env, mobilenet_case):
        obs = env.observe()
        target = env.targets()[0]
        nominal = env.estimate(mobilenet_case.network, target, obs)
        measured = env.execute(mobilenet_case.network, target, obs)
        assert measured.latency_ms == pytest.approx(nominal.latency_ms,
                                                    rel=0.35)

    def test_cloud_execution(self, env, resnet_case):
        target = ExecutionTarget(Location.CLOUD, "gpu", Precision.FP32)
        result = env.execute(resnet_case.network, target)
        assert result.target_key == "cloud/gpu/fp32"
        assert "remote_ms" in result.detail

    def test_connected_execution(self, env, mobilenet_case):
        target = ExecutionTarget(Location.CONNECTED, "dsp", Precision.INT8)
        result = env.execute(mobilenet_case.network, target)
        assert result.target_key == "connected/dsp/int8"

    def test_missing_remote_rejected(self, mi8pro_device, mobilenet_case):
        env = EdgeCloudEnvironment(mi8pro_device, connected=False)
        target = ExecutionTarget(Location.CONNECTED, "dsp",
                                 Precision.INT8)
        with pytest.raises(ConfigError):
            env.execute(mobilenet_case.network, target)


class TestSeeding:
    def test_same_seed_same_trajectory(self, mi8pro_device,
                                       mobilenet_case):
        def run(seed):
            env = EdgeCloudEnvironment(build_device("mi8pro"),
                                       scenario="D3", seed=seed)
            target = env.targets()[0]
            return [env.execute(mobilenet_case.network, target).energy_mj
                    for _ in range(5)]

        assert run(42) == run(42)
        assert run(42) != run(43)


class TestLayerGranularity:
    def test_execute_split(self, env, zoo):
        net = zoo["inception_v1"]
        local = ExecutionTarget(Location.LOCAL, "cpu", Precision.FP32,
                                env.device.soc.cpu.num_vf_steps - 1)
        remote = ExecutionTarget(Location.CLOUD, "gpu", Precision.FP32)
        result = env.execute_split(net, len(net.layers) // 2, local,
                                   remote)
        assert result.latency_ms > 0

    def test_execute_pipelined(self, env, zoo):
        net = zoo["mobilenet_v3"]
        cpu = ExecutionTarget(Location.LOCAL, "cpu", Precision.INT8,
                              env.device.soc.cpu.num_vf_steps - 1)
        result = env.execute_pipelined(net, [(len(net.layers), cpu)])
        assert result.target_key.startswith("mosaic[")
