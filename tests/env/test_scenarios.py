"""Tests for the Table-IV environments."""

import pytest

from repro.common import make_rng
from repro.env.scenarios import (
    DYNAMIC_SCENARIOS,
    SCENARIO_NAMES,
    STATIC_SCENARIOS,
    build_scenario,
)


class TestRoster:
    def test_table_iv_names(self):
        assert set(SCENARIO_NAMES) == {
            "S1", "S2", "S3", "S4", "S5", "D1", "D2", "D3", "D4",
        }

    def test_static_dynamic_partition(self):
        assert set(STATIC_SCENARIOS) == {"S1", "S2", "S3", "S4", "S5"}
        assert set(DYNAMIC_SCENARIOS) == {"D1", "D2", "D3", "D4"}

    def test_dynamic_flag(self):
        for name in STATIC_SCENARIOS:
            assert not build_scenario(name).dynamic
        for name in DYNAMIC_SCENARIOS:
            assert build_scenario(name).dynamic

    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            build_scenario("S9")


class TestSemantics:
    def test_s1_is_quiescent(self):
        load, wlan, p2p = build_scenario("S1").sample(make_rng(0))
        assert load.is_idle
        assert wlan > -80.0 and p2p > -80.0

    def test_s2_cpu_intensive(self):
        load, _, _ = build_scenario("S2").sample(make_rng(0))
        assert load.cpu_util >= 0.75

    def test_s3_memory_intensive(self):
        load, _, _ = build_scenario("S3").sample(make_rng(0))
        assert load.mem_util >= 0.75

    def test_s4_weak_wifi_only(self):
        _, wlan, p2p = build_scenario("S4").sample(make_rng(0))
        assert wlan <= -80.0
        assert p2p > -80.0

    def test_s5_weak_p2p_only(self):
        _, wlan, p2p = build_scenario("S5").sample(make_rng(0))
        assert wlan > -80.0
        assert p2p <= -80.0

    def test_d3_signal_varies(self):
        scenario = build_scenario("D3")
        rng = make_rng(1)
        samples = {round(scenario.sample(rng)[1], 3) for _ in range(50)}
        assert len(samples) > 10

    def test_d4_corunner_switches(self):
        scenario = build_scenario("D4")
        rng = make_rng(2)
        early = scenario.sample(rng, now_ms=1_000.0)[0]
        late = scenario.sample(rng, now_ms=61_000.0)[0]
        # Music player (light) first minute, browser (bursty) next.
        assert early.cpu_util != late.cpu_util

    def test_builders_return_fresh_instances(self):
        assert build_scenario("S1") is not build_scenario("S1")
