"""Tests for the execution simulator (local/remote/partitioned)."""

import pytest

from repro.common import ConfigError, make_rng
from repro.env.executor import (
    NoiseConfig,
    local_execution,
    partitioned_execution,
    pipelined_local_execution,
    remote_execution,
)
from repro.env.target import ExecutionTarget, Location
from repro.hardware.devices import build_device, cloud_server
from repro.interference.corunner import CoRunnerLoad
from repro.interference.model import InterferenceModel
from repro.models.accuracy import DEFAULT_ACCURACY
from repro.models.quantization import Precision
from repro.wireless.profiles import default_wifi


@pytest.fixture()
def device():
    return build_device("mi8pro")


@pytest.fixture()
def interference(device):
    return InterferenceModel(thermal=device.soc.thermal)


@pytest.fixture()
def quiet():
    return CoRunnerLoad()


def _local(role="cpu", precision=Precision.FP32, vf=-1):
    return ExecutionTarget(Location.LOCAL, role, precision, vf)


class TestLocalExecution:
    def test_deterministic_without_rng(self, device, interference, quiet,
                                       zoo):
        net = zoo["mobilenet_v3"]
        a = local_execution(device, net, _local(), quiet, interference,
                            DEFAULT_ACCURACY)
        b = local_execution(device, net, _local(), quiet, interference,
                            DEFAULT_ACCURACY)
        assert a.latency_ms == b.latency_ms
        assert a.energy_mj == b.energy_mj

    def test_estimate_equals_truth_without_noise(self, device,
                                                 interference, quiet, zoo):
        result = local_execution(device, zoo["mobilenet_v3"], _local(),
                                 quiet, interference, DEFAULT_ACCURACY)
        assert result.energy_mj == pytest.approx(
            result.estimated_energy_mj
        )

    def test_noise_perturbs_measurements(self, device, interference,
                                         quiet, zoo):
        rng = make_rng(0)
        a = local_execution(device, zoo["mobilenet_v3"], _local(), quiet,
                            interference, DEFAULT_ACCURACY, rng=rng)
        b = local_execution(device, zoo["mobilenet_v3"], _local(), quiet,
                            interference, DEFAULT_ACCURACY, rng=rng)
        assert a.latency_ms != b.latency_ms

    def test_int8_faster_than_fp32_on_cpu(self, device, interference,
                                          quiet, zoo):
        net = zoo["inception_v1"]
        fp32 = local_execution(device, net, _local(), quiet, interference,
                               DEFAULT_ACCURACY)
        int8 = local_execution(device, net,
                               _local(precision=Precision.INT8), quiet,
                               interference, DEFAULT_ACCURACY)
        assert int8.latency_ms < fp32.latency_ms
        assert int8.energy_mj < fp32.energy_mj

    def test_lower_vf_slower_for_same_target(self, device, interference,
                                             quiet, zoo):
        net = zoo["mobilenet_v3"]
        top = local_execution(device, net, _local(vf=-1), quiet,
                              interference, DEFAULT_ACCURACY)
        low = local_execution(device, net, _local(vf=0), quiet,
                              interference, DEFAULT_ACCURACY)
        assert low.latency_ms > top.latency_ms

    def test_interference_slows_and_costs(self, device, interference,
                                          zoo):
        net = zoo["mobilenet_v3"]
        quiet_result = local_execution(device, net, _local(),
                                       CoRunnerLoad(), interference,
                                       DEFAULT_ACCURACY)
        busy_result = local_execution(
            device, net, _local(), CoRunnerLoad(cpu_util=0.9,
                                                mem_util=0.3),
            interference, DEFAULT_ACCURACY,
        )
        assert busy_result.latency_ms > 1.5 * quiet_result.latency_ms
        assert busy_result.energy_mj > quiet_result.energy_mj

    def test_contention_power_surcharge_hits_truth_only(self, device,
                                                        interference, zoo):
        busy = local_execution(
            device, zoo["mobilenet_v3"], _local(),
            CoRunnerLoad(cpu_util=0.0, mem_util=0.9), interference,
            DEFAULT_ACCURACY,
        )
        # The estimator's pre-measured power tables miss the co-runner's
        # bus traffic, so truth > estimate (the 7.3% MAPE source).
        assert busy.energy_mj > busy.estimated_energy_mj

    def test_accuracy_from_table(self, device, interference, quiet, zoo):
        result = local_execution(device, zoo["mobilenet_v3"],
                                 _local(precision=Precision.INT8), quiet,
                                 interference, DEFAULT_ACCURACY)
        assert result.accuracy_pct == DEFAULT_ACCURACY.lookup(
            "mobilenet_v3", Precision.INT8
        )

    def test_remote_target_rejected(self, device, interference, quiet,
                                    zoo):
        with pytest.raises(ConfigError):
            local_execution(device, zoo["mobilenet_v3"],
                            ExecutionTarget(Location.CLOUD, "gpu",
                                            Precision.FP32),
                            quiet, interference, DEFAULT_ACCURACY)


class TestRemoteExecution:
    def _run(self, zoo, net="resnet_50", rssi=-55.0, load=None,
             interference=None):
        device = build_device("mi8pro")
        target = ExecutionTarget(Location.CLOUD, "gpu", Precision.FP32)
        return remote_execution(
            device, cloud_server(), zoo[net], target, default_wifi(),
            rssi, DEFAULT_ACCURACY, load=load, interference=interference,
        )

    def test_latency_decomposition(self, zoo):
        result = self._run(zoo)
        detail = result.detail
        assert result.latency_ms == pytest.approx(
            detail["tx_ms"] + detail["rx_ms"] + detail["rtt_ms"]
            + detail["remote_ms"]
        )

    def test_weak_signal_slower_and_costlier(self, zoo):
        strong = self._run(zoo, rssi=-55.0)
        weak = self._run(zoo, rssi=-86.0)
        assert weak.latency_ms > strong.latency_ms
        assert weak.energy_mj > strong.energy_mj

    def test_tiny_input_cheap_to_ship(self, zoo):
        """MobileBERT's token input makes cloud offload dominant."""
        bert = self._run(zoo, net="mobilebert")
        vision = self._run(zoo, net="resnet_50")
        assert bert.detail["tx_ms"] < vision.detail["tx_ms"]

    def test_corunner_slows_transmission(self, zoo):
        device = build_device("mi8pro")
        model = InterferenceModel(thermal=device.soc.thermal)
        quiet = self._run(zoo, load=CoRunnerLoad(), interference=model)
        busy = self._run(zoo, load=CoRunnerLoad(cpu_util=0.9),
                         interference=model)
        assert busy.detail["tx_ms"] > quiet.detail["tx_ms"]

    def test_local_target_rejected(self, zoo):
        device = build_device("mi8pro")
        with pytest.raises(ConfigError):
            remote_execution(device, cloud_server(), zoo["resnet_50"],
                             _local(), default_wifi(), -55.0,
                             DEFAULT_ACCURACY)


class TestPartitionedExecution:
    def _run(self, zoo, point, net="inception_v1", load=None):
        device = build_device("mi8pro")
        local = ExecutionTarget(Location.LOCAL, "cpu", Precision.FP32,
                                device.soc.cpu.num_vf_steps - 1)
        remote = ExecutionTarget(Location.CLOUD, "gpu", Precision.FP32)
        return partitioned_execution(
            device, cloud_server(), zoo[net], point, local, remote,
            default_wifi(), -55.0,
            load if load is not None else CoRunnerLoad(),
            InterferenceModel(thermal=device.soc.thermal),
            DEFAULT_ACCURACY,
        )

    def test_split_at_end_equals_local(self, zoo):
        net = zoo["inception_v1"]
        result = self._run(zoo, len(net.layers))
        assert result.target_key.startswith("local/cpu")

    def test_split_at_zero_equals_remote(self, zoo):
        result = self._run(zoo, 0)
        assert result.target_key == "cloud/gpu/fp32"

    def test_corunner_slows_split_radio_path(self, zoo):
        """Regression: the split path must pay transmission_slowdown.

        The NeuroSurgeon radio path used to ignore co-runner contention
        entirely, making splits spuriously cheap under S2/S3."""
        net = zoo["inception_v1"]
        point = len(net.layers) // 2
        quiet = self._run(zoo, point)
        busy = self._run(zoo, point, load=CoRunnerLoad(cpu_util=0.9,
                                                       mem_util=0.3))
        assert busy.detail["tx_ms"] > quiet.detail["tx_ms"]
        assert busy.latency_ms > quiet.latency_ms

    def test_split_at_zero_matches_remote_under_load(self, zoo):
        """Regression: the degenerate split@0 must forward load and
        interference — it used to be cheaper than the identical
        whole-model offload under a co-runner."""
        device = build_device("mi8pro")
        load = CoRunnerLoad(cpu_util=0.8, mem_util=0.4)
        interference = InterferenceModel(thermal=device.soc.thermal)
        remote_target = ExecutionTarget(Location.CLOUD, "gpu",
                                        Precision.FP32)
        local = ExecutionTarget(Location.LOCAL, "cpu", Precision.FP32,
                                device.soc.cpu.num_vf_steps - 1)
        split = partitioned_execution(
            device, cloud_server(), zoo["inception_v1"], 0, local,
            remote_target, default_wifi(), -55.0, load, interference,
            DEFAULT_ACCURACY,
        )
        whole = remote_execution(
            device, cloud_server(), zoo["inception_v1"], remote_target,
            default_wifi(), -55.0, DEFAULT_ACCURACY,
            load=load, interference=interference,
        )
        assert split.latency_ms == whole.latency_ms
        assert split.energy_mj == whole.energy_mj
        assert split.estimated_energy_mj == whole.estimated_energy_mj

    def test_mid_split_combines_both(self, zoo):
        net = zoo["inception_v1"]
        result = self._run(zoo, len(net.layers) // 2)
        assert result.detail["local_ms"] > 0
        assert result.detail["remote_ms"] > 0
        assert "split@" in result.target_key

    def test_early_split_ships_more_than_late(self, zoo):
        early = self._run(zoo, 2)
        late = self._run(zoo, 60)
        assert early.detail["wire_bytes"] > late.detail["wire_bytes"]


class TestPipelinedExecution:
    def _segments(self, device, net, split):
        dsp = ExecutionTarget(Location.LOCAL, "dsp", Precision.INT8, 0)
        cpu = ExecutionTarget(Location.LOCAL, "cpu", Precision.INT8,
                              device.soc.cpu.num_vf_steps - 1)
        return [(split, dsp), (len(net.layers) - split, cpu)]

    def test_covers_all_layers_or_rejects(self, zoo, device):
        net = zoo["mobilenet_v3"]
        bad = self._segments(device, net, 10)[:1]
        with pytest.raises(ConfigError):
            pipelined_local_execution(
                device, net, bad, CoRunnerLoad(),
                InterferenceModel(thermal=device.soc.thermal),
                DEFAULT_ACCURACY,
            )

    def test_hop_overhead_charged(self, zoo, device):
        net = zoo["mobilenet_v3"]
        interference = InterferenceModel(thermal=device.soc.thermal)
        split = pipelined_local_execution(
            device, net, self._segments(device, net, 20), CoRunnerLoad(),
            interference, DEFAULT_ACCURACY,
        )
        cpu_only = pipelined_local_execution(
            device, net,
            [(len(net.layers),
              ExecutionTarget(Location.LOCAL, "cpu", Precision.INT8,
                              device.soc.cpu.num_vf_steps - 1))],
            CoRunnerLoad(), interference, DEFAULT_ACCURACY,
        )
        assert split.detail["segments"] == 2.0
        assert cpu_only.detail["segments"] == 1.0

    def test_accuracy_is_worst_precision(self, zoo, device):
        net = zoo["mobilenet_v3"]
        result = pipelined_local_execution(
            device, net, self._segments(device, net, 20), CoRunnerLoad(),
            InterferenceModel(thermal=device.soc.thermal),
            DEFAULT_ACCURACY,
        )
        assert result.accuracy_pct == DEFAULT_ACCURACY.lookup(
            "mobilenet_v3", Precision.INT8
        )

    def test_remote_segment_rejected(self, zoo, device):
        net = zoo["mobilenet_v3"]
        cloud = ExecutionTarget(Location.CLOUD, "gpu", Precision.FP32)
        with pytest.raises(ConfigError):
            pipelined_local_execution(
                device, net, [(len(net.layers), cloud)], CoRunnerLoad(),
                InterferenceModel(thermal=device.soc.thermal),
                DEFAULT_ACCURACY,
            )


class TestNoiseConfig:
    def test_negative_sigma_rejected(self):
        with pytest.raises(ConfigError):
            NoiseConfig(latency_sigma=-0.1)
