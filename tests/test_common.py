"""Tests for repro.common utilities."""

import math

import numpy as np
import pytest

from repro.common import (
    ConfigError,
    ReproError,
    SimulationError,
    Stopwatch,
    bytes_to_mbits,
    clamp,
    make_rng,
    mbits_to_bytes,
    mj_to_joules,
    ms_to_seconds,
    ppw_from_energy,
)


class TestErrors:
    def test_config_error_is_repro_error(self):
        assert issubclass(ConfigError, ReproError)

    def test_simulation_error_is_repro_error(self):
        assert issubclass(SimulationError, ReproError)


class TestMakeRng:
    def test_seeded_rng_is_deterministic(self):
        a = make_rng(7).random()
        b = make_rng(7).random()
        assert a == b

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestUnitConversions:
    def test_mj_to_joules(self):
        assert mj_to_joules(1500.0) == 1.5

    def test_ms_to_seconds(self):
        assert ms_to_seconds(250.0) == 0.25

    def test_mbits_bytes_roundtrip(self):
        assert bytes_to_mbits(mbits_to_bytes(3.2)) == pytest.approx(3.2)

    def test_one_mbit_is_125000_bytes(self):
        assert mbits_to_bytes(1.0) == 125_000.0


class TestPpw:
    def test_ppw_is_reciprocal_energy(self):
        # 100 mJ per inference -> 10 inferences per joule.
        assert ppw_from_energy(100.0) == pytest.approx(10.0)

    def test_lower_energy_means_higher_ppw(self):
        assert ppw_from_energy(50.0) > ppw_from_energy(100.0)

    def test_rejects_non_positive_energy(self):
        with pytest.raises(ConfigError):
            ppw_from_energy(0.0)


class TestClamp:
    def test_inside_interval(self):
        assert clamp(0.5, 0.0, 1.0) == 0.5

    def test_below(self):
        assert clamp(-3.0, 0.0, 1.0) == 0.0

    def test_above(self):
        assert clamp(7.0, 0.0, 1.0) == 1.0

    def test_empty_interval_rejected(self):
        with pytest.raises(ConfigError):
            clamp(0.5, 2.0, 1.0)


class TestStopwatch:
    def test_advance_accumulates(self):
        clock = Stopwatch()
        clock.advance(10.0)
        clock.advance(5.5)
        assert clock.now_ms == pytest.approx(15.5)

    def test_negative_advance_rejected(self):
        with pytest.raises(ConfigError):
            Stopwatch().advance(-1.0)

    def test_nan_advance_rejected(self):
        with pytest.raises(ConfigError):
            Stopwatch().advance(math.nan)

    def test_reset(self):
        clock = Stopwatch()
        clock.advance(100.0)
        clock.reset()
        assert clock.now_ms == 0.0
