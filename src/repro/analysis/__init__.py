"""repro.analysis — repo-specific static analysis and runtime contracts.

Two halves, one purpose: keep the unit/seeding/exception conventions the
simulator's fidelity rests on from silently rotting.

- **reprolint** (:mod:`~repro.analysis.rules`, :mod:`~repro.analysis.runner`,
  the ``repro-lint`` CLI): an AST pass over ``src/repro`` enforcing
  RL001 unit-suffix discipline, RL002 ``make_rng``-only seeding, RL003
  float-equality bans, RL004 the ``ReproError`` exception taxonomy,
  RL005 mutable defaults, and RL006 dataclass validation.  Run it with
  ``python -m repro.analysis src/repro``.
- **flow** (:mod:`~repro.analysis.flow`, ``repro-lint --flow``): a
  whole-program pass over the project import/call graph enforcing RL101
  cross-module unit propagation, RL102 determinism taint into the
  simulation core, RL103 virtual-clock write funnels, and RL104 the
  architecture layer contracts — ratcheted against a committed baseline
  and reportable as text, JSON, or SARIF.
- **contracts** (:mod:`~repro.analysis.contracts`): runtime validators for
  the physical invariants behind equations (1)-(4) — non-negative power,
  positive latency, bounded utilization and RSSI, finite Q-values —
  active by default under pytest.

See ``docs/static_analysis.md`` for the rule catalogue with examples.
"""

from repro.analysis.allowlist import (
    DEFAULT_ALLOWLIST_PATH,
    Allowlist,
    load_allowlist,
)
from repro.analysis.contracts import (
    checked,
    contracts_enabled,
    ensure_duration_ms,
    ensure_energy_mj,
    ensure_finite,
    ensure_latency_ms,
    ensure_power_mw,
    ensure_q_value,
    ensure_rssi_dbm,
    ensure_utilization,
)
from repro.analysis.flow import (
    APPROVED_CLOCK_FUNNELS,
    DEFAULT_BASELINE_PATH,
    FlowBaseline,
    FlowReport,
    PACKAGE_LAYERS,
    Project,
    analyze_paths,
    analyze_project,
    load_baseline,
)
from repro.analysis.rules import RULES, Rule
from repro.analysis.runner import (
    LintReport,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.analysis.violations import Violation

__all__ = [
    "DEFAULT_ALLOWLIST_PATH",
    "Allowlist",
    "load_allowlist",
    "checked",
    "contracts_enabled",
    "ensure_duration_ms",
    "ensure_energy_mj",
    "ensure_finite",
    "ensure_latency_ms",
    "ensure_power_mw",
    "ensure_q_value",
    "ensure_rssi_dbm",
    "ensure_utilization",
    "APPROVED_CLOCK_FUNNELS",
    "DEFAULT_BASELINE_PATH",
    "FlowBaseline",
    "FlowReport",
    "PACKAGE_LAYERS",
    "Project",
    "analyze_paths",
    "analyze_project",
    "load_baseline",
    "RULES",
    "Rule",
    "LintReport",
    "lint_file",
    "lint_paths",
    "lint_source",
    "Violation",
]
