"""File discovery and aggregation for reprolint."""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import List, Tuple

from repro.analysis.allowlist import Allowlist, load_allowlist
from repro.analysis.rules import run_rules
from repro.analysis.violations import Violation
from repro.common import ConfigError

__all__ = ["LintReport", "iter_python_files", "lint_source", "lint_file",
           "lint_paths"]

#: Directory names that never contain linted sources.
_SKIPPED_DIRS = frozenset({"__pycache__", ".git", "build", "dist"})


@dataclass(frozen=True)
class LintReport:
    """The outcome of one lint run.

    ``violations`` are the live findings; ``suppressed`` are findings an
    allowlist entry grandfathered; ``unused_entries`` are allowlist lines
    that matched nothing (stale — the suppressed name was fixed or
    removed, so the line must be deleted).  ``ok`` is the CI gate
    condition and requires both lists empty: the allowlist only shrinks.
    """

    violations: Tuple[Violation, ...] = ()
    suppressed: Tuple[Violation, ...] = ()
    unused_entries: Tuple[Tuple[str, str], ...] = ()
    files_checked: int = 0
    allowlist_source: str = "<none>"

    @property
    def ok(self):
        return not self.violations and not self.unused_entries

    def format(self):
        lines = [violation.format() for violation in self.violations]
        for rule, identifier in self.unused_entries:
            lines.append(
                f"{self.allowlist_source}: stale allowlist entry "
                f"'{rule} {identifier}' — no finding matches it; delete "
                f"the line"
            )
        lines.append(
            f"reprolint: {len(self.violations)} violation(s), "
            f"{len(self.suppressed)} suppressed by allowlist "
            f"({self.allowlist_source}), {len(self.unused_entries)} stale "
            f"allowlist entr(y/ies), {self.files_checked} file(s) checked"
        )
        return "\n".join(lines)


def iter_python_files(paths):
    """Yield every ``.py`` file under ``paths`` in sorted order.

    Build artifacts (``*.egg-info``, ``__pycache__``, ``build``/``dist``)
    are skipped; a path that does not exist is a :class:`ConfigError`.
    """
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise ConfigError(f"lint path does not exist: {path}")
        if path.is_file():
            yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            parts = set(candidate.parts)
            if parts & _SKIPPED_DIRS:
                continue
            if any(part.endswith(".egg-info") for part in candidate.parts):
                continue
            yield candidate


def lint_source(text, path="<string>", rule_ids=None):
    """Lint one source string; the workhorse behind the rule self-tests."""
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as error:
        return [Violation(
            path=str(path), line=error.lineno or 0, col=error.offset or 0,
            rule="RL000", name="",
            message=f"file does not parse: {error.msg}",
        )]
    return run_rules(tree, str(path), rule_ids=rule_ids)


def lint_file(path, rule_ids=None):
    """Lint one file from disk."""
    return lint_source(Path(path).read_text(), path=str(path),
                       rule_ids=rule_ids)


def lint_paths(paths, allowlist=None, rule_ids=None):
    """Lint a tree and split findings by the allowlist.

    Args:
        paths: files or directories to walk.
        allowlist: an :class:`Allowlist`, a path to one, ``None`` for the
            committed default, or ``False`` to lint with no allowlist.
        rule_ids: optional subset of rule ids to run.
    """
    if allowlist is False:
        allowlist = Allowlist(source="<disabled>")
    elif not isinstance(allowlist, Allowlist):
        allowlist = load_allowlist(allowlist)
    live: List[Violation] = []
    suppressed: List[Violation] = []
    files_checked = 0
    for path in iter_python_files(paths):
        files_checked += 1
        for violation in lint_file(path, rule_ids=rule_ids):
            if allowlist.allows(violation):
                suppressed.append(violation)
            else:
                live.append(violation)
    used = {(violation.rule, violation.name) for violation in suppressed}
    unused = [entry for entry in sorted(allowlist.entries)
              if entry not in used]
    if rule_ids is not None:
        # A subset run gathered no evidence about the other rules'
        # entries, so only entries for selected rules can be stale.
        selected = set(rule_ids)
        unused = [entry for entry in unused if entry[0] in selected]
    return LintReport(
        violations=tuple(sorted(live)),
        suppressed=tuple(sorted(suppressed)),
        unused_entries=tuple(unused),
        files_checked=files_checked,
        allowlist_source=allowlist.source,
    )
