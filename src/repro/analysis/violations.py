"""The violation record emitted by every reprolint rule."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Violation"]


@dataclass(frozen=True, order=True)
class Violation:
    """One finding at a specific source location.

    Attributes:
        path: file the finding is in (as given to the runner).
        line / col: 1-based line and 0-based column of the offending node.
        rule: rule identifier (``RL001`` .. ``RL006``, ``RL000`` for
            files that fail to parse).
        name: the offending identifier, when the rule is about a name;
            empty otherwise.  Allowlist entries match on this field.
        message: human-readable explanation with the fix direction.
    """

    path: str
    line: int
    col: int
    rule: str
    name: str
    message: str

    def format(self):
        """GCC-style one-liner, so editors can jump to the location."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
