"""The reprolint rule set (RL001-RL006).

Each rule is a function ``(tree, path) -> iterator of Violation`` over a
parsed module.  The rules encode *this repository's* conventions — the
unit contract of ``repro.common``, the ``make_rng`` seeding funnel, and
the ``ReproError`` exception taxonomy — not general Python style (ruff
covers that part; see ``docs/static_analysis.md``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Tuple

from repro.analysis.violations import Violation

__all__ = ["RULES", "Rule", "run_rules"]

# ---------------------------------------------------------------------------
# Shared vocabulary
# ---------------------------------------------------------------------------

#: Physical-quantity words -> the unit token their names must carry.
#: This mirrors the unit contract documented in ``repro.common``:
#: latency in ms, energy in mJ, power in mW, frequency in MHz, signal
#: strength in dBm, data rate in Mbit/s.
QUANTITY_UNITS: Dict[str, str] = {
    "latency": "ms",
    "energy": "mj",
    "power": "mw",
    "freq": "mhz",
    "frequency": "mhz",
    "rssi": "dbm",
    "rate": "mbps",
}

#: Every unit token the convention documents (used by RL006 to decide
#: whether a dataclass holds physical quantities).
UNIT_TOKENS = frozenset(
    {"ms", "mj", "mw", "mhz", "dbm", "mbps", "pct", "bytes"}
)

#: Builtin exceptions that must not be raised inside ``src/repro`` —
#: callers are promised every library error is a ``ReproError`` subclass
#: (``KeyError``-shaped misses use ``common.UnknownKeyError``, which is
#: both).  ``NotImplementedError`` stays legal for abstract methods.
BANNED_RAISES = frozenset({
    "ArithmeticError",
    "AssertionError",
    "AttributeError",
    "BaseException",
    "Exception",
    "IOError",
    "IndexError",
    "KeyError",
    "LookupError",
    "OSError",
    "RuntimeError",
    "TypeError",
    "ValueError",
    "ZeroDivisionError",
})


def _tokens(name: str) -> List[str]:
    return [token for token in name.lower().split("_") if token]


def _quantity_gaps(name: str) -> List[Tuple[str, str]]:
    """Return ``(quantity, expected_unit)`` pairs the name fails to carry."""
    token_set = set(_tokens(name))
    gaps = []
    for quantity, unit in QUANTITY_UNITS.items():
        if quantity in token_set and unit not in token_set:
            gaps.append((quantity, unit))
    return gaps


def _is_quantity_name(name: str) -> bool:
    token_set = set(_tokens(name))
    return bool(token_set & UNIT_TOKENS or token_set & set(QUANTITY_UNITS))


def _dotted(node: ast.AST) -> str:
    """Render an ``Attribute`` chain as ``a.b.c`` ('' if not a pure chain)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return ""
    parts.append(node.id)
    return ".".join(reversed(parts))


# ---------------------------------------------------------------------------
# RL001 — unit-suffix discipline
# ---------------------------------------------------------------------------

def _iter_bound_names(tree: ast.AST) -> Iterator[Tuple[str, ast.AST]]:
    """Yield every identifier the module binds a value to.

    Covers function/lambda parameters, assignment targets (including
    ``self.attr`` writes and annotated dataclass fields), loop and
    comprehension variables, and ``with ... as`` names.
    """

    def unpack(target: ast.AST) -> Iterator[Tuple[str, ast.AST]]:
        if isinstance(target, ast.Name):
            yield target.id, target
        elif isinstance(target, ast.Attribute):
            yield target.attr, target
        elif isinstance(target, ast.Starred):
            yield from unpack(target.value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from unpack(element)

    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            arguments = node.args
            for arg in (*arguments.posonlyargs, *arguments.args,
                        *arguments.kwonlyargs):
                yield arg.arg, arg
            for arg in (arguments.vararg, arguments.kwarg):
                if arg is not None:
                    yield arg.arg, arg
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                yield from unpack(target)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign, ast.For,
                               ast.AsyncFor)):
            yield from unpack(node.target)
        elif isinstance(node, ast.NamedExpr):
            yield from unpack(node.target)
        elif isinstance(node, ast.comprehension):
            yield from unpack(node.target)
        elif isinstance(node, ast.withitem):
            if node.optional_vars is not None:
                yield from unpack(node.optional_vars)


def check_unit_suffixes(tree, path):
    """RL001: names containing a quantity word must carry its unit token."""
    seen = set()
    for name, node in _iter_bound_names(tree):
        gaps = _quantity_gaps(name)
        if not gaps:
            continue
        line = getattr(node, "lineno", 0)
        if (name, line) in seen:
            continue
        seen.add((name, line))
        wanted = ", ".join(
            f"'{quantity}' needs a '_{unit}' token" for quantity, unit in gaps
        )
        yield Violation(
            path=path, line=line, col=getattr(node, "col_offset", 0),
            rule="RL001", name=name,
            message=(
                f"unit-suffix discipline: {name!r} names a physical "
                f"quantity but carries no unit ({wanted}); rename it or "
                f"allowlist it if it is genuinely dimensionless"
            ),
        )


# ---------------------------------------------------------------------------
# RL002 — RNG discipline
# ---------------------------------------------------------------------------

#: Attribute chains that are type references, not entropy sources.
_RNG_TYPE_REFS = frozenset({"np.random.Generator", "numpy.random.Generator"})

#: The one sanctioned constructor, legal only inside ``repro/common.py``.
_RNG_FUNNELS = frozenset(
    {"np.random.default_rng", "numpy.random.default_rng"}
)


def check_rng_discipline(tree, path):
    """RL002: all randomness flows through ``common.make_rng``.

    Direct ``random.*`` / ``np.random.*`` use creates module-level hidden
    state that breaks seed-for-seed reproducibility; every stochastic
    component must instead *accept* a ``numpy.random.Generator`` built by
    ``make_rng`` and thread it through.
    """
    in_common = path.replace("\\", "/").endswith("repro/common.py")
    reported = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name == "numpy.random":
                    yield Violation(
                        path=path, line=node.lineno, col=node.col_offset,
                        rule="RL002", name=alias.name,
                        message=(
                            f"RNG discipline: do not import {alias.name!r}; "
                            f"thread a Generator from common.make_rng instead"
                        ),
                    )
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == "random" or module == "numpy.random":
                names = ", ".join(alias.name for alias in node.names)
                yield Violation(
                    path=path, line=node.lineno, col=node.col_offset,
                    rule="RL002", name=module,
                    message=(
                        f"RNG discipline: 'from {module} import {names}' "
                        f"bypasses the make_rng funnel"
                    ),
                )
        elif isinstance(node, ast.Attribute):
            dotted = _dotted(node)
            if not dotted or (dotted, node.lineno) in reported:
                continue
            parts = dotted.split(".")
            np_random = parts[0] in ("np", "numpy") and parts[1:2] == ["random"]
            plain_random = parts[0] == "random" and len(parts) > 1
            if not (np_random and len(parts) > 2) and not plain_random:
                continue
            if dotted in _RNG_TYPE_REFS:
                continue
            if dotted in _RNG_FUNNELS and in_common:
                continue
            reported.add((dotted, node.lineno))
            yield Violation(
                path=path, line=node.lineno, col=node.col_offset,
                rule="RL002", name=dotted,
                message=(
                    f"RNG discipline: {dotted!r} outside common.make_rng; "
                    f"accept an rng parameter instead of sampling ad hoc"
                ),
            )


# ---------------------------------------------------------------------------
# RL003 — float-literal equality
# ---------------------------------------------------------------------------

def _is_nonzero_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        node = node.operand
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, float)
        and node.value != 0.0
    )


def check_float_equality(tree, path):
    """RL003: no ``==`` / ``!=`` against non-zero float literals.

    Exact comparison against a rounded constant silently stops matching
    after any arithmetic reordering; use ``math.isclose`` or an explicit
    tolerance.  Comparing against literal ``0.0`` stays legal — it is the
    guarded sentinel check for values that were *assigned* zero, and the
    idiomatic numpy mask (``array[array == 0.0] = ...``).
    """
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        left = node.left
        for op, right in zip(node.ops, node.comparators):
            if isinstance(op, (ast.Eq, ast.NotEq)):
                for side in (left, right):
                    if _is_nonzero_float_literal(side):
                        literal = ast.unparse(side)
                        yield Violation(
                            path=path, line=node.lineno,
                            col=node.col_offset, rule="RL003", name=literal,
                            message=(
                                f"float equality against {literal}; use "
                                f"math.isclose or an explicit tolerance"
                            ),
                        )
                        break
            left = right


# ---------------------------------------------------------------------------
# RL004 — exception discipline
# ---------------------------------------------------------------------------

def check_exception_discipline(tree, path):
    """RL004: library raises must be ``ReproError`` subclasses.

    ``repro``'s public contract is that every library-originated failure
    is catchable as ``ReproError``; a bare ``ValueError`` deep inside the
    simulator escapes that net.  Use ``ConfigError`` for bad parameters,
    ``SimulationError`` for unexecutable requests, and
    ``UnknownKeyError`` for lookup misses (it subclasses both
    ``ConfigError`` and ``KeyError``).
    """
    for node in ast.walk(tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        if isinstance(exc, ast.Name) and exc.id in BANNED_RAISES:
            yield Violation(
                path=path, line=node.lineno, col=node.col_offset,
                rule="RL004", name=exc.id,
                message=(
                    f"raise of builtin {exc.id}; raise a ReproError "
                    f"subclass (ConfigError / SimulationError / "
                    f"UnknownKeyError) instead"
                ),
            )


# ---------------------------------------------------------------------------
# RL005 — mutable default arguments
# ---------------------------------------------------------------------------

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CALLS
    )


def check_mutable_defaults(tree, path):
    """RL005: no mutable default parameter values."""
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            continue
        arguments = node.args
        positional = (*arguments.posonlyargs, *arguments.args)
        pos_defaults = arguments.defaults
        named = positional[len(positional) - len(pos_defaults):]
        pairs = list(zip(named, pos_defaults))
        pairs.extend(
            (arg, default)
            for arg, default in zip(arguments.kwonlyargs,
                                    arguments.kw_defaults)
            if default is not None
        )
        for arg, default in pairs:
            if _is_mutable_default(default):
                yield Violation(
                    path=path, line=default.lineno, col=default.col_offset,
                    rule="RL005", name=arg.arg,
                    message=(
                        f"mutable default for parameter {arg.arg!r}; "
                        f"default to None and construct inside the body"
                    ),
                )


# ---------------------------------------------------------------------------
# RL006 — dataclass validation
# ---------------------------------------------------------------------------

def _is_dataclass_decorator(decorator: ast.AST) -> bool:
    if isinstance(decorator, ast.Call):
        decorator = decorator.func
    return _dotted(decorator) in ("dataclass", "dataclasses.dataclass") or (
        isinstance(decorator, ast.Name) and decorator.id == "dataclass"
    )


def check_dataclass_validation(tree, path):
    """RL006: quantity-carrying dataclasses must validate in __post_init__.

    A dataclass whose fields are physical quantities (any field name with
    a unit token or quantity word) is a unit boundary: constructing one
    with a negative energy or NaN latency must fail loudly at the
    boundary, not surface later as a corrupted benchmark figure.
    """
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not any(_is_dataclass_decorator(d) for d in node.decorator_list):
            continue
        quantity_fields = [
            statement.target.id
            for statement in node.body
            if isinstance(statement, ast.AnnAssign)
            and isinstance(statement.target, ast.Name)
            and _is_quantity_name(statement.target.id)
        ]
        if not quantity_fields:
            continue
        has_post_init = any(
            isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
            and statement.name == "__post_init__"
            for statement in node.body
        )
        if not has_post_init:
            listed = ", ".join(quantity_fields)
            yield Violation(
                path=path, line=node.lineno, col=node.col_offset,
                rule="RL006", name=node.name,
                message=(
                    f"dataclass {node.name} holds physical quantities "
                    f"({listed}) but defines no __post_init__ validation"
                ),
            )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Rule:
    """A registered reprolint rule."""

    rule_id: str
    title: str
    check: Callable[[ast.AST, str], Iterator[Violation]]


RULES: Dict[str, Rule] = {
    rule.rule_id: rule
    for rule in (
        Rule("RL001", "unit-suffix discipline", check_unit_suffixes),
        Rule("RL002", "RNG discipline (make_rng funnel)",
             check_rng_discipline),
        Rule("RL003", "float-literal equality ban", check_float_equality),
        Rule("RL004", "ReproError exception discipline",
             check_exception_discipline),
        Rule("RL005", "mutable default arguments", check_mutable_defaults),
        Rule("RL006", "dataclass quantity validation",
             check_dataclass_validation),
    )
}


def run_rules(tree, path, rule_ids=None):
    """Run the selected rules (default: all) over one parsed module."""
    selected = RULES if rule_ids is None else {
        rule_id: RULES[rule_id] for rule_id in rule_ids
    }
    violations: List[Violation] = []
    for rule in selected.values():
        violations.extend(rule.check(tree, path))
    return sorted(violations)
