"""The grandfather allowlist for reprolint.

Some identifiers legitimately contain a physical-quantity word without
carrying a unit suffix — ``learning_rate`` is dimensionless, ``_energy_gp``
is a Gaussian-process *model* of energy, not an energy.  Those names live
in ``reprolint_allowlist.txt`` next to this module, one entry per line::

    RL001 learning_rate   # dimensionless Q-learning hyperparameter

The entry suppresses the named rule for that exact identifier everywhere
in the tree.  Keep the file short: the review bar for adding a line is
"this name genuinely does not denote a physical quantity", not "renaming
is tedious".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import FrozenSet, Tuple

from repro.common import ConfigError

__all__ = ["Allowlist", "load_allowlist", "DEFAULT_ALLOWLIST_PATH"]

#: The committed allowlist that ships with the package.
DEFAULT_ALLOWLIST_PATH = Path(__file__).with_name("reprolint_allowlist.txt")


@dataclass(frozen=True)
class Allowlist:
    """An immutable set of ``(rule, identifier)`` suppressions."""

    entries: FrozenSet[Tuple[str, str]] = field(default_factory=frozenset)
    source: str = "<empty>"

    def allows(self, violation):
        """Whether ``violation`` is grandfathered by this allowlist."""
        return (violation.rule, violation.name) in self.entries

    def __len__(self):
        return len(self.entries)


def load_allowlist(path=None):
    """Parse an allowlist file into an :class:`Allowlist`.

    ``None`` loads the committed default; a missing explicit path is a
    :class:`~repro.common.ConfigError` (a typo'd ``--allowlist`` should
    not silently lint against an empty list).
    """
    path = DEFAULT_ALLOWLIST_PATH if path is None else Path(path)
    if not path.exists():
        raise ConfigError(f"allowlist file not found: {path}")
    entries = set()
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 2 or not parts[0].startswith("RL"):
            raise ConfigError(
                f"{path}:{lineno}: expected 'RLxxx identifier', got {raw!r}"
            )
        entries.add((parts[0], parts[1]))
    return Allowlist(entries=frozenset(entries), source=str(path))
