"""Runtime invariant contracts for physical quantities.

The static rules in :mod:`repro.analysis.rules` keep *names* honest; this
module keeps *values* honest at the same boundaries: power is
non-negative, latency is positive, utilization lives in [0, 1], RSSI
stays inside the simulator's physical window, and Q-values stay finite.

The ``ensure_*`` validators always check when called directly — they are
the building blocks for ``__post_init__`` methods.  The :func:`checked`
decorator is the *optional* layer for hot paths: it validates arguments
and return values only while :func:`contracts_enabled` is true, which is
the default under pytest (so every test run exercises the contracts) and
opt-in elsewhere via ``REPRO_CONTRACTS=1``.
"""

from __future__ import annotations

import functools
import inspect
import math
import os

from repro.common import ConfigError, SimulationError

__all__ = [
    "RSSI_FLOOR_DBM",
    "RSSI_CEIL_DBM",
    "contracts_enabled",
    "ensure_finite",
    "ensure_power_mw",
    "ensure_latency_ms",
    "ensure_duration_ms",
    "ensure_energy_mj",
    "ensure_utilization",
    "ensure_rssi_dbm",
    "ensure_q_value",
    "checked",
]

#: The simulator's physical RSSI window (matches ``wireless.signal``).
#: The paper's experiments sweep roughly -55 to -90 dBm; the floor/ceil
#: below are the hard limits the signal processes clamp to.
RSSI_FLOOR_DBM = -100.0
RSSI_CEIL_DBM = -30.0

_TRUTHY = frozenset({"1", "true", "yes", "on"})
_FALSY = frozenset({"0", "false", "no", "off"})


def contracts_enabled():
    """Whether :func:`checked` validates on this call.

    ``REPRO_CONTRACTS=1`` forces contracts on, ``REPRO_CONTRACTS=0``
    forces them off; with the variable unset they default to *on under
    pytest* and off in production runs, keeping the per-inference hot
    path free of validation overhead.
    """
    flag = os.environ.get("REPRO_CONTRACTS", "").strip().lower()
    if flag in _TRUTHY:
        return True
    if flag in _FALSY:
        return False
    return "PYTEST_CURRENT_TEST" in os.environ


def _reject(error_cls, name, value, requirement):
    raise error_cls(f"contract violation: {name} must be {requirement}, "
                    f"got {value!r}")


def ensure_finite(value, name="value", error_cls=ConfigError):
    """Reject NaN/inf (and non-numbers)."""
    try:
        finite = math.isfinite(value)
    except TypeError:
        finite = False
    if not finite:
        _reject(error_cls, name, value, "a finite number")
    return value


def ensure_power_mw(value, name="power_mw"):
    """Power draw: finite and non-negative (idle rails can be 0 mW)."""
    ensure_finite(value, name)
    if value < 0:
        _reject(ConfigError, name, value, "non-negative (mW)")
    return value


def ensure_latency_ms(value, name="latency_ms"):
    """An end-to-end latency: finite and strictly positive."""
    ensure_finite(value, name)
    if value <= 0:
        _reject(ConfigError, name, value, "positive (ms)")
    return value


def ensure_duration_ms(value, name="duration_ms"):
    """A phase duration: finite and non-negative (phases may be empty)."""
    ensure_finite(value, name)
    if value < 0:
        _reject(ConfigError, name, value, "non-negative (ms)")
    return value


def ensure_energy_mj(value, name="energy_mj", minimum_mj=0.0):
    """An energy: finite and at least ``minimum_mj``."""
    ensure_finite(value, name)
    if value < minimum_mj:
        _reject(ConfigError, name, value, f">= {minimum_mj} (mJ)")
    return value


def ensure_utilization(value, name="utilization"):
    """A load fraction: finite and inside [0, 1]."""
    ensure_finite(value, name)
    if not 0.0 <= value <= 1.0:
        _reject(ConfigError, name, value, "within [0, 1]")
    return value


def ensure_rssi_dbm(value, name="rssi_dbm", floor_dbm=RSSI_FLOOR_DBM,
                    ceil_dbm=RSSI_CEIL_DBM):
    """A signal strength: finite and inside the simulator's dBm window."""
    ensure_finite(value, name)
    if not floor_dbm <= value <= ceil_dbm:
        _reject(ConfigError, name, value,
                f"within [{floor_dbm}, {ceil_dbm}] dBm")
    return value


def ensure_q_value(value, name="q_value"):
    """A Q-table entry or reward: finite, else the *simulation* is broken.

    Raises :class:`SimulationError` (not ``ConfigError``) — a NaN here
    means a diverged update reached the learner, not a bad parameter.
    """
    return ensure_finite(value, name, error_cls=SimulationError)


def checked(_returns=None, **param_validators):
    """Attach gated argument/return contracts to a function.

    ``checked(x=ensure_power_mw)`` validates parameter ``x`` on every
    call while :func:`contracts_enabled` is true; ``_returns=validator``
    additionally validates the return value.  With contracts disabled the
    wrapper adds a single boolean check of overhead.
    """
    def decorate(func):
        signature = inspect.signature(func)
        unknown = set(param_validators) - set(signature.parameters)
        if unknown:
            raise ConfigError(
                f"checked(): {func.__qualname__} has no parameter(s) "
                f"{sorted(unknown)}"
            )

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            if not contracts_enabled():
                return func(*args, **kwargs)
            bound = signature.bind(*args, **kwargs)
            bound.apply_defaults()
            for param_name, validator in param_validators.items():
                if param_name in bound.arguments:
                    validator(bound.arguments[param_name], name=param_name)
            result = func(*args, **kwargs)
            if _returns is not None:
                _returns(result, name=f"{func.__qualname__}() return")
            return result

        wrapper.__contracts__ = dict(param_validators)
        return wrapper

    return decorate
