"""repro.analysis.flow — whole-program, cross-module dataflow analysis.

Where :mod:`repro.analysis.rules` checks one file at a time, this
package parses the *whole* ``src/repro`` tree into a :class:`Project`
(modules, import edges, a symbol table, and a best-effort call graph)
and runs four flow-sensitive rule families over it:

- **RL101 unit propagation** — infer ``_ms``/``_mj``/``_mw``/``_dbm``/
  ``_pct``/… unit tags through assignments, arithmetic, keyword
  arguments, and returns; flag incompatible additions (``ms + mj``),
  ``ms x mw`` products assigned to ``_mj`` names without the ``/ 1000``
  of eq. 5, and functions whose returns contradict their own name.
- **RL102 determinism taint** — call-graph reachability from
  nondeterminism sources (``time.time``, ``datetime.now``, un-funneled
  ``random``/``np.random``, ``os.urandom``, set iteration, threading)
  into the simulation core (``env``/``core``/``serving``/``faults``),
  machine-checking the batchtrain bit-parity contract.
- **RL103 clock-write funnels** — only the approved funnel methods may
  advance, rewind, or assign the virtual clock; every other mutation
  site is flagged.
- **RL104 layer contracts** — enforce the package DAG documented in
  ``docs/architecture.md``; reject upward module-scope imports,
  same-layer sibling imports, and new import cycles.

Findings are gated by a ratcheting baseline
(``src/repro/analysis/flow_baseline.txt``): new violations fail the
run, pre-existing justified ones are tracked and burned down, and stale
entries fail the run too so the baseline cannot rot.  Run it with
``python -m repro.analysis --flow`` (``--format json|sarif`` for
machine-readable reports).
"""

from repro.analysis.flow.baseline import (
    DEFAULT_BASELINE_PATH,
    FlowBaseline,
    load_baseline,
)
from repro.analysis.flow.clockrule import APPROVED_CLOCK_FUNNELS
from repro.analysis.flow.engine import FlowReport, analyze_paths, analyze_project
from repro.analysis.flow.layers import PACKAGE_LAYERS
from repro.analysis.flow.project import Project
from repro.analysis.flow.report import to_json, to_sarif

__all__ = [
    "APPROVED_CLOCK_FUNNELS",
    "DEFAULT_BASELINE_PATH",
    "FlowBaseline",
    "FlowReport",
    "PACKAGE_LAYERS",
    "Project",
    "analyze_paths",
    "analyze_project",
    "load_baseline",
    "to_json",
    "to_sarif",
]
