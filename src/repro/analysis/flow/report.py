"""Serialization of flow reports: JSON and SARIF 2.1.0.

The SARIF output targets code-scanning UIs (one ``result`` per live
finding, rule metadata in the driver block); the JSON output is the
engine's own shape for scripting.  Both render *new* violations —
baselined findings appear in the ``suppressed``/``suppressions``
sections so dashboards can watch the debt burn down.
"""

from __future__ import annotations

import json
from typing import Dict

__all__ = ["to_json", "to_sarif"]

_RULE_DESCRIPTIONS: Dict[str, str] = {
    "RL101": "cross-module unit propagation (ms/mj/mw algebra of eq. 5)",
    "RL102": "determinism taint into the simulation core",
    "RL103": "virtual-clock write funnels",
    "RL104": "architecture layer contracts",
}


def _violation_dict(violation) -> Dict:
    return {
        "rule": violation.rule,
        "path": violation.path,
        "line": violation.line,
        "col": violation.col,
        "name": violation.name,
        "message": violation.message,
    }


def to_json(report) -> str:
    """The engine's own report shape, one JSON document."""
    payload = {
        "ok": report.ok,
        "modules_checked": report.modules_checked,
        "baseline": report.baseline_source,
        "counts": report.counts(),
        "violations": [_violation_dict(v) for v in report.violations],
        "suppressed": [_violation_dict(v) for v in report.suppressed],
        "stale_baseline_entries": [
            list(entry) for entry in report.stale_entries
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def to_sarif(report) -> str:
    """SARIF 2.1.0 for code-scanning upload."""
    rules = [
        {
            "id": rule_id,
            "name": rule_id,
            "shortDescription": {"text": description},
            "defaultConfiguration": {"level": "error"},
        }
        for rule_id, description in sorted(_RULE_DESCRIPTIONS.items())
    ]

    def result(violation, suppressed: bool) -> Dict:
        entry = {
            "ruleId": violation.rule,
            "level": "error",
            "message": {"text": violation.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": violation.path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": max(1, violation.line),
                        "startColumn": max(1, violation.col + 1),
                    },
                },
            }],
            "partialFingerprints": {
                "reproFlow/v1": "/".join((
                    violation.rule,
                    violation.path.replace("\\", "/"),
                    violation.name,
                )),
            },
        }
        if suppressed:
            entry["suppressions"] = [{
                "kind": "external",
                "justification": f"baselined in {report.baseline_source}",
            }]
        return entry

    results = [result(v, False) for v in report.violations]
    results.extend(result(v, True) for v in report.suppressed)
    sarif = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "reprolint-flow",
                    "informationUri": (
                        "https://example.invalid/docs/static_analysis"
                    ),
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }
    return json.dumps(sarif, indent=2, sort_keys=True) + "\n"
