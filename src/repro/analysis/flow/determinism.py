"""RL102 — determinism taint into the simulation core.

The batchtrain parity contract (PR 5) and every seeded regression in
this repo assume the simulation core is a pure function of its seed.
This rule machine-checks that: it marks every function whose body
touches a **nondeterminism source** — wall clocks, un-funneled RNGs,
entropy, set iteration, threading — as *tainted*, propagates taint
backwards over the project call graph, and flags tainted functions
defined inside the protected packages (``repro.env``, ``repro.core``,
``repro.serving``, ``repro.faults``).

To keep findings stable and readable, a protected function is reported
only when it is a taint *entry point*: its own body contains a source,
or it calls a tainted function defined outside the protected zone.
Taint that merely flows between two protected functions is covered by
the callee's own finding.

``repro.common.make_rng`` is the sanctioned RNG funnel; ``np.random``
references inside ``repro/common.py`` are therefore not sources (same
carve-out as RL002), and neither are ``Generator`` type references.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.analysis.flow.project import FunctionInfo, Project
from repro.analysis.violations import Violation

__all__ = ["PROTECTED_PACKAGES", "check_determinism"]

#: Packages whose functions must stay deterministic under a fixed seed.
PROTECTED_PACKAGES = (
    "repro.env", "repro.core", "repro.serving", "repro.faults",
)

#: Exact dotted chains that read wall-clock time or entropy.
_EXACT_SOURCES = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4",
})

#: Any reference under these roots is a source (scheduling and entropy
#: are nondeterministic wholesale).
_PREFIX_SOURCES = ("secrets.", "threading.", "concurrent.futures.")

#: RNG chains (mirrors RL002): banned outside the make_rng funnel.
_RNG_TYPE_REFS = frozenset({"numpy.random.Generator"})
_RNG_FUNNELS = frozenset({"numpy.random.default_rng"})


def _dotted(node: ast.AST) -> str:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return ""
    parts.append(node.id)
    return ".".join(reversed(parts))


def _is_protected(module: str) -> bool:
    return any(module == package or module.startswith(package + ".")
               for package in PROTECTED_PACKAGES)


def _normalize(chain: str) -> str:
    # ``np.random`` and ``numpy.random`` are one vocabulary entry.
    if chain.startswith("np."):
        return "numpy." + chain[len("np."):]
    return chain


def _sources_in(project: Project, function: FunctionInfo,
                in_common: bool) -> Iterator[Tuple[str, int]]:
    """Yield ``(source_label, lineno)`` for direct sources in the body."""
    module = function.module
    for node in ast.walk(function.node):
        if isinstance(node, ast.Attribute):
            chain = _dotted(node)
            if not chain:
                continue
            expanded = _normalize(project.expand_alias(module, chain))
            if expanded in _RNG_TYPE_REFS:
                continue
            if expanded in _RNG_FUNNELS:
                if not in_common:
                    yield expanded, node.lineno
                continue
            if expanded in _EXACT_SOURCES:
                yield expanded, node.lineno
                continue
            if any(expanded.startswith(prefix)
                   for prefix in _PREFIX_SOURCES):
                yield expanded, node.lineno
                continue
            if (expanded.startswith("numpy.random.")
                    or expanded.startswith("random.")):
                yield expanded, node.lineno
        elif isinstance(node, ast.Name):
            # ``from time import perf_counter`` style bare names.
            expanded = _normalize(
                project.expand_alias(module, node.id)
            )
            if expanded == node.id:
                continue
            if expanded in _EXACT_SOURCES or any(
                    expanded.startswith(prefix)
                    for prefix in _PREFIX_SOURCES):
                yield expanded, node.lineno
            elif expanded in _RNG_FUNNELS and not in_common:
                yield expanded, node.lineno
            elif expanded.startswith(("numpy.random.", "random.")) \
                    and expanded not in _RNG_TYPE_REFS:
                yield expanded, node.lineno
        elif isinstance(node, (ast.For, ast.AsyncFor, ast.comprehension)):
            iterable = node.iter
            if isinstance(iterable, ast.Set) or (
                    isinstance(iterable, ast.Call)
                    and isinstance(iterable.func, ast.Name)
                    and iterable.func.id in ("set", "frozenset")):
                yield "set-iteration", iterable.lineno


def _call_edges(project: Project,
                function: FunctionInfo) -> Iterator[Tuple[str, str]]:
    owner = (function.qualname.rsplit(".", 1)[0]
             if "." in function.qualname else None)
    for node in ast.walk(function.node):
        if isinstance(node, ast.Call):
            callee = project.resolve_call(function.module, owner, node)
            if callee is not None and callee.key != function.key:
                yield callee.key


def check_determinism(project: Project) -> List[Violation]:
    """Run RL102 over the project call graph."""
    direct: Dict[Tuple[str, str], Tuple[str, int]] = {}
    calls: Dict[Tuple[str, str], Set[Tuple[str, str]]] = {}
    callers: Dict[Tuple[str, str], Set[Tuple[str, str]]] = {}
    for function in project.functions.values():
        in_common = function.module in ("repro.common", "common")
        found = next(iter(_sources_in(project, function, in_common)),
                     None)
        if found is not None:
            direct[function.key] = found
        edges = set(_call_edges(project, function))
        calls[function.key] = edges
        for callee in edges:
            callers.setdefault(callee, set()).add(function.key)

    # Backward taint propagation to a fixpoint.
    tainted: Set[Tuple[str, str]] = set(direct)
    frontier = list(direct)
    while frontier:
        current = frontier.pop()
        for caller in callers.get(current, ()):
            if caller not in tainted:
                tainted.add(caller)
                frontier.append(caller)

    def _chain_to_source(key: Tuple[str, str]) -> List[Tuple[str, str]]:
        """A shortest call path from ``key`` to a direct source."""
        seen = {key}
        queue: List[Tuple[Tuple[str, str], List[Tuple[str, str]]]] = [
            (key, [key])
        ]
        while queue:
            node, path = queue.pop(0)
            if node in direct:
                return path
            for callee in calls.get(node, ()):
                if callee in tainted and callee not in seen:
                    seen.add(callee)
                    queue.append((callee, path + [callee]))
        return [key]

    violations: List[Violation] = []
    for key in sorted(tainted):
        module, qualname = key
        if not _is_protected(module):
            continue
        function = project.functions[key]
        if key in direct:
            source, lineno = direct[key]
            detail = source
            via = ""
        else:
            outside = [callee for callee in calls.get(key, ())
                       if callee in tainted
                       and not _is_protected(callee[0])]
            if not outside:
                continue  # covered by the protected callee's finding
            path = _chain_to_source(key)
            terminal = path[-1]
            detail = direct.get(terminal, ("?", 0))[0]
            via = " via " + " -> ".join(
                f"{m}.{q}" for m, q in path[1:]
            )
            lineno = function.node.lineno
        violations.append(Violation(
            path=project.modules[module].path, line=lineno, col=0,
            rule="RL102", name=f"{qualname}:{detail}",
            message=(
                f"determinism taint: {module}.{qualname} reaches "
                f"nondeterminism source '{detail}'{via}; the simulation "
                f"core must be a pure function of its seed — thread a "
                f"Generator from common.make_rng or move the "
                f"instrumentation out of the protected packages"
            ),
        ))
    return sorted(violations)
