"""The flow-analysis orchestrator.

``analyze_paths`` is the CLI's entry point: load the tree into a
:class:`~repro.analysis.flow.project.Project`, run the four rule
families, and split the findings against the ratchet baseline.  The CI
gate condition is :attr:`FlowReport.ok` — no new violations *and* no
stale baseline entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.flow.baseline import FlowBaseline, load_baseline
from repro.analysis.flow.clockrule import check_clock_writes
from repro.analysis.flow.determinism import check_determinism
from repro.analysis.flow.layers import check_layers
from repro.analysis.flow.project import Project
from repro.analysis.flow.units import check_units
from repro.analysis.violations import Violation

__all__ = ["FlowReport", "analyze_paths", "analyze_project"]

_FAMILIES = (
    ("RL101", check_units),
    ("RL102", check_determinism),
    ("RL103", check_clock_writes),
    ("RL104", check_layers),
)


@dataclass(frozen=True)
class FlowReport:
    """The outcome of one flow-analysis run.

    ``violations`` are new findings (not in the baseline);
    ``suppressed`` are baselined ones; ``stale_entries`` are baseline
    lines whose finding no longer exists.  The gate passes only when
    both ``violations`` and ``stale_entries`` are empty — the ratchet
    tightens in both directions.
    """

    violations: Tuple[Violation, ...] = ()
    suppressed: Tuple[Violation, ...] = ()
    stale_entries: Tuple[Tuple[str, str, str], ...] = ()
    modules_checked: int = 0
    baseline_source: str = "<none>"
    rule_ids: Tuple[str, ...] = field(
        default_factory=lambda: tuple(rule for rule, _ in _FAMILIES)
    )

    @property
    def ok(self) -> bool:
        return not self.violations and not self.stale_entries

    def counts(self) -> Dict[str, int]:
        """Live-violation count per rule family (zeros included)."""
        tally = {rule: 0 for rule in self.rule_ids}
        for violation in self.violations:
            tally[violation.rule] = tally.get(violation.rule, 0) + 1
        return tally

    def format(self) -> str:
        lines = [violation.format() for violation in self.violations]
        for rule, module, name in self.stale_entries:
            lines.append(
                f"{self.baseline_source}: stale baseline entry "
                f"'{rule} {module} {name}' — the finding is gone; "
                f"delete the line"
            )
        per_rule = ", ".join(
            f"{rule}={count}" for rule, count in sorted(
                self.counts().items())
        )
        lines.append(
            f"reprolint-flow: {len(self.violations)} new violation(s) "
            f"[{per_rule}], {len(self.suppressed)} baselined "
            f"({self.baseline_source}), {len(self.stale_entries)} stale "
            f"baseline entr(y/ies), {self.modules_checked} module(s) "
            f"analyzed"
        )
        return "\n".join(lines)


def analyze_project(project: Project, baseline=None,
                    rule_ids=None) -> FlowReport:
    """Run the selected rule families (default: all) over a project."""
    if baseline is None:
        baseline = FlowBaseline()
    selected = tuple(
        (rule, check) for rule, check in _FAMILIES
        if rule_ids is None or rule in rule_ids
    )
    live: List[Violation] = []
    suppressed: List[Violation] = []
    for _, check in selected:
        for violation in check(project):
            if baseline.matches(violation):
                suppressed.append(violation)
            else:
                live.append(violation)
    stale = baseline.stale_entries(live + suppressed)
    # Entries for rules outside this run's selection are not stale —
    # the evidence simply was not gathered.
    selected_ids = {rule for rule, _ in selected}
    stale = [entry for entry in stale if entry[0] in selected_ids]
    return FlowReport(
        violations=tuple(sorted(live)),
        suppressed=tuple(sorted(suppressed)),
        stale_entries=tuple(stale),
        modules_checked=len(project.modules),
        baseline_source=baseline.source,
        rule_ids=tuple(rule for rule, _ in selected),
    )


def analyze_paths(paths, baseline=None, rule_ids=None) -> FlowReport:
    """Load a source tree and analyze it.

    Args:
        paths: files or directories (the CLI default is ``src/repro``).
        baseline: a :class:`FlowBaseline`, a path to one, ``None`` for
            the committed default, or ``False`` for no baseline.
        rule_ids: optional subset of ``RL101``..``RL104``.
    """
    if baseline is False:
        baseline = FlowBaseline(source="<disabled>")
    elif not isinstance(baseline, FlowBaseline):
        baseline = load_baseline(baseline)
    project = Project.load(paths)
    return analyze_project(project, baseline=baseline, rule_ids=rule_ids)
