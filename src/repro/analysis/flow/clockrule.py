"""RL103 — virtual-clock write funnels.

Every component of the simulator shares one virtual timeline: the
environment's :class:`~repro.common.Stopwatch`.  As arrivals, retries,
outage windows, and (soon) fleet replicas all advance slices of it, a
stray ``env.clock.advance(...)`` deep inside a helper silently corrupts
every timestamp downstream.  This rule inverts the burden: clock
*writes* are legal only inside the approved funnel methods below, and
every other mutation site — ``.clock.advance()``, ``.clock.reset()``,
an assignment or augmented assignment to a ``now_ms`` attribute, or the
same through a local alias of a ``.clock`` chain or a ``Stopwatch()``
constructed locally — is a violation.

Reading the clock (``env.clock.now_ms``) is unrestricted; time is
observable everywhere, writable almost nowhere.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.analysis.flow.project import ModuleInfo, Project
from repro.analysis.violations import Violation

__all__ = ["APPROVED_CLOCK_FUNNELS", "check_clock_writes"]

#: module -> qualnames allowed to advance/rewind/assign the clock.
#: The table is intentionally short: the Stopwatch primitive itself,
#: and the event kernel's three dispatchers — the *single* writer
#: behind every environment funnel.  Everything else (including the
#: environment's own ``execute*`` paths) goes through
#: :meth:`EdgeCloudEnvironment.advance_clock`, :meth:`advance_clock_to`,
#: or :meth:`rewind_clock`, which delegate to the kernel.
APPROVED_CLOCK_FUNNELS: Dict[str, frozenset] = {
    "repro.common": frozenset({
        "Stopwatch.advance", "Stopwatch.reset",
    }),
    "repro.sim.kernel": frozenset({
        "EventKernel.advance_by",
        "EventKernel.advance_to",
        "EventKernel.rewind",
    }),
}

_WRITE_METHODS = frozenset({"advance", "reset"})


def _attr_chain(node: ast.AST) -> List[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif isinstance(node, ast.Call):
        # ``something(...).clock`` — keep the tail, mark the head opaque
        parts.append("()")
    else:
        return []
    return list(reversed(parts))


def _is_clock_chain(chain: List[str]) -> bool:
    """Whether a dotted chain denotes a clock object (``*.clock``)."""
    return bool(chain) and chain[-1] == "clock"


def _walk_scope(root: ast.AST) -> Iterator[ast.AST]:
    """Yield the nodes of one lexical scope.

    Descends the statement tree but not into nested function/class
    definitions — those are separate scopes yielded (and checked) by
    :func:`_function_bodies` under their own qualname.
    """
    if isinstance(root, (ast.FunctionDef, ast.AsyncFunctionDef)):
        children = root.body
    elif isinstance(root, ast.Module):
        children = [statement for statement in root.body
                    if not isinstance(statement,
                                      (ast.FunctionDef,
                                       ast.AsyncFunctionDef,
                                       ast.ClassDef))]
    else:
        children = [root]
    stack = list(children)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda, ast.ClassDef)):
                continue
            stack.append(child)


def _clock_aliases(body: Iterator[ast.AST]) -> Set[str]:
    """Local names bound to a clock: ``clock = env.clock`` or
    ``stopwatch = Stopwatch(...)``."""
    aliases: Set[str] = set()
    for node in body:
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        is_clock = False
        if isinstance(value, ast.Attribute):
            is_clock = _is_clock_chain(_attr_chain(value))
        elif isinstance(value, ast.Call):
            func = value.func
            name = (func.id if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute)
                    else "")
            is_clock = name == "Stopwatch"
        if not is_clock:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                aliases.add(target.id)
    return aliases


def _function_bodies(info: ModuleInfo) -> Iterator[Tuple[str, ast.AST]]:
    def walk(node: ast.AST, prefix: str) -> Iterator[Tuple[str, ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}" if prefix else child.name
                yield qualname, child
                yield from walk(child, f"{qualname}.")
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.")

    yield ("", info.tree)  # module-level statements
    yield from walk(info.tree, "")


def _writes_in(scope: ast.AST, aliases: Set[str]
               ) -> Iterator[Tuple[ast.AST, str]]:
    """Yield ``(node, kind)`` for every clock write in one scope."""
    for node in _walk_scope(scope):
        if isinstance(node, ast.Call) and isinstance(node.func,
                                                     ast.Attribute):
            method = node.func.attr
            if method not in _WRITE_METHODS:
                continue
            owner = node.func.value
            chain = _attr_chain(owner)
            if _is_clock_chain(chain):
                yield node, f"clock.{method}"
            elif isinstance(owner, ast.Name) and owner.id in aliases:
                yield node, f"clock.{method}"
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if isinstance(target, ast.Attribute) \
                        and target.attr == "now_ms":
                    chain = _attr_chain(target.value)
                    if (_is_clock_chain(chain)
                            or chain == ["self"]
                            or (len(chain) == 1
                                and chain[0] in aliases)):
                        yield node, "now_ms"


def check_clock_writes(project: Project) -> List[Violation]:
    """Run RL103 over every module of the project."""
    violations: List[Violation] = []
    for info in project.modules.values():
        approved = APPROVED_CLOCK_FUNNELS.get(info.name, frozenset())
        for qualname, scope in _function_bodies(info):
            if qualname in approved:
                continue
            aliases = _clock_aliases(_walk_scope(scope))
            for node, kind in _writes_in(scope, aliases):
                violations.append(_violation(info, qualname, node, kind))
    return sorted(violations)


def _violation(info: ModuleInfo, qualname: str, node: ast.AST,
               kind: str) -> Violation:
    where = qualname or "<module>"
    return Violation(
        path=info.path, line=getattr(node, "lineno", 0),
        col=getattr(node, "col_offset", 0), rule="RL103",
        name=f"{where}:{kind}",
        message=(
            f"virtual-clock write outside the approved funnels: "
            f"{where} performs '{kind}'; route it through "
            f"EdgeCloudEnvironment.advance_clock / advance_clock_to / "
            f"rewind_clock (or extend APPROVED_CLOCK_FUNNELS with a "
            f"review)"
        ),
    )
