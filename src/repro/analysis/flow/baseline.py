"""The ratcheting baseline for flow findings.

Cross-module analyses start life against an existing tree, and some
findings are *intentional* (wall-clock overhead instrumentation, a
documented layering wart awaiting the event-kernel refactor).  Those
live in ``flow_baseline.txt`` next to this module, one fingerprint per
line::

    RL102 repro.core.engine AutoScale.select_action:time.perf_counter  # why

A fingerprint is ``(rule, module, name)`` — deliberately free of line
numbers so unrelated edits cannot churn the file.  The ratchet works
both ways: a violation *not* in the baseline fails the run (no new
debt), and a baseline entry matching *no* violation fails the run too
(paid-down debt must be deleted, so the file can only shrink).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import FrozenSet, List, Tuple

from repro.common import ConfigError

__all__ = ["DEFAULT_BASELINE_PATH", "FlowBaseline", "load_baseline",
           "format_baseline"]

#: The committed baseline that ships with the package.
DEFAULT_BASELINE_PATH = Path(__file__).parent.with_name(
    "flow_baseline.txt"
)

#: ``(rule, module, name)`` — the stable identity of one finding.
Fingerprint = Tuple[str, str, str]


@dataclass(frozen=True)
class FlowBaseline:
    """An immutable set of grandfathered flow findings."""

    entries: FrozenSet[Fingerprint] = field(default_factory=frozenset)
    source: str = "<empty>"

    def matches(self, violation) -> bool:
        return self.fingerprint_of(violation) in self.entries

    @staticmethod
    def fingerprint_of(violation) -> Fingerprint:
        return (violation.rule, _module_of(violation.path),
                violation.name)

    def stale_entries(self, violations) -> List[Fingerprint]:
        """Baseline lines matching none of ``violations`` (must be
        deleted — the ratchet only tightens)."""
        seen = {self.fingerprint_of(violation) for violation in violations}
        return sorted(self.entries - seen)

    def __len__(self) -> int:
        return len(self.entries)


def _module_of(path: str) -> str:
    """Derive the dotted module from a finding's display path."""
    if path.startswith("<") and path.endswith(">"):
        return path[1:-1]  # fixture projects: "<repro.env.fake>"
    parts = Path(path).with_suffix("").parts
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        return ".".join(parts[anchor:])
    return ".".join(parts)


def load_baseline(path=None) -> FlowBaseline:
    """Parse a baseline file; ``None`` loads the committed default.

    A missing committed default is an empty baseline (a fresh tree has
    no debt); a missing *explicit* path is a :class:`ConfigError`.
    """
    if path is None:
        path = DEFAULT_BASELINE_PATH
        if not path.exists():
            return FlowBaseline(source="<none>")
    else:
        path = Path(path)
        if not path.exists():
            raise ConfigError(f"flow baseline not found: {path}")
    entries = set()
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 3 or not parts[0].startswith("RL"):
            raise ConfigError(
                f"{path}:{lineno}: expected 'RLxxx module name', "
                f"got {raw!r}"
            )
        entries.add((parts[0], parts[1], parts[2]))
    return FlowBaseline(entries=frozenset(entries), source=str(path))


def format_baseline(violations) -> str:
    """Render violations as baseline lines (for ``--write-baseline``).

    Every generated line carries a TODO comment: a justification is
    required before committing, per the review bar in
    ``docs/static_analysis.md``.
    """
    fingerprints = sorted({
        FlowBaseline.fingerprint_of(violation) for violation in violations
    })
    lines = [
        "# reprolint flow baseline - one 'RLxxx module name' per line.",
        "#",
        "# Every entry is tracked debt: new violations cannot be added",
        "# without a justified line here, and lines whose violation is",
        "# gone fail the run until deleted.  Justify every entry.",
        "",
    ]
    for rule, module, name in fingerprints:
        lines.append(f"{rule} {module} {name}  # TODO: justify")
    return "\n".join(lines) + "\n"
