"""RL101 — cross-module unit propagation.

The repo's naming convention *is* its unit system (RL001 enforces that
every physical quantity carries its unit token), which means units can
be checked mechanically: infer a unit tag for every expression from the
names it is built from, propagate tags through locals, and flag the
places where the algebra of eq. 5 (``energy_mj = latency_ms x power_mw
/ 1000``) is broken.

The inference is deliberately conservative — ``UNKNOWN`` silences every
check — so a finding is worth reading.  What is tracked:

- simple units from name tokens (the *last* unit token in a name wins:
  ``tx_base_ms`` is ms);
- numeric literals are dimensionless; a unit survives scaling by a
  dimensionless factor;
- ``ms * mw`` products become the one compound tag the paper needs;
  dividing that compound by a literal ``1000`` yields ``mj``;
- same-unit division is dimensionless; everything else unknown.

Checks: incompatible ``+``/``-``/comparison/min/max operands,
assignments whose target name contradicts the inferred value unit
(including the un-divided ``ms x mw`` product landing in a ``_mj``
name), keyword arguments whose name contradicts the argument, resolved
positional arguments, and returns that contradict the function's own
name.  Functions named ``<x>_to_<y>`` are converters and exempt from
the return check; calls to them infer ``UNKNOWN``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.flow.project import FunctionInfo, ModuleInfo, Project
from repro.analysis.violations import Violation

__all__ = ["UNIT_TOKENS", "check_units", "infer_name_unit"]

#: The canonical unit vocabulary (matches RL001's token set).
UNIT_TOKENS = ("ms", "mj", "mw", "mhz", "dbm", "mbps", "pct", "bytes")

#: The compound produced by a latency x power product (micro-joules,
#: pending the eq. 5 ``/ 1000``).
_MS_X_MW = "ms*mw"
_DIMENSIONLESS = "1"

#: Builtins through which a unit passes unchanged.
_UNIT_PRESERVING_CALLS = frozenset({"abs", "round", "float", "int"})
#: Builtins that unify their operands like ``+`` does.
_UNIFYING_CALLS = frozenset({"min", "max"})


def infer_name_unit(name: str) -> Optional[str]:
    """The unit a name declares, or ``None``.

    The last unit token wins (``tx_base_ms`` -> ms); converter names
    (``bytes_to_mbits``) intentionally mix tokens and declare nothing.
    """
    lowered = name.lower()
    tokens = [token for token in lowered.split("_") if token]
    if "to" in tokens:  # converter naming: the tokens span two units
        return None
    unit = None
    for token in tokens:
        if token in UNIT_TOKENS:
            unit = token
    return unit


def _is_simple(unit: Optional[str]) -> bool:
    return unit is not None and unit in UNIT_TOKENS


def _literal_value(node: ast.AST) -> Optional[float]:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _literal_value(node.operand)
        return None if inner is None else -inner
    if isinstance(node, ast.Constant) and isinstance(node.value,
                                                     (int, float)):
        return float(node.value)
    return None


class _FunctionChecker:
    """Infer and check units through one function (or module) body."""

    def __init__(self, project: Project, info: ModuleInfo,
                 qualname: str, owner_class: Optional[str],
                 out: List[Violation]):
        self.project = project
        self.info = info
        self.qualname = qualname
        self.owner_class = owner_class
        self.out = out
        #: units inferred for unit-less local names
        self.env: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def _report(self, node: ast.AST, name: str, message: str) -> None:
        self.out.append(Violation(
            path=self.info.path, line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0), rule="RL101",
            name=f"{self.qualname}:{name}" if self.qualname else name,
            message=message,
        ))

    # ------------------------------------------------------------------
    # Expression inference
    # ------------------------------------------------------------------

    def infer(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Constant):
            return (_DIMENSIONLESS
                    if isinstance(node.value, (int, float))
                    and not isinstance(node.value, bool) else None)
        if isinstance(node, ast.Name):
            declared = infer_name_unit(node.id)
            if declared is not None:
                return declared
            return self.env.get(node.id)
        if isinstance(node, ast.Attribute):
            return infer_name_unit(node.attr)
        if isinstance(node, ast.Subscript):
            return self.infer(node.value)
        if isinstance(node, ast.UnaryOp):
            return self.infer(node.operand)
        if isinstance(node, ast.BinOp):
            return self._infer_binop(node)
        if isinstance(node, ast.IfExp):
            return self._unify(node, self.infer(node.body),
                               self.infer(node.orelse),
                               context="conditional branches")
        if isinstance(node, ast.Call):
            return self._infer_call(node)
        if isinstance(node, ast.NamedExpr):
            return self.infer(node.value)
        if isinstance(node, ast.Starred):
            return self.infer(node.value)
        return None

    def _unify(self, node: ast.AST, left: Optional[str],
               right: Optional[str], context: str) -> Optional[str]:
        """Units that meet additively must agree."""
        if _is_simple(left) and _is_simple(right) and left != right:
            self._report(node, f"{left}+{right}",
                         f"unit mix: {context} combine '{left}' with "
                         f"'{right}' — these are different physical "
                         f"dimensions")
            return None
        if left == _MS_X_MW and right == "mj" or (
                right == _MS_X_MW and left == "mj"):
            self._report(node, "ms*mw+mj",
                         "unit mix: a raw latency x power product "
                         "(micro-joules) meets an mJ value; divide the "
                         "product by 1000 first (eq. 5)")
            return "mj"
        if left is None or left == _DIMENSIONLESS:
            return right
        if right is None or right == _DIMENSIONLESS:
            return left
        return left  # equal, or compounds we carry through unchanged

    def _infer_binop(self, node: ast.BinOp) -> Optional[str]:
        left = self.infer(node.left)
        right = self.infer(node.right)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            # Dimensionless offsets around unit values stay lenient:
            # only clashing *unit* tags are real findings.
            return self._unify(node, left, right,
                               context="'+'/'-' operands")
        if isinstance(node.op, ast.Mult):
            pair = {left, right}
            if pair == {"ms", "mw"}:
                return _MS_X_MW
            if _DIMENSIONLESS in pair:
                other = left if right == _DIMENSIONLESS else right
                return other
            return None
        if isinstance(node.op, ast.Div):
            if left == _MS_X_MW and _literal_value(node.right) == 1000:
                return "mj"  # eq. 5: ms x mw / 1000 = mJ
            if _is_simple(left) and left == right:
                return _DIMENSIONLESS
            if right == _DIMENSIONLESS:
                return left
            return None
        if isinstance(node.op, (ast.FloorDiv, ast.Mod)):
            if right == _DIMENSIONLESS:
                return left
            return None
        return None

    def _infer_call(self, node: ast.Call) -> Optional[str]:
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name is None:
            return None
        if name in _UNIT_PRESERVING_CALLS and len(node.args) >= 1:
            return self.infer(node.args[0])
        if name in _UNIFYING_CALLS and len(node.args) >= 2:
            unit: Optional[str] = None
            for arg in node.args:
                unit = self._unify(node, unit, self.infer(arg),
                                   context=f"'{name}()' arguments")
            return unit
        # A called name carries its unit like any other name
        # (``engine.remote_nominal_ms(...)`` is ms); converters do not.
        return infer_name_unit(name)

    # ------------------------------------------------------------------
    # Statement checks
    # ------------------------------------------------------------------

    def _check_assign_target(self, target: ast.AST, value_unit: Optional[str],
                             node: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            return  # no per-element inference for unpacking
        if isinstance(target, ast.Starred):
            self._check_assign_target(target.value, value_unit, node)
            return
        if isinstance(target, ast.Name):
            declared = infer_name_unit(target.id)
            label = target.id
        elif isinstance(target, ast.Attribute):
            declared = infer_name_unit(target.attr)
            label = target.attr
        elif isinstance(target, ast.Subscript):
            declared = self.infer(target.value)
            declared = declared if _is_simple(declared) else None
            label = ast.unparse(target.value) if declared else ""
        else:
            return
        if declared is None:
            if isinstance(target, ast.Name) and _is_simple(value_unit):
                self.env[target.id] = value_unit  # propagate
            return
        if value_unit == _MS_X_MW:
            if declared == "mj":
                self._report(
                    node, f"{label}:ms*mw->mj",
                    f"{label!r} is millijoules but receives a raw "
                    f"latency x power product (micro-joules); divide "
                    f"by 1000 (eq. 5: energy_mj = latency_ms x "
                    f"power_mw / 1000)")
            else:
                self._report(
                    node, f"{label}:ms*mw->{declared}",
                    f"{label!r} declares '{declared}' but receives a "
                    f"latency x power product")
            return
        if _is_simple(value_unit) and value_unit != declared:
            self._report(
                node, f"{label}:{value_unit}->{declared}",
                f"{label!r} declares unit '{declared}' but the assigned "
                f"expression carries '{value_unit}'")

    def _check_compare(self, node: ast.Compare) -> None:
        left_unit = self.infer(node.left)
        for comparator in node.comparators:
            right_unit = self.infer(comparator)
            if (_is_simple(left_unit) and _is_simple(right_unit)
                    and left_unit != right_unit):
                self._report(
                    node, f"{left_unit}<>{right_unit}",
                    f"unit mix: comparison between '{left_unit}' and "
                    f"'{right_unit}' values")
            left_unit = right_unit

    def _check_call_args(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in _UNIFYING_CALLS:
            # min/max mix their operands even when the result is unused;
            # the dedup pass absorbs the duplicate when it is.
            self._infer_call(node)
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            declared = infer_name_unit(keyword.arg)
            if declared is None:
                continue
            value_unit = self.infer(keyword.value)
            if value_unit == _MS_X_MW and declared != "mj":
                value_unit = "ms*mw"
            if ((_is_simple(value_unit) or value_unit == _MS_X_MW)
                    and value_unit != declared):
                self._report(
                    node, f"{keyword.arg}:{value_unit}->{declared}",
                    f"argument {keyword.arg!r} declares "
                    f"'{declared}' but receives a '{value_unit}' value")
        callee = self.project.resolve_call(
            self.info.name, self.owner_class, node
        )
        if callee is None:
            return
        params = list(callee.params)
        if params and params[0] in ("self", "cls") and isinstance(
                node.func, (ast.Attribute, ast.Name)):
            # method call through an instance: drop the bound parameter
            if isinstance(node.func, ast.Attribute):
                params = params[1:]
        for param, arg in zip(params, node.args):
            declared = infer_name_unit(param)
            if declared is None:
                continue
            value_unit = self.infer(arg)
            if _is_simple(value_unit) and value_unit != declared:
                self._report(
                    node, f"{param}:{value_unit}->{declared}",
                    f"positional argument for {param!r} of "
                    f"{callee.module}.{callee.qualname} declares "
                    f"'{declared}' but receives a '{value_unit}' value")

    def _check_return(self, node: ast.Return,
                      declared: Optional[str]) -> None:
        if node.value is None or declared is None:
            return
        value_unit = self.infer(node.value)
        if value_unit == _MS_X_MW and declared == "mj":
            self._report(
                node, f"return:ms*mw->{declared}",
                "return value is a raw latency x power product "
                "(micro-joules) but the function name promises mJ; "
                "divide by 1000 (eq. 5)")
            return
        if _is_simple(value_unit) and value_unit != declared:
            self._report(
                node, f"return:{value_unit}->{declared}",
                f"function name promises '{declared}' but this return "
                f"carries '{value_unit}'")

    # ------------------------------------------------------------------
    # Body walk
    # ------------------------------------------------------------------

    def _walk_pruned(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk a statement without descending into nested defs/classes
        (they get their own checker with their own local env)."""
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda, ast.ClassDef)):
                continue
            yield from self._walk_pruned(child)

    def run(self, body: List[ast.stmt],
            return_unit: Optional[str] = None) -> None:
        for statement in body:
            for node in self._walk_pruned(statement):
                if isinstance(node, ast.Assign):
                    value_unit = self.infer(node.value)
                    for target in node.targets:
                        self._check_assign_target(target, value_unit, node)
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    self._check_assign_target(
                        node.target, self.infer(node.value), node)
                elif isinstance(node, ast.AugAssign):
                    if isinstance(node.op, (ast.Add, ast.Sub)):
                        target_unit = self.infer(node.target)
                        self._unify(node, target_unit,
                                    self.infer(node.value),
                                    context="augmented-assignment operands")
                elif isinstance(node, ast.Compare):
                    self._check_compare(node)
                elif isinstance(node, ast.Call):
                    self._check_call_args(node)
                elif isinstance(node, ast.Return):
                    self._check_return(node, return_unit)
                elif isinstance(node, ast.BinOp):
                    self.infer(node)  # additive mixes report inside


def _walkable_functions(
        project: Project, info: ModuleInfo
) -> Iterator[Tuple[FunctionInfo, Optional[str]]]:
    for function in project.functions.values():
        if function.module != info.name:
            continue
        owner = (function.qualname.rsplit(".", 1)[0]
                 if "." in function.qualname else None)
        yield function, owner


def check_units(project: Project) -> List[Violation]:
    """Run RL101 over every function (and module body) of the project."""
    violations: List[Violation] = []
    for info in project.modules.values():
        # Module-level statements (constants, table construction).
        module_checker = _FunctionChecker(project, info, "", None,
                                          violations)
        top_level = [statement for statement in info.tree.body
                     if not isinstance(statement,
                                       (ast.FunctionDef,
                                        ast.AsyncFunctionDef,
                                        ast.ClassDef))]
        module_checker.run(top_level)
        for function, owner in _walkable_functions(project, info):
            checker = _FunctionChecker(project, info, function.qualname,
                                       owner, violations)
            node = function.node
            return_unit = infer_name_unit(function.name)
            checker.run(node.body, return_unit=return_unit)
    # One report per (location, name): ast.walk can visit a node twice
    # through different statement roots.
    unique = {}
    for violation in violations:
        key = (violation.path, violation.line, violation.col,
               violation.name)
        unique.setdefault(key, violation)
    return sorted(unique.values())
