"""The whole-program model the flow rules run over.

A :class:`Project` holds every module of the analyzed tree as a parsed
AST plus three derived structures the rule families share:

- **import edges** (:attr:`ModuleInfo.imports`) with module-scope vs
  function-scope (lazy) classification — RL104 constrains only
  module-scope edges; a function-scope import is the sanctioned
  dependency-inversion escape hatch;
- a **symbol table** of every function and method, keyed
  ``(module, qualname)`` — RL101 resolves positional-argument units and
  RL102 anchors taint on these keys;
- per-module **import alias maps** (``np`` -> ``numpy``,
  ``FaultPlan`` -> ``repro.faults.plan.FaultPlan``) so dotted chains can
  be expanded before matching against rule vocabularies.

Construction never imports the analyzed code — everything is pure
``ast`` — so the linter can analyze a broken tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.runner import iter_python_files
from repro.common import ConfigError

__all__ = ["FunctionInfo", "ImportEdge", "ModuleInfo", "Project"]


@dataclass(frozen=True)
class ImportEdge:
    """One ``import``/``from-import`` of a project-internal module."""

    target: str  #: imported module, dotted (``repro.faults.plan``)
    lineno: int
    module_scope: bool  #: False when the import sits inside a function


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition."""

    module: str
    qualname: str  #: ``func`` or ``Class.method``
    node: ast.AST = field(repr=False, compare=False)
    params: Tuple[str, ...] = ()

    @property
    def key(self) -> Tuple[str, str]:
        return (self.module, self.qualname)

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]


@dataclass
class ModuleInfo:
    """One parsed module of the project."""

    name: str  #: dotted module name (``repro.env.environment``)
    path: str  #: display path for findings
    tree: ast.Module = field(repr=False)
    imports: List[ImportEdge] = field(default_factory=list)
    #: local name -> dotted origin ("np" -> "numpy",
    #: "FaultPlan" -> "repro.faults.plan.FaultPlan")
    aliases: Dict[str, str] = field(default_factory=dict)

    @property
    def package(self) -> str:
        """The layer-granularity package (first two dotted components)."""
        parts = self.name.split(".")
        if len(parts) >= 2 and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts[:2]) if len(parts) >= 2 else parts[0]


def _module_name_for(path: Path, root: Path, root_module: str) -> str:
    relative = path.relative_to(root).with_suffix("")
    parts = [root_module, *relative.parts]
    return ".".join(parts)


class _ImportCollector(ast.NodeVisitor):
    """Collect project-internal import edges + the local alias map."""

    def __init__(self, info: ModuleInfo, project_root_module: str):
        self.info = info
        self.root_module = project_root_module
        self.depth = 0

    def _edge(self, target: str, lineno: int) -> None:
        self.info.imports.append(ImportEdge(
            target=target, lineno=lineno, module_scope=self.depth == 0,
        ))

    def visit_FunctionDef(self, node: ast.AST) -> None:
        self.depth += 1
        self.generic_visit(node)
        self.depth -= 1

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            self.info.aliases[local] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
            if alias.asname:
                self.info.aliases[alias.asname] = alias.name
            if alias.name.startswith(self.root_module):
                self._edge(alias.name, node.lineno)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if node.level:  # resolve explicit relative imports
            base = self.info.name.split(".")
            base = base[: len(base) - node.level]
            module = ".".join(base + ([module] if module else []))
        for alias in node.names:
            local = alias.asname or alias.name
            self.info.aliases[local] = f"{module}.{alias.name}"
        if module.startswith(self.root_module):
            self._edge(module, node.lineno)


def _collect_functions(info: ModuleInfo) -> Iterator[FunctionInfo]:
    def walk(node: ast.AST, prefix: str) -> Iterator[FunctionInfo]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}" if prefix else child.name
                arguments = child.args
                params = tuple(
                    arg.arg for arg in
                    (*arguments.posonlyargs, *arguments.args)
                )
                yield FunctionInfo(module=info.name, qualname=qualname,
                                   node=child, params=params)
                # Nested defs get their own entry but stay un-callable
                # from outside; prefix keeps their key unique.
                yield from walk(child, f"{qualname}.")
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.")

    yield from walk(info.tree, "")


class Project:
    """Every module of one analyzed tree, parsed and indexed."""

    def __init__(self, modules: Dict[str, ModuleInfo],
                 root_module: str = "repro"):
        self.root_module = root_module
        self.modules = modules
        #: (module, qualname) -> FunctionInfo
        self.functions: Dict[Tuple[str, str], FunctionInfo] = {}
        #: bare function/method name -> every definition with that name
        self.by_name: Dict[str, List[FunctionInfo]] = {}
        for info in modules.values():
            collector = _ImportCollector(info, root_module)
            collector.visit(info.tree)
            for function in _collect_functions(info):
                self.functions[function.key] = function
                self.by_name.setdefault(function.name, []).append(function)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def load(cls, paths, root_module: str = "repro") -> "Project":
        """Parse a source tree from disk.

        ``paths`` behaves like the classic runner's: files or
        directories; the tree root is inferred as the directory named
        after ``root_module`` on each file's path (so both
        ``src/repro`` and individual files inside it work).
        """
        modules: Dict[str, ModuleInfo] = {}
        for path in iter_python_files(paths):
            path = Path(path)
            parts = list(path.parts)
            if root_module not in parts:
                raise ConfigError(
                    f"{path} is not under a {root_module!r} tree"
                )
            anchor = len(parts) - 1 - parts[::-1].index(root_module)
            root = Path(*parts[: anchor + 1])
            name = _module_name_for(path, root, root_module)
            try:
                tree = ast.parse(path.read_text(), filename=str(path))
            except SyntaxError as error:
                raise ConfigError(
                    f"{path}:{error.lineno}: does not parse: {error.msg}"
                ) from error
            modules[name] = ModuleInfo(name=name, path=str(path), tree=tree)
        return cls(modules, root_module=root_module)

    @classmethod
    def from_sources(cls, sources: Dict[str, str],
                     root_module: str = "repro") -> "Project":
        """Build a project from ``{dotted_name: source}`` strings.

        This is the fixture entry point: rule tests assemble synthetic
        multi-module projects without touching the filesystem.
        """
        modules = {}
        for name, text in sources.items():
            try:
                tree = ast.parse(text, filename=f"<{name}>")
            except SyntaxError as error:
                raise ConfigError(
                    f"<{name}>:{error.lineno}: does not parse: {error.msg}"
                ) from error
            modules[name] = ModuleInfo(name=name, path=f"<{name}>",
                                       tree=tree)
        return cls(modules, root_module=root_module)

    # ------------------------------------------------------------------
    # Lookups shared by the rule families
    # ------------------------------------------------------------------

    def expand_alias(self, module: str, dotted: str) -> str:
        """Expand a dotted chain's leading alias per the module's imports.

        ``np.random.default_rng`` -> ``numpy.random.default_rng`` when the
        module did ``import numpy as np``; unknown roots pass through.
        """
        info = self.modules.get(module)
        if info is None or not dotted:
            return dotted
        head, _, rest = dotted.partition(".")
        origin = info.aliases.get(head)
        if origin is None:
            return dotted
        return f"{origin}.{rest}" if rest else origin

    def resolve_call(self, module: str, owner_class: Optional[str],
                     call: ast.Call) -> Optional[FunctionInfo]:
        """Best-effort resolution of a call to a project function.

        Handles, in order: bare names (module-local defs, then imported
        symbols), ``self.method`` / ``cls.method`` within the calling
        class, ``module_alias.func`` chains, and — as a last resort —
        ``anything.method`` when exactly one project function carries
        that bare name (unique-name heuristic; ambiguity resolves to
        ``None``, never to a guess).
        """
        func = call.func
        if isinstance(func, ast.Name):
            local = self.functions.get((module, func.id))
            if local is not None:
                return local
            origin = self.expand_alias(module, func.id)
            if origin and "." in origin:
                target_module, _, symbol = origin.rpartition(".")
                found = self.functions.get((target_module, symbol))
                if found is not None:
                    return found
            candidates = self.by_name.get(func.id, [])
            if len(candidates) == 1:
                return candidates[0]
            return None
        if not isinstance(func, ast.Attribute):
            return None
        chain = _dotted(func)
        if chain:
            root, _, rest = chain.partition(".")
            if root in ("self", "cls") and owner_class and "." not in rest:
                method = self.functions.get(
                    (module, f"{owner_class}.{rest}")
                )
                if method is not None:
                    return method
            origin = self.expand_alias(module, chain)
            if "." in origin:
                target_module, _, symbol = origin.rpartition(".")
                found = self.functions.get((target_module, symbol))
                if found is not None:
                    return found
        candidates = [
            candidate for candidate in self.by_name.get(func.attr, [])
            if "." in candidate.qualname  # methods only for attr calls
        ]
        if len(candidates) == 1:
            return candidates[0]
        return None


def _dotted(node: ast.AST) -> str:
    """Render an attribute chain as ``a.b.c`` ('' if not a pure chain)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return ""
    parts.append(node.id)
    return ".".join(reversed(parts))
