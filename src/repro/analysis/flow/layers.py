"""RL104 — architecture layer contracts.

The package DAG (documented in ``docs/architecture.md``, "Layering"):

.. code-block:: text

    common -> analysis/sim -> wireless/models -> hardware -> interference
           -> env -> faults/baselines/guard -> core -> serving
           -> evalharness -> cli / repro (facade)

A module may import from strictly *lower* layers only, at module scope.
Packages on the same layer (``analysis``/``sim``,
``wireless``/``models``, ``faults``/``baselines``/``guard``) are independent:
neither may import the other — in particular the event kernel
(``repro.sim``) builds on ``repro.common`` alone.  A **function-scope (lazy) import is the sanctioned
dependency-inversion escape** — ``core.service`` handing a request to
the serving pipeline it hosts is the canonical example — so RL104
constrains module-scope edges only.

On top of the layer check, the rule rejects *cycles*: any strongly
connected component of two or more modules in the module-scope import
graph is reported, whatever layers it spans.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set

from repro.analysis.flow.project import Project
from repro.analysis.violations import Violation

__all__ = ["PACKAGE_LAYERS", "check_layers"]

#: Package -> layer rank.  Lower imports into higher only.  Packages
#: sharing a rank are independent siblings.
PACKAGE_LAYERS: Dict[str, int] = {
    "repro.common": 0,
    "repro.analysis": 1,
    "repro.sim": 1,
    "repro.wireless": 2,
    "repro.models": 2,
    "repro.hardware": 3,
    "repro.interference": 4,
    "repro.env": 5,
    "repro.faults": 6,
    "repro.baselines": 6,
    "repro.guard": 6,
    "repro.core": 7,
    "repro.serving": 8,
    "repro.evalharness": 9,
    "repro.cli": 10,
    "repro": 10,  # the root facade re-exports everything
}


def _package_of(module: str) -> str:
    parts = module.split(".")
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if len(parts) >= 2:
        candidate = ".".join(parts[:2])
        if candidate in PACKAGE_LAYERS:
            return candidate
    return parts[0] if parts else module


def _strongly_connected(graph: Dict[str, Set[str]]) -> Iterator[List[str]]:
    """Tarjan's SCC; yields components of size >= 2."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]

    def strongconnect(node: str) -> Iterator[List[str]]:
        index[node] = lowlink[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        for succ in sorted(graph.get(node, ())):
            if succ not in graph:
                continue
            if succ not in index:
                yield from strongconnect(succ)
                lowlink[node] = min(lowlink[node], lowlink[succ])
            elif succ in on_stack:
                lowlink[node] = min(lowlink[node], index[succ])
        if lowlink[node] == index[node]:
            component = []
            while True:
                member = stack.pop()
                on_stack.discard(member)
                component.append(member)
                if member == node:
                    break
            if len(component) >= 2:
                yield sorted(component)

    for node in sorted(graph):
        if node not in index:
            yield from strongconnect(node)


def check_layers(project: Project) -> List[Violation]:
    """Run RL104 over the project's module-scope import edges."""
    violations: List[Violation] = []
    graph: Dict[str, Set[str]] = {}
    for info in project.modules.values():
        importer_pkg = _package_of(info.name)
        importer_rank = PACKAGE_LAYERS.get(importer_pkg)
        graph.setdefault(info.name, set())
        for edge in info.imports:
            if not edge.module_scope:
                continue  # lazy imports are the sanctioned escape
            target_pkg = _package_of(edge.target)
            # Normalize self-referential module names (repro.x.__init__
            # importing repro.x.y).
            graph[info.name].add(edge.target)
            if target_pkg == importer_pkg:
                continue
            target_rank = PACKAGE_LAYERS.get(target_pkg)
            if importer_rank is None or target_rank is None:
                continue
            if importer_rank < target_rank:
                violations.append(Violation(
                    path=info.path, line=edge.lineno, col=0,
                    rule="RL104", name=f"{info.name}->{target_pkg}",
                    message=(
                        f"layering: {importer_pkg} (layer "
                        f"{importer_rank}) imports {edge.target} from "
                        f"{target_pkg} (layer {target_rank}) at module "
                        f"scope — upward imports invert the "
                        f"architecture DAG; depend downward, invert "
                        f"the dependency, or use a function-scope "
                        f"import with a review"
                    ),
                ))
            elif importer_rank == target_rank:
                violations.append(Violation(
                    path=info.path, line=edge.lineno, col=0,
                    rule="RL104", name=f"{info.name}->{target_pkg}",
                    message=(
                        f"layering: {importer_pkg} and {target_pkg} "
                        f"share layer {importer_rank} and are declared "
                        f"independent; neither may import the other at "
                        f"module scope"
                    ),
                ))
    # Normalize edges against known modules: package imports
    # (repro.faults) resolve to the package __init__ when present.
    normalized: Dict[str, Set[str]] = {}
    for module, targets in graph.items():
        resolved = set()
        for target in targets:
            if target in graph:
                resolved.add(target)
            elif f"{target}.__init__" in graph:
                resolved.add(f"{target}.__init__")
        normalized[module] = resolved
    for component in _strongly_connected(normalized):
        anchor = component[0]
        info = project.modules[anchor]
        violations.append(Violation(
            path=info.path, line=1, col=0, rule="RL104",
            name="cycle:" + "->".join(component),
            message=(
                f"layering: import cycle among {', '.join(component)}; "
                f"cycles make initialization order fragile and forbid "
                f"any layer assignment — break the cycle with a "
                f"downward interface or a function-scope import"
            ),
        ))
    return sorted(violations)
