"""Command-line front end for reprolint.

Run as ``python -m repro.analysis src/repro`` or via the ``repro-lint``
console script.  Exit status 0 means the tree is clean outside the
committed allowlist; 1 means live violations; 2 means the run itself was
misconfigured (bad path, unreadable allowlist).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.rules import RULES
from repro.analysis.runner import lint_paths
from repro.common import ReproError

__all__ = ["main"]


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Repo-specific static analysis for the AutoScale reproduction: "
            "unit-suffix discipline, make_rng-only seeding, float-equality "
            "bans, ReproError exception taxonomy, mutable defaults, and "
            "dataclass validation."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--allowlist", default=None, metavar="FILE",
        help="alternate allowlist file (default: the committed one)",
    )
    parser.add_argument(
        "--no-allowlist", action="store_true",
        help="report grandfathered findings too",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to run (e.g. RL001,RL004)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv=None):
    parser = _build_parser()
    options = parser.parse_args(argv)
    if options.list_rules:
        for rule in RULES.values():
            print(f"{rule.rule_id}  {rule.title}")
            doc = (rule.check.__doc__ or "").strip().splitlines()[0]
            print(f"       {doc}")
        return 0
    rule_ids = None
    if options.select:
        rule_ids = [token.strip() for token in options.select.split(",")
                    if token.strip()]
        unknown = [rule_id for rule_id in rule_ids if rule_id not in RULES]
        if unknown:
            print(f"repro-lint: unknown rule id(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
    allowlist = False if options.no_allowlist else options.allowlist
    try:
        report = lint_paths(options.paths, allowlist=allowlist,
                            rule_ids=rule_ids)
    except ReproError as error:
        print(f"repro-lint: {error}", file=sys.stderr)
        return 2
    print(report.format())
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
