"""Command-line front end for reprolint.

Run as ``python -m repro.analysis src/repro`` or via the ``repro-lint``
console script.  ``--flow`` switches from the per-file rules
(RL001-RL006) to the whole-program flow analysis (RL101-RL104), which
reports in text, JSON, or SARIF and ratchets against a committed
baseline.  Exit status 0 means the tree is clean outside the committed
allowlist/baseline (with no stale entries); 1 means live violations or
stale entries; 2 means the run itself was misconfigured (bad path,
unreadable allowlist, unknown rule id).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.rules import RULES
from repro.analysis.runner import lint_paths
from repro.common import ConfigError, ReproError

__all__ = ["main"]

_FLOW_RULE_IDS = ("RL101", "RL102", "RL103", "RL104")


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Repo-specific static analysis for the AutoScale reproduction: "
            "per-file rules (unit-suffix discipline, make_rng-only seeding, "
            "float-equality bans, ReproError exception taxonomy, mutable "
            "defaults, dataclass validation) and, with --flow, whole-program "
            "rules (unit propagation, determinism taint, clock-write "
            "funnels, layer contracts)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--allowlist", default=None, metavar="FILE",
        help="alternate allowlist file (default: the committed one)",
    )
    parser.add_argument(
        "--no-allowlist", action="store_true",
        help="report grandfathered findings too",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to run (e.g. RL001,RL004)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--allow-stale", action="store_true",
        help=(
            "do not fail on stale allowlist/baseline entries (for "
            "spot-linting a subtree, where most entries match nothing)"
        ),
    )
    flow = parser.add_argument_group(
        "flow analysis",
        "cross-module analysis over the project import/call graph",
    )
    flow.add_argument(
        "--flow", action="store_true",
        help="run the flow rules RL101-RL104 instead of the per-file rules",
    )
    flow.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        dest="fmt", help="flow report format (default: text)",
    )
    flow.add_argument(
        "--output", default=None, metavar="FILE",
        help="write the flow report to FILE instead of stdout",
    )
    flow.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="alternate flow baseline file (default: the committed one)",
    )
    flow.add_argument(
        "--no-baseline", action="store_true",
        help="report baselined flow findings too",
    )
    flow.add_argument(
        "--write-baseline", action="store_true",
        help=(
            "rewrite the baseline file from the current findings and "
            "exit; every generated line needs a justification before "
            "committing"
        ),
    )
    return parser


def _list_rules():
    for rule in RULES.values():
        print(f"{rule.rule_id}  {rule.title}")
        doc = (rule.check.__doc__ or "").strip().splitlines()[0]
        print(f"       {doc}")
    from repro.analysis.flow.report import _RULE_DESCRIPTIONS
    for rule_id in _FLOW_RULE_IDS:
        print(f"{rule_id}  {_RULE_DESCRIPTIONS[rule_id]} (--flow)")
    return 0


def _parse_select(select, known, label):
    if not select:
        return None
    rule_ids = [token.strip() for token in select.split(",")
                if token.strip()]
    unknown = [rule_id for rule_id in rule_ids if rule_id not in known]
    if unknown:
        raise ConfigError(
            f"unknown {label} rule id(s): {', '.join(unknown)}"
        )
    return rule_ids


def _emit(text, output):
    if output is None:
        sys.stdout.write(text)
        return
    Path(output).write_text(text)
    print(f"repro-lint: report written to {output}")


def _flow_main(options):
    from repro.analysis.flow import analyze_paths
    from repro.analysis.flow.baseline import (
        DEFAULT_BASELINE_PATH,
        format_baseline,
    )
    from repro.analysis.flow.report import to_json, to_sarif

    baseline = False if options.no_baseline else options.baseline
    if options.write_baseline:
        baseline = False  # the new baseline covers *all* live findings
    try:
        rule_ids = _parse_select(options.select, _FLOW_RULE_IDS, "flow")
        report = analyze_paths(options.paths, baseline=baseline,
                               rule_ids=rule_ids)
    except ReproError as error:
        print(f"repro-lint: {error}", file=sys.stderr)
        return 2
    if options.write_baseline:
        target = Path(options.baseline) if options.baseline \
            else DEFAULT_BASELINE_PATH
        target.write_text(format_baseline(report.violations))
        print(f"repro-lint: wrote {len(report.violations)} finding(s) to "
              f"{target}; justify every entry before committing")
        return 0
    if options.fmt == "json":
        _emit(to_json(report), options.output)
    elif options.fmt == "sarif":
        _emit(to_sarif(report), options.output)
    else:
        _emit(report.format() + "\n", options.output)
    if options.allow_stale:
        return 0 if not report.violations else 1
    return 0 if report.ok else 1


def main(argv=None):
    parser = _build_parser()
    options = parser.parse_args(argv)
    if options.list_rules:
        return _list_rules()
    if not options.flow and (options.fmt != "text" or options.output
                             or options.no_baseline or options.baseline
                             or options.write_baseline):
        print("repro-lint: --format/--output/--baseline/--no-baseline/"
              "--write-baseline require --flow", file=sys.stderr)
        return 2
    if options.flow:
        return _flow_main(options)
    allowlist = False if options.no_allowlist else options.allowlist
    try:
        rule_ids = _parse_select(options.select, RULES, "per-file")
        report = lint_paths(options.paths, allowlist=allowlist,
                            rule_ids=rule_ids)
    except ReproError as error:
        print(f"repro-lint: {error}", file=sys.stderr)
        return 2
    print(report.format())
    if options.allow_stale:
        return 0 if not report.violations else 1
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
