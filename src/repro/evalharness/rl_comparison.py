"""Comparison of RL value-learner designs (Section IV's trade-off).

The paper selects tabular Q-learning over TD-learning and deep RL for its
low per-decision latency.  This driver trains all three learners of
``repro.core`` under the same protocol and reports decision quality
(energy vs the oracle), QoS violations, and per-decision overhead, making
the paper's design argument measurable.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.oracle import OptOracle
from repro.common import make_rng
from repro.core.action import ActionSpace
from repro.core.alternatives import (
    LinearQFunction,
    MlpQNetwork,
    SarsaTable,
)
from repro.core.qlearning import QLearningConfig, QTable
from repro.core.reward import RewardConfig, compute_reward
from repro.core.state import table_i_state_space
from repro.env.environment import EdgeCloudEnvironment
from repro.env.qos import use_case_for
from repro.evalharness.reporting import format_table
from repro.hardware.devices import build_device
from repro.models.zoo import build_network

__all__ = ["compare_rl_designs"]


def _epsilon_greedy(learner, state, rng, epsilon, num_actions):
    if rng.random() < epsilon:
        return int(rng.integers(num_actions)), True
    return learner.best_action(state), False


def _train_and_evaluate(learner_name, make_learner, environment,
                        use_cases, train_runs, eval_runs, seed):
    """One learner's full protocol; returns the summary row."""
    space = table_i_state_space()
    actions = ActionSpace.from_environment(environment)
    config = QLearningConfig()
    reward_config = RewardConfig()
    learner = make_learner(space, len(actions), config, seed)
    rng = make_rng(seed)
    oracle = OptOracle()

    def run_case(use_case, runs, learn):
        nonlocal decide_us
        energies, violations, matches = [], 0, 0
        state = None
        pending = None  # (state, action, reward) awaiting SARSA's A'
        for _ in range(runs):
            observation = environment.observe()
            state = space.encode(use_case.network, observation)
            started = time.perf_counter()
            if learn:
                action, _ = _epsilon_greedy(learner, state, rng,
                                            config.epsilon, len(actions))
            else:
                action = learner.best_visited_action(state)
            decide_us.append((time.perf_counter() - started) * 1e6)
            target = actions.target(action)
            result = environment.execute(use_case.network, target,
                                         observation)
            reward = compute_reward(result, use_case, reward_config)
            if learn:
                next_observation = environment.observe()
                next_state = space.encode(use_case.network,
                                          next_observation)
                if isinstance(learner, SarsaTable):
                    if pending is not None:
                        prev_state, prev_action, prev_reward = pending
                        learner.update(prev_state, prev_action,
                                       prev_reward, state, action)
                    pending = (state, action, reward)
                else:
                    learner.update(state, action, reward, next_state)
            else:
                energies.append(result.energy_mj)
                violations += int(result.latency_ms > use_case.qos_ms)
                optimal = oracle.select(environment, use_case,
                                        observation, state_key=state)
                sweep = environment.estimate_all(use_case.network,
                                                 observation)
                optimal_energy_mj = float(
                    sweep.energy_mj[sweep.index_of(optimal)]
                )
                chosen_energy_mj = float(
                    sweep.energy_mj[sweep.index_of(target)]
                )
                matches += int(chosen_energy_mj <= optimal_energy_mj * 1.01)
        return energies, violations, matches

    decide_us = []
    for use_case in use_cases:
        run_case(use_case, train_runs, learn=True)
    decide_us = []  # overhead measured on the trained model only
    energies, violations, matches, total = [], 0, 0, 0
    for use_case in use_cases:
        case_energy_mj, case_violations, case_matches = run_case(
            use_case, eval_runs, learn=False
        )
        energies.extend(case_energy_mj)
        violations += case_violations
        matches += case_matches
        total += eval_runs
    return {
        "learner": learner_name,
        "mean_energy_mj": float(np.mean(energies)),
        "qos_violation_pct": violations / total * 100.0,
        "prediction_accuracy_pct": matches / total * 100.0,
        "decide_us": float(np.mean(decide_us)),
        "memory_bytes": learner.memory_bytes,
    }


def compare_rl_designs(device_name="mi8pro",
                       network_names=("mobilenet_v3", "resnet_50"),
                       train_runs=120, eval_runs=15, seed=0):
    """Q-learning vs SARSA vs linear function approximation."""
    use_cases = [use_case_for(build_network(name))
                 for name in network_names]

    learners = (
        ("q_learning",
         lambda space, n, cfg, s: QTable(space.size, n, cfg, s)),
        ("sarsa",
         lambda space, n, cfg, s: SarsaTable(space.size, n, cfg, s)),
        ("linear_q",
         lambda space, n, cfg, s: LinearQFunction(space, n, cfg, s)),
        ("mlp_q",
         lambda space, n, cfg, s: MlpQNetwork(space, n, cfg, seed=s)),
    )
    rows = []
    for name, factory in learners:
        environment = EdgeCloudEnvironment(build_device(device_name),
                                           scenario="S1", seed=seed)
        rows.append(_train_and_evaluate(
            name, factory, environment, use_cases, train_runs,
            eval_runs, seed,
        ))
    table = format_table(
        ["learner", "mean energy (mJ)", "QoS violation %",
         "vs-oracle accuracy %", "decide (us)", "memory (KB)"],
        [[r["learner"], r["mean_energy_mj"], r["qos_violation_pct"],
          r["prediction_accuracy_pct"], r["decide_us"],
          r["memory_bytes"] / 1e3] for r in rows],
        title="RL design comparison (Section IV)",
    )
    return {"rows": rows, "table": table}
