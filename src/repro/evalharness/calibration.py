"""Calibration self-test: does the simulator still tell the paper's story?

The reproduction's validity rests on a set of qualitative orderings from
the paper's Section III characterization (DESIGN.md's substitution table).
This module re-checks every one of them against the current calibration
and returns a pass/fail checklist — run it after touching any number in
``repro.hardware``, ``repro.wireless``, or ``repro.models``.

``python -m pytest tests/evalharness/test_calibration.py`` runs the same
checks in CI fashion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.baselines.oracle import OptOracle
from repro.env.environment import EdgeCloudEnvironment
from repro.env.observation import Observation
from repro.env.qos import use_case_for
from repro.evalharness.reporting import format_table
from repro.hardware.devices import build_device
from repro.models.zoo import build_network

__all__ = ["CalibrationCheck", "run_calibration_checks"]


@dataclass(frozen=True)
class CalibrationCheck:
    """One named ordering the simulator must preserve."""

    name: str
    claim: str
    passed: bool
    detail: str


def _oracle_pick(device_name, network_name, observation=None,
                 accuracy_target=None, streaming=False):
    env = EdgeCloudEnvironment(build_device(device_name), scenario="S1",
                               seed=0)
    use_case = use_case_for(build_network(network_name),
                            streaming=streaming,
                            accuracy_target=accuracy_target)
    observation = observation or Observation()
    target, nominal = OptOracle(cache=False).evaluate(env, use_case,
                                                      observation)
    return target, nominal


def run_calibration_checks():
    """Evaluate every Section-III ordering; returns checks + a table."""
    checks: List[CalibrationCheck] = []

    def check(name, claim, condition, detail):
        checks.append(CalibrationCheck(name, claim, bool(condition),
                                       detail))

    # Fig. 2 family -----------------------------------------------------
    target, _ = _oracle_pick("mi8pro", "mobilenet_v3")
    check("fig2_light_high_end", "light NN on high-end phone stays local",
          target.location.value == "local", target.key)

    target, _ = _oracle_pick("mi8pro", "mobilebert")
    check("fig2_heavy_cloud", "heavy NN prefers the cloud",
          target.location.value == "cloud", target.key)

    target, _ = _oracle_pick("moto_x_force", "inception_v1")
    check("fig2_mid_end_scale_out",
          "mid-end phone scales out even for light NNs",
          target.location.value != "local", target.key)

    # Fig. 3 ------------------------------------------------------------
    device = build_device("mi8pro")
    network = build_network("mobilenet_v3")
    from repro.models.layers import LayerType
    from repro.models.quantization import Precision

    fc_layers = [l for l in network.layers if l.kind is LayerType.FC]
    cpu_fc = device.soc.cpu.layers_latency_ms(fc_layers, Precision.FP32)
    gpu_fc = device.soc.processor("gpu").layers_latency_ms(
        fc_layers, Precision.FP32
    )
    check("fig3_fc_on_coprocessor", "FC layers slower on the GPU",
          gpu_fc > 2.0 * cpu_fc, f"cpu {cpu_fc:.1f} ms vs gpu "
          f"{gpu_fc:.1f} ms")

    # Fig. 4 ------------------------------------------------------------
    target, _ = _oracle_pick("mi8pro", "inception_v1",
                             accuracy_target=50.0)
    check("fig4_inception_50", "Inception v1 @50% -> DSP INT8",
          target.key == "local/dsp/int8/vf0", target.key)
    target, _ = _oracle_pick("mi8pro", "mobilenet_v3",
                             accuracy_target=50.0)
    check("fig4_mobilenet_50", "MobileNet v3 @50% -> CPU INT8",
          target.key.startswith("local/cpu/int8"), target.key)
    target, _ = _oracle_pick("mi8pro", "mobilenet_v3",
                             accuracy_target=65.0)
    check("fig4_mobilenet_65", "MobileNet v3 @65% leaves INT8",
          "int8" not in target.key, target.key)

    # Fig. 5 ------------------------------------------------------------
    target, _ = _oracle_pick("mi8pro", "mobilenet_v3",
                             Observation(cpu_util=0.9, mem_util=0.1))
    check("fig5_cpu_corunner", "CPU co-runner moves MNv3 off the CPU",
          not target.key.startswith("local/cpu"), target.key)
    target, _ = _oracle_pick("mi8pro", "mobilenet_v3",
                             Observation(cpu_util=0.2, mem_util=0.95))
    check("fig5_mem_corunner",
          "memory co-runner moves MNv3 off the device",
          target.location.value != "local", target.key)

    # Fig. 6 ------------------------------------------------------------
    target, _ = _oracle_pick("mi8pro", "resnet_50")
    check("fig6_strong", "ResNet-50 at strong signal -> cloud",
          target.location.value == "cloud", target.key)
    target, _ = _oracle_pick("mi8pro", "resnet_50",
                             Observation(rssi_wlan_dbm=-86.0))
    check("fig6_weak_wifi",
          "weak Wi-Fi -> connected edge serves ResNet-50",
          target.location.value == "connected", target.key)
    target, _ = _oracle_pick(
        "mi8pro", "resnet_50",
        Observation(rssi_wlan_dbm=-86.0, rssi_p2p_dbm=-86.0),
    )
    check("fig6_both_weak", "both links weak -> back to the device",
          target.location.value == "local", target.key)

    # Action/state space sizes ------------------------------------------
    env = EdgeCloudEnvironment(build_device("mi8pro"), seed=0)
    check("space_66_actions", "Mi8Pro action space has 66 actions",
          len(env.targets()) == 66, str(len(env.targets())))
    from repro.core.state import table_i_state_space
    check("space_3072_states", "Table-I space has 3,072 states",
          table_i_state_space().size == 3072,
          str(table_i_state_space().size))

    table = format_table(
        ["check", "claim", "status", "detail"],
        [[c.name, c.claim, "PASS" if c.passed else "FAIL", c.detail]
         for c in checks],
        title="Calibration self-test (Section III orderings)",
    )
    return {"checks": checks, "table": table,
            "all_passed": all(c.passed for c in checks)}
