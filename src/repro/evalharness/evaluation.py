"""Drivers for the evaluation figures (Figs. 9-14) and Section VI-C.

These reproduce the paper's headline numbers: the 9.8x/2.3x/1.6x/2.7x
energy-efficiency improvements over Edge(CPU)/Edge(Best)/Cloud/Connected
(Fig. 9), the streaming variant (Fig. 10), the dynamic-environment sweep
(Fig. 11), accuracy-target adaptability (Fig. 12), the decision
distribution and 97.9% prediction accuracy (Fig. 13), convergence and
transfer learning (Fig. 14), and the runtime/memory overhead analysis.
Sizes are scaled for simulation speed; every driver accepts knobs to run
at paper scale.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.baselines.mosaic import MosaicScheduler
from repro.baselines.neurosurgeon import NeurosurgeonScheduler
from repro.baselines.oracle import OptOracle
from repro.baselines.static import (
    CloudOffload,
    ConnectedEdgeOffload,
    EdgeBest,
    EdgeCpuFp32,
)
from repro.common import make_rng
from repro.core.action import ActionSpace
from repro.core.batchtrain import BatchTrainer
from repro.core.engine import AutoScale
from repro.core.qlearning import QLearningConfig
from repro.core.transfer import transfer_q_table
from repro.env.environment import EdgeCloudEnvironment
from repro.env.qos import use_case_for
from repro.env.scenarios import build_scenario
from repro.evalharness.metrics import EpisodeStats, mape
from repro.evalharness.reporting import format_kv, format_table
from repro.evalharness.runner import (
    RunConfig,
    adapt_engine,
    evaluate_autoscale,
    evaluate_scheduler,
    loo_train_and_evaluate,
    train_autoscale,
)
from repro.hardware.devices import build_device
from repro.models.zoo import build_network

__all__ = [
    "DEFAULT_NETWORKS",
    "baseline_suite",
    "fig9_main_results",
    "fig10_streaming",
    "fig11_dynamic",
    "fig12_accuracy_targets",
    "fig13_decisions",
    "fig14_convergence",
    "overhead_analysis",
    "ablation_states",
    "ablation_hyperparameters",
]

#: Default evaluation subset — one light CONV net, one FC-heavy net, one
#: heavy CONV net, the RC translation net.  Benchmarks widen this to the
#: full Table-III zoo.
DEFAULT_NETWORKS = ("mobilenet_v3", "inception_v1", "resnet_50",
                    "mobilebert")


def baseline_suite(include_prior_work=True):
    """The paper's comparison set (minus AutoScale and Opt)."""
    suite = [EdgeCpuFp32(), EdgeBest(), CloudOffload(),
             ConnectedEdgeOffload()]
    if include_prior_work:
        suite += [MosaicScheduler(), NeurosurgeonScheduler()]
    return suite


def _use_cases(network_names, streaming=False, accuracy_target=None):
    return [use_case_for(build_network(name), streaming=streaming,
                         accuracy_target=accuracy_target)
            for name in network_names]


def _aggregate(stats_by_sched, baseline_name="edge_cpu_fp32"):
    """Per-scheduler mean normalized PPW and violation over episodes."""
    episode_keys = {
        (s.use_case, s.scenario)
        for s in stats_by_sched[baseline_name]
    }
    baseline = {
        (s.use_case, s.scenario): s.mean_energy_mj
        for s in stats_by_sched[baseline_name]
    }
    summary = []
    for name, episodes in stats_by_sched.items():
        ratios, violations, total = [], 0, 0
        for stats in episodes:
            key = (stats.use_case, stats.scenario)
            if key not in episode_keys:
                continue
            ratios.append(baseline[key] / stats.mean_energy_mj)
            violations += sum(1 for lat in stats.latencies_ms
                              if lat > stats.qos_ms)
            total += stats.num_inferences
        summary.append({
            "scheduler": name,
            "ppw_norm": float(np.mean(ratios)),
            "qos_violation_pct": violations / total * 100.0,
        })
    return summary


def _run_suite(device_name, network_names, scenarios, config,
               streaming=False, accuracy_target=None, seed=0,
               include_prior_work=True):
    """Evaluate baselines + Opt + AutoScale(LOO) on one device."""
    use_cases = _use_cases(network_names, streaming, accuracy_target)
    stats_by_sched: Dict[str, List[EpisodeStats]] = {}

    # --- baselines and Opt over every scenario --------------------------
    schedulers = baseline_suite(include_prior_work) + [OptOracle()]
    for scheduler in schedulers:
        env = EdgeCloudEnvironment(build_device(device_name),
                                   scenario=scenarios[0], seed=seed)
        scheduler.train(env, use_cases, rng=make_rng(seed))
        episodes = []
        for scenario in scenarios:
            for use_case in use_cases:
                episodes.append(evaluate_scheduler(
                    env, scheduler, use_case, config.eval_runs, scenario
                ))
        stats_by_sched[scheduler.name] = episodes

    # --- AutoScale: leave-one-out across the networks --------------------
    # One environment serves every fold: each fold re-arms it (fresh RNG
    # stream, scenario + clock reset) while the exact nominal-component
    # caches stay warm, so folds after the first skip the layer walks.
    episodes = []
    loo_env = EdgeCloudEnvironment(build_device(device_name),
                                   scenario=scenarios[0], seed=seed)
    for test_case in use_cases:
        _, per_scenario = loo_train_and_evaluate(
            None, use_cases, test_case,
            scenarios=scenarios, config=config, seed=seed,
            environment=loo_env,
        )
        episodes.extend(per_scenario.values())
    stats_by_sched["autoscale"] = episodes
    return stats_by_sched


def fig9_main_results(device_names=("mi8pro",),
                      network_names=DEFAULT_NETWORKS,
                      scenarios=("S1", "S2", "S3", "S4", "S5"),
                      config=RunConfig(), seed=0):
    """Fig. 9: normalized PPW + QoS violation, static environments."""
    per_device = {}
    for device_name in device_names:
        stats = _run_suite(device_name, network_names, scenarios, config,
                           seed=seed)
        per_device[device_name] = _aggregate(stats)
    rows = [
        [device, s["scheduler"], s["ppw_norm"], s["qos_violation_pct"]]
        for device, summary in per_device.items()
        for s in summary
    ]
    table = format_table(
        ["device", "scheduler", "PPW vs Edge(CPU)", "QoS violation %"],
        rows, title="Fig. 9 - energy efficiency in static environments",
    )
    return {"per_device": per_device, "table": table}


def fig10_streaming(device_names=("mi8pro",),
                    network_names=("mobilenet_v3", "inception_v1",
                                   "resnet_50"),
                    scenarios=("S1", "S2", "S4"),
                    config=RunConfig(), seed=0):
    """Fig. 10: the streaming (30 FPS) variant of Fig. 9."""
    per_device = {}
    for device_name in device_names:
        stats = _run_suite(device_name, network_names, scenarios, config,
                           streaming=True, seed=seed,
                           include_prior_work=False)
        per_device[device_name] = _aggregate(stats)
    rows = [
        [device, s["scheduler"], s["ppw_norm"], s["qos_violation_pct"]]
        for device, summary in per_device.items()
        for s in summary
    ]
    table = format_table(
        ["device", "scheduler", "PPW vs Edge(CPU)", "QoS violation %"],
        rows, title="Fig. 10 - streaming scenario (30 FPS)",
    )
    return {"per_device": per_device, "table": table}


def fig11_dynamic(device_name="mi8pro", network_names=DEFAULT_NETWORKS,
                  scenarios=("S1", "S2", "S3", "S4", "S5",
                             "D1", "D2", "D3", "D4"),
                  config=RunConfig(), seed=0):
    """Fig. 11: static + dynamic environments, per-scenario breakdown."""
    stats = _run_suite(device_name, network_names, scenarios, config,
                       seed=seed, include_prior_work=False)
    # Per-scenario aggregation.
    baseline = {
        (s.use_case, s.scenario): s.mean_energy_mj
        for s in stats["edge_cpu_fp32"]
    }
    rows = []
    per_scenario = {}
    for name, episodes in stats.items():
        for scenario in scenarios:
            ratios, violations, total = [], 0, 0
            for episode in episodes:
                if episode.scenario != scenario:
                    continue
                key = (episode.use_case, scenario)
                ratios.append(baseline[key] / episode.mean_energy_mj)
                violations += sum(1 for lat in episode.latencies_ms
                                  if lat > episode.qos_ms)
                total += episode.num_inferences
            if not ratios:
                continue
            entry = {
                "scheduler": name, "scenario": scenario,
                "ppw_norm": float(np.mean(ratios)),
                "qos_violation_pct": violations / total * 100.0,
            }
            per_scenario.setdefault(scenario, []).append(entry)
            rows.append([scenario, name, entry["ppw_norm"],
                         entry["qos_violation_pct"]])
    overall = _aggregate(stats)
    table = format_table(
        ["scenario", "scheduler", "PPW vs Edge(CPU)", "QoS violation %"],
        rows, title="Fig. 11 - adaptability to stochastic variance",
    )
    return {"per_scenario": per_scenario, "overall": overall,
            "table": table}


def fig12_accuracy_targets(device_name="mi8pro",
                           network_names=("mobilenet_v3", "inception_v1",
                                          "resnet_50"),
                           targets=(None, 50.0, 65.0, 70.0),
                           scenarios=("S1",), config=RunConfig(), seed=0):
    """Fig. 12: AutoScale under different inference-accuracy targets."""
    rows = []
    results = {}
    loo_env = EdgeCloudEnvironment(build_device(device_name),
                                   scenario=scenarios[0], seed=seed)
    for accuracy_target in targets:
        use_cases = _use_cases(network_names,
                               accuracy_target=accuracy_target)
        baseline = EdgeCpuFp32()
        env = EdgeCloudEnvironment(build_device(device_name),
                                   scenario=scenarios[0], seed=seed)
        ratios, violations, total = [], 0, 0
        for test_case in use_cases:
            base_stats = evaluate_scheduler(env, baseline, test_case,
                                            config.eval_runs, scenarios[0])
            _, per_scenario = loo_train_and_evaluate(
                None, use_cases, test_case,
                scenarios=scenarios, config=config, seed=seed,
                oracle=False, environment=loo_env,
            )
            for stats in per_scenario.values():
                ratios.append(base_stats.mean_energy_mj
                              / stats.mean_energy_mj)
                violations += sum(1 for lat in stats.latencies_ms
                                  if lat > stats.qos_ms)
                total += stats.num_inferences
        label = "none" if accuracy_target is None else f"{accuracy_target:g}"
        entry = {
            "accuracy_target": label,
            "ppw_norm": float(np.mean(ratios)),
            "qos_violation_pct": violations / total * 100.0,
        }
        results[label] = entry
        rows.append([label, entry["ppw_norm"], entry["qos_violation_pct"]])
    table = format_table(
        ["accuracy target", "PPW vs Edge(CPU)", "QoS violation %"],
        rows, title="Fig. 12 - adaptability to inference quality targets",
    )
    return {"results": results, "table": table}


def fig13_decisions(device_names=("mi8pro", "galaxy_s10e", "moto_x_force"),
                    network_names=DEFAULT_NETWORKS,
                    scenarios=("S1", "S4"), config=RunConfig(), seed=0):
    """Fig. 13: decision distribution of AutoScale vs Opt + accuracy."""
    per_device = {}
    rows = []
    for device_name in device_names:
        use_cases = _use_cases(network_names)
        shares = {"local": 0, "cloud": 0, "connected": 0}
        opt_shares = {"local": 0, "cloud": 0, "connected": 0}
        matches, checked = 0, 0
        loo_env = EdgeCloudEnvironment(build_device(device_name),
                                       scenario=scenarios[0], seed=seed)
        for test_case in use_cases:
            _, per_scenario = loo_train_and_evaluate(
                None, use_cases, test_case,
                scenarios=scenarios, config=config, seed=seed,
                environment=loo_env,
            )
            for stats in per_scenario.values():
                matches += stats.oracle_matches
                checked += stats.oracle_checked
                for key, count in stats.decisions.items():
                    shares[key.split("/")[0]] += count
        # Opt's distribution over the same conditions.
        oracle = OptOracle()
        env = EdgeCloudEnvironment(build_device(device_name),
                                   scenario=scenarios[0], seed=seed)
        for scheduler_scenario in scenarios:
            for use_case in use_cases:
                stats = evaluate_scheduler(env, oracle, use_case,
                                           config.eval_runs,
                                           scheduler_scenario)
                for key, count in stats.decisions.items():
                    opt_shares[key.split("/")[0]] += count
        total = sum(shares.values())
        opt_total = sum(opt_shares.values())
        entry = {
            "autoscale_shares": {k: v / total for k, v in shares.items()},
            "opt_shares": {k: v / opt_total for k, v in opt_shares.items()},
            "prediction_accuracy_pct": matches / checked * 100.0,
        }
        per_device[device_name] = entry
        for location in ("local", "cloud", "connected"):
            rows.append([
                device_name, location,
                entry["autoscale_shares"][location] * 100.0,
                entry["opt_shares"][location] * 100.0,
            ])
    table = format_table(
        ["device", "location", "AutoScale %", "Opt %"],
        rows, title="Fig. 13 - execution-scaling decision distribution",
    )
    return {"per_device": per_device, "table": table}


def fig14_convergence(source_device="mi8pro",
                      transfer_devices=("galaxy_s10e", "moto_x_force"),
                      network_names=DEFAULT_NETWORKS,
                      scenarios=("S1",), train_runs=60, seed=0):
    """Fig. 14: reward convergence; transfer learning accelerates it."""
    from repro.core.convergence import episodes_to_converge

    use_cases = _use_cases(network_names)

    def scratch_engine(device_name, seed_offset=0):
        env = EdgeCloudEnvironment(build_device(device_name),
                                   scenario=scenarios[0],
                                   seed=seed + seed_offset)
        return AutoScale(env, seed=seed + seed_offset)

    # --- train the source device from scratch ---------------------------
    source = scratch_engine(source_device)
    source_trainer = BatchTrainer(source)
    scratch_curves = {}
    convergence = {}
    for use_case in use_cases:
        steps = source_trainer.run(use_case, train_runs)
        rewards = [step.reward for step in steps if not step.explored]
        scratch_curves[use_case.name] = rewards
        convergence[(source_device, "scratch", use_case.name)] = \
            episodes_to_converge(rewards)

    results = {"source": source_device, "curves": {"scratch": scratch_curves}}
    rows = [[source_device, "scratch", use_case.name,
             convergence[(source_device, "scratch", use_case.name)]]
            for use_case in use_cases]

    # --- transfer to the other devices ----------------------------------
    speedups = []
    for offset, device_name in enumerate(transfer_devices, start=1):
        for mode in ("scratch", "transfer"):
            engine = scratch_engine(device_name, offset * 10)
            trainer = BatchTrainer(engine)
            if mode == "transfer":
                transfer_q_table(source.qtable, source.action_space,
                                 engine.qtable, engine.action_space)
            for use_case in use_cases:
                steps = trainer.run(use_case, train_runs)
                rewards = [step.reward for step in steps
                           if not step.explored]
                convergence[(device_name, mode, use_case.name)] = \
                    episodes_to_converge(rewards)
                rows.append([device_name, mode, use_case.name,
                             convergence[(device_name, mode,
                                          use_case.name)]])
        scratch_mean = np.mean([
            convergence[(device_name, "scratch", c.name)]
            for c in use_cases
        ])
        transfer_mean = np.mean([
            convergence[(device_name, "transfer", c.name)]
            for c in use_cases
        ])
        speedups.append(1.0 - transfer_mean / scratch_mean)
    results["convergence"] = convergence
    results["transfer_time_reduction_pct"] = float(np.mean(speedups)) * 100.0
    results["table"] = format_table(
        ["device", "mode", "use case", "episodes to converge"],
        rows, title="Fig. 14 - convergence and learning transfer",
    )
    return results


def overhead_analysis(device_name="mi8pro",
                      network_names=("mobilenet_v3",), runs=120, seed=0):
    """Section VI-C: runtime, energy, and memory overhead of AutoScale."""
    use_cases = _use_cases(network_names)
    env = EdgeCloudEnvironment(build_device(device_name), scenario="S1",
                               seed=seed)
    engine = AutoScale(env, seed=seed)
    train_autoscale(engine, use_cases, ("S1",), runs)
    train_select = engine.overhead.mean_select_us()
    train_update = engine.overhead.mean_update_us()

    engine.freeze()
    engine.overhead.select_us.clear()
    for _ in range(runs):
        engine.step(use_cases[0])
    infer_select = engine.overhead.mean_select_us()

    # Energy-estimator error (paper: MAPE 7.3%).  Measured across the
    # variance conditions — the estimator's pre-measured power tables
    # miss co-runner bus/DRAM power, which is the error's main source.
    estimator_pairs = ([], [])
    rng = make_rng(seed)
    for scenario in ("S1", "S2", "S3", "S4"):
        env.scenario = build_scenario(scenario)
        env.rewind_clock()
        targets = env.targets()
        for _ in range(runs // 4):
            observation = env.observe()
            target = targets[int(rng.integers(len(targets)))]
            result = env.execute(use_cases[0].network, target,
                                 observation)
            estimator_pairs[0].append(result.estimated_energy_mj)
            estimator_pairs[1].append(result.energy_mj)
    estimator_mape = mape(*estimator_pairs)

    float16 = AutoScale(
        env, config=QLearningConfig(dtype="float16"), seed=seed
    )
    results = {
        "train_overhead_us": train_select + train_update,
        "inference_overhead_us": infer_select,
        "qtable_bytes_float32": engine.memory_footprint_bytes(),
        "qtable_bytes_float16": float16.memory_footprint_bytes(),
        "estimator_mape_pct": estimator_mape,
    }
    results["table"] = format_kv(
        [("training overhead (us/inference)", results["train_overhead_us"]),
         ("trained-table overhead (us)", results["inference_overhead_us"]),
         ("Q-table size float32 (MB)",
          results["qtable_bytes_float32"] / 1e6),
         ("Q-table size float16 (MB)",
          results["qtable_bytes_float16"] / 1e6),
         ("energy-estimator MAPE (%)", results["estimator_mape_pct"])],
        title="Section VI-C - overhead analysis",
    )
    return results


def ablation_states(device_name="mi8pro", network_names=DEFAULT_NETWORKS,
                    scenarios=("S1", "S2", "S3", "S4", "S5"),
                    eval_runs=12, train_runs=100, seed=0):
    """State ablation (Section IV-A): drop one feature, measure accuracy.

    The paper reports that removing any single state degrades prediction
    accuracy by 32.1% on average.  Protocol: train a full engine across
    every scenario, *freeze* it, then score its greedy decisions against
    Opt in each scenario.  Freezing matters — with online adaptation an
    ablated engine simply re-learns each static scenario and the merged
    states cost nothing; a deployed (trained) table cannot do that, and a
    dropped feature makes it blind to that dimension of variance.
    """
    from repro.core.state import table_i_state_space

    full_space = table_i_state_space()
    feature_names = [None] + [f.name for f in full_space.features]
    use_cases = _use_cases(network_names)
    oracle = OptOracle()
    rows, results = [], {}
    for dropped in feature_names:
        space = full_space if dropped is None \
            else full_space.without(dropped)
        env = EdgeCloudEnvironment(build_device(device_name),
                                   scenario=scenarios[0], seed=seed)
        engine = AutoScale(env, seed=seed,
                           state_space=_ablated_space(space, dropped))
        train_autoscale(engine, use_cases, scenarios, train_runs)
        engine.freeze()
        matches, checked = 0, 0
        for scenario in scenarios:
            env.scenario = build_scenario(scenario)
            env.rewind_clock()
            for use_case in use_cases:
                for _ in range(eval_runs):
                    observation = env.observe()
                    chosen = engine.predict(use_case.network, observation)
                    optimal = oracle.select(env, use_case, observation)
                    sweep = env.estimate_all(use_case.network, observation)
                    chosen_e = float(
                        sweep.energy_mj[sweep.index_of(chosen)]
                    )
                    optimal_e = float(
                        sweep.energy_mj[sweep.index_of(optimal)]
                    )
                    matches += int(chosen_e <= optimal_e * 1.01)
                    checked += 1
                    env.execute(use_case.network, chosen, observation)
        accuracy = matches / checked * 100.0
        label = dropped or "full"
        results[label] = accuracy
        rows.append([label, accuracy])
    table = format_table(
        ["dropped feature", "prediction accuracy %"], rows,
        title="State-feature ablation",
    )
    return {"results": results, "table": table}


def _ablated_space(space, dropped):
    """Wrap a reduced StateSpace so encode() still takes Table-I inputs."""
    if dropped is None:
        return space

    class _Adapter:
        """Encodes with the full raw tuple but only surviving features."""

        def __init__(self, inner):
            self._inner = inner
            self.size = inner.size
            self.features = inner.features

        def encode(self, network, observation):
            raw_by_name = {
                "s_conv": network.num_conv,
                "s_fc": network.num_fc,
                "s_rc": network.num_rc,
                "s_mac": network.mega_macs,
                "s_co_cpu": observation.cpu_util * 100.0,
                "s_co_mem": observation.mem_util * 100.0,
                "s_rssi_w": observation.rssi_wlan_dbm,
                "s_rssi_p": observation.rssi_p2p_dbm,
            }
            bins = tuple(
                feature.discretize(raw_by_name[feature.name])
                for feature in self._inner.features
            )
            return self._inner.index_of(bins)

        def without(self, name):
            return self._inner.without(name)

    return _Adapter(space)


def ablation_hyperparameters(device_name="mi8pro",
                             network_name="mobilenet_v3",
                             values=(0.1, 0.5, 0.9), train_runs=60,
                             seed=0):
    """Section V-C's sensitivity grid over learning rate and discount."""
    use_case = use_case_for(build_network(network_name))
    rows, results = [], {}
    for learning_rate in values:
        for discount in values:
            env = EdgeCloudEnvironment(build_device(device_name),
                                       scenario="S1", seed=seed)
            engine = AutoScale(
                env, seed=seed,
                config=QLearningConfig(learning_rate=learning_rate,
                                       discount=discount),
            )
            engine.run(use_case, train_runs)
            engine.freeze()
            stats = evaluate_autoscale(engine, use_case, eval_runs=20)
            results[(learning_rate, discount)] = stats.mean_energy_mj
            rows.append([learning_rate, discount, stats.mean_energy_mj,
                         stats.qos_violation_pct])
    table = format_table(
        ["learning rate", "discount", "mean energy (mJ)",
         "QoS violation %"],
        rows, title="Hyperparameter sensitivity (Section V-C)",
    )
    return {"results": results, "table": table}
