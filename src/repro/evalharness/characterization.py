"""Drivers for the motivation/characterization figures (Figs. 2-7).

Each function reproduces one figure's data as structured rows plus a
formatted table, using the deterministic nominal model where the paper
characterizes steady-state behaviour and noisy executions where it
measures predictors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.baselines.bayesian import BayesianOptScheduler
from repro.baselines.classification import knn_scheduler, svm_scheduler
from repro.baselines.oracle import OptOracle
from repro.baselines.regression import (
    linear_regression_scheduler,
    svr_scheduler,
)
from repro.baselines.static import EdgeCpuFp32
from repro.common import SimulationError, make_rng
from repro.env.environment import EdgeCloudEnvironment
from repro.env.qos import use_case_for
from repro.env.target import ExecutionTarget, Location
from repro.evalharness.metrics import (
    EpisodeStats,
    mape,
    misclassification_ratio,
)
from repro.evalharness.reporting import format_table
from repro.hardware.devices import build_device
from repro.models.layers import LayerType
from repro.models.quantization import Precision
from repro.models.zoo import build_network

__all__ = [
    "representative_targets",
    "fig2_characterization",
    "fig3_layer_latency",
    "fig4_accuracy_tradeoff",
    "fig5_interference",
    "fig6_signal",
    "fig7_predictors",
]


def representative_targets(environment):
    """One target per distinct (location, role, precision), at top V/F."""
    chosen = {}
    for target in environment.targets():
        slot = (target.location, target.role, target.precision)
        best = chosen.get(slot)
        if best is None or target.vf_index > best.vf_index:
            chosen[slot] = target
    return list(chosen.values())


def _edge_cpu_key(environment):
    for target in representative_targets(environment):
        if (target.location is Location.LOCAL and target.role == "cpu"
                and target.precision is Precision.FP32):
            return target
    raise SimulationError("no local CPU FP32 target")


def fig2_characterization(
    device_names=("mi8pro", "galaxy_s10e", "moto_x_force"),
    network_names=("inception_v1", "mobilenet_v3", "mobilebert"),
    seed=0,
):
    """Fig. 2: PPW and latency of three networks across execution targets.

    PPW is normalized to Edge (CPU FP32) and latency to the QoS target,
    exactly as in the figure.
    """
    rows = []
    for device_name in device_names:
        env = EdgeCloudEnvironment(build_device(device_name),
                                   scenario="S1", seed=seed)
        observation = env.observe()
        baseline_target = _edge_cpu_key(env)
        for network_name in network_names:
            use_case = use_case_for(build_network(network_name))
            baseline = env.estimate(use_case.network, baseline_target,
                                    observation)
            for target in representative_targets(env):
                result = env.estimate(use_case.network, target, observation)
                rows.append({
                    "device": device_name,
                    "network": network_name,
                    "target": target.key,
                    "ppw_norm": baseline.energy_mj / result.energy_mj,
                    "latency_norm": result.latency_ms / use_case.qos_ms,
                    "meets_qos": result.latency_ms <= use_case.qos_ms,
                })
    table = format_table(
        ["device", "network", "target", "PPW (norm)", "lat/QoS", "QoS ok"],
        [[r["device"], r["network"], r["target"],
          r["ppw_norm"], r["latency_norm"],
          "yes" if r["meets_qos"] else "no"] for r in rows],
        title="Fig. 2 - optimal edge-cloud execution vs NN and device",
    )
    return {"rows": rows, "table": table}


def fig3_layer_latency(device_name="mi8pro",
                       network_names=("inception_v1", "mobilenet_v3"),
                       seed=0):
    """Fig. 3: cumulative per-layer-type latency per mobile processor.

    Latencies are normalized to the CPU, reproducing the figure's message:
    FC layers run far slower on co-processors, CONV layers faster.
    """
    device = build_device(device_name)
    groups = {"conv": (LayerType.CONV,), "fc": (LayerType.FC,),
              "rc": (LayerType.RC,),
              "other": (LayerType.POOL, LayerType.NORM, LayerType.SOFTMAX,
                        LayerType.ARGMAX, LayerType.DROPOUT)}
    rows = []
    for network_name in network_names:
        network = build_network(network_name)
        per_role = {}
        for role in device.soc.roles:
            proc = device.soc.processor(role)
            precision = (Precision.FP32 if proc.supports(Precision.FP32)
                         else Precision.INT8)
            sums = {}
            for group, kinds in groups.items():
                layers = [l for l in network.layers if l.kind in kinds]
                sums[group] = proc.layers_latency_ms(layers, precision) \
                    if layers else 0.0
            per_role[role] = sums
        cpu_total = sum(per_role["cpu"].values())
        for role, sums in per_role.items():
            rows.append({
                "network": network_name,
                "processor": role,
                **{f"{g}_ms": v for g, v in sums.items()},
                "total_norm_cpu": sum(sums.values()) / cpu_total,
            })
    table = format_table(
        ["network", "proc", "conv ms", "fc ms", "rc ms", "other ms",
         "total/CPU"],
        [[r["network"], r["processor"], r["conv_ms"], r["fc_ms"],
          r["rc_ms"], r["other_ms"], r["total_norm_cpu"]] for r in rows],
        title="Fig. 3 - per-layer-type latency by processor",
    )
    return {"rows": rows, "table": table}


def fig4_accuracy_tradeoff(device_name="mi8pro",
                           network_names=("inception_v1", "mobilenet_v3"),
                           accuracy_targets=(50.0, 65.0), seed=0):
    """Fig. 4: PPW vs accuracy per target; the optimum shifts with the
    accuracy requirement."""
    env = EdgeCloudEnvironment(build_device(device_name), scenario="S1",
                               seed=seed)
    observation = env.observe()
    baseline_target = _edge_cpu_key(env)
    rows, optima = [], []
    for network_name in network_names:
        use_case = use_case_for(build_network(network_name))
        baseline = env.estimate(use_case.network, baseline_target,
                                observation)
        candidates = []
        for target in representative_targets(env):
            result = env.estimate(use_case.network, target, observation)
            rows.append({
                "network": network_name,
                "target": target.key,
                "ppw_norm": baseline.energy_mj / result.energy_mj,
                "accuracy_pct": result.accuracy_pct,
                "meets_qos": result.latency_ms <= use_case.qos_ms,
            })
            candidates.append((target, result))
        for accuracy_target in accuracy_targets:
            feasible = [
                (t, r) for t, r in candidates
                if r.accuracy_pct >= accuracy_target
                and r.latency_ms <= use_case.qos_ms
            ]
            pool = feasible or [(t, r) for t, r in candidates
                                if r.accuracy_pct >= accuracy_target]
            best = min(pool, key=lambda tr: tr[1].energy_mj)
            optima.append({
                "network": network_name,
                "accuracy_target": accuracy_target,
                "optimal_target": best[0].key,
            })
    table = format_table(
        ["network", "target", "PPW (norm)", "accuracy %", "QoS ok"],
        [[r["network"], r["target"], r["ppw_norm"], r["accuracy_pct"],
          "yes" if r["meets_qos"] else "no"] for r in rows],
        title="Fig. 4 - energy efficiency vs inference accuracy",
    )
    return {"rows": rows, "optima": optima, "table": table}


def fig5_interference(device_name="mi8pro", network_name="mobilenet_v3",
                      seed=0):
    """Fig. 5: co-runner interference shifts the optimal target."""
    use_case = use_case_for(build_network(network_name))
    rows, optima = [], []
    # The figure normalizes PPW to Edge (CPU) *with no co-running app*.
    quiet_env = EdgeCloudEnvironment(build_device(device_name),
                                     scenario="S1", seed=seed)
    baseline = quiet_env.estimate(use_case.network,
                                  _edge_cpu_key(quiet_env),
                                  quiet_env.observe())
    for scenario in ("S1", "S2", "S3"):
        env = EdgeCloudEnvironment(build_device(device_name),
                                   scenario=scenario, seed=seed)
        observation = env.observe()
        best = None
        for target in representative_targets(env):
            result = env.estimate(use_case.network, target, observation)
            rows.append({
                "scenario": scenario,
                "target": target.key,
                "ppw_norm": baseline.energy_mj / result.energy_mj,
                "latency_norm": result.latency_ms / use_case.qos_ms,
            })
            rank = (result.latency_ms > use_case.qos_ms, result.energy_mj)
            if best is None or rank < best[0]:
                best = (rank, target.key)
        optima.append({"scenario": scenario, "optimal_target": best[1]})
    table = format_table(
        ["scenario", "target", "PPW (norm)", "lat/QoS"],
        [[r["scenario"], r["target"], r["ppw_norm"], r["latency_norm"]]
         for r in rows],
        title=f"Fig. 5 - interference impact ({network_name})",
    )
    return {"rows": rows, "optima": optima, "table": table}


def fig6_signal(device_name="mi8pro", network_name="resnet_50", seed=0):
    """Fig. 6: signal-strength variation shifts the optimal target.

    S1 = both links strong; S4 = weak Wi-Fi; S4+S5 = both weak (emulated
    with a combined scenario).
    """
    from repro.env.scenarios import Scenario
    from repro.interference.corunner import no_corunner
    from repro.wireless.signal import (
        ConstantSignal,
        WEAK_RSSI_DBM_TYPICAL,
    )

    both_weak = Scenario(
        "S4+S5", "weak Wi-Fi and weak Wi-Fi Direct", no_corunner(),
        ConstantSignal(WEAK_RSSI_DBM_TYPICAL),
        ConstantSignal(WEAK_RSSI_DBM_TYPICAL),
    )
    use_case = use_case_for(build_network(network_name))
    rows, optima = [], []
    for scenario in ("S1", "S4", both_weak):
        env = EdgeCloudEnvironment(build_device(device_name),
                                   scenario=scenario, seed=seed)
        observation = env.observe()
        scenario_name = env.scenario.name
        best = None
        best_local = None
        for target in representative_targets(env):
            result = env.estimate(use_case.network, target, observation)
            if target.location is Location.LOCAL:
                if best_local is None or result.energy_mj < best_local:
                    best_local = result.energy_mj
            rank = (result.latency_ms > use_case.qos_ms, result.energy_mj)
            if best is None or rank < best[0]:
                best = (rank, target, result)
        for target in representative_targets(env):
            result = env.estimate(use_case.network, target, observation)
            rows.append({
                "scenario": scenario_name,
                "target": target.key,
                "ppw_norm_best_local": best_local / result.energy_mj,
                "latency_norm": result.latency_ms / use_case.qos_ms,
            })
        optima.append({"scenario": scenario_name,
                       "optimal_target": best[1].key})
    table = format_table(
        ["scenario", "target", "PPW/best-edge", "lat/QoS"],
        [[r["scenario"], r["target"], r["ppw_norm_best_local"],
          r["latency_norm"]] for r in rows],
        title=f"Fig. 6 - signal-strength impact ({network_name})",
    )
    return {"rows": rows, "optima": optima, "table": table}


def fig7_predictors(device_name="mi8pro",
                    network_names=("mobilenet_v3", "inception_v1",
                                   "resnet_50", "mobilebert"),
                    samples_per_case=25, eval_runs=20, seed=0):
    """Fig. 7: prediction-based approaches vs Opt.

    Trains LR/SVR/SVM/KNN/BO on mixed-variance profiling data, then
    reports (a) regression/BO MAPE with and without runtime variance,
    (b) SVM/KNN misclassification, and (c) normalized PPW plus QoS
    violation per approach against Edge (CPU) and Opt.
    """
    rng = make_rng(seed)
    use_cases = [use_case_for(build_network(name))
                 for name in network_names]

    def fresh_env(scenario, offset=0):
        return EdgeCloudEnvironment(build_device(device_name),
                                    scenario=scenario, seed=seed + offset)

    # --- train every predictor on pooled mixed-variance data -----------
    lr, svr = linear_regression_scheduler(), svr_scheduler()
    svm, knn = svm_scheduler(), knn_scheduler()
    bo = BayesianOptScheduler(warmup=8, iterations=6, seed=seed)
    training_envs = [fresh_env(scenario, offset)
                     for offset, scenario in
                     enumerate(("S1", "S2", "S3", "S4"))]
    per_env = max(4, samples_per_case // 4)
    for scheduler in (lr, svr, svm, knn):
        scheduler.train(training_envs, use_cases, rng=rng,
                        samples_per_case=per_env)
    bo.train([fresh_env("S1", 9), fresh_env("S3", 10),
              fresh_env("S4", 11)], use_cases)

    # --- MAPE with/without variance ------------------------------------
    mapes = {}
    for label, scenarios in (("no_variance", ("S1",)),
                             ("variance", ("S2", "S3", "S4"))):
        for scheduler in (lr, svr, bo):
            predicted, measured = [], []
            for offset, scenario in enumerate(scenarios):
                env = fresh_env(scenario, 20 + offset)
                targets = env.targets()
                for use_case in use_cases:
                    for _ in range(eval_runs // len(scenarios) + 1):
                        observation = env.observe()
                        target = targets[int(rng.integers(len(targets)))]
                        result = env.execute(use_case.network, target,
                                             observation)
                        energy_pred_mj, _ = scheduler.predict_energy_latency(
                            use_case, observation, [target], env
                        )
                        predicted.append(float(energy_pred_mj[0]))
                        measured.append(result.energy_mj)
            mapes[(scheduler.name, label)] = mape(predicted, measured)

    # --- classifier misclassification under variance --------------------
    from repro.baselines.classification import slot_of

    # Evaluation deliberately includes variance conditions absent from
    # the training campaign (S5, D3): a fielded predictor faces contexts
    # it never profiled, which is where memorization-style classifiers
    # lose their apparent accuracy (Section III-C's argument).
    oracle = OptOracle(cache=False)
    misclass = {}
    for scheduler in (svm, knn):
        chosen_labels, optimal_labels = [], []
        for offset, scenario in enumerate(("S2", "S4", "S5", "D3")):
            env = fresh_env(scenario, 40 + offset)
            for use_case in use_cases:
                for _ in range(eval_runs // 4 + 1):
                    observation = env.observe()
                    chosen = scheduler.select(env, use_case, observation)
                    optimal = oracle.select(env, use_case, observation)
                    chosen_labels.append(slot_of(chosen))
                    optimal_labels.append(slot_of(optimal))
                    env.execute(use_case.network, chosen, observation)
        misclass[scheduler.name] = misclassification_ratio(
            chosen_labels, optimal_labels
        )

    # --- end-to-end PPW + QoS violation ---------------------------------
    summary = []
    schedulers = [EdgeCpuFp32(), lr, svr, svm, knn, bo, OptOracle()]
    baseline_energy_mj = {}
    for scheduler in schedulers:
        energies, violations, count = [], 0, 0
        for offset, scenario in enumerate(("S1", "S2", "S4", "S5",
                                           "D3")):
            env = fresh_env(scenario, 60 + offset)
            for use_case in use_cases:
                stats = EpisodeStats(scheduler.name, use_case.name,
                                     scenario, qos_ms=use_case.qos_ms)
                for _ in range(max(2, eval_runs // 4)):
                    observation = env.observe()
                    result = scheduler.execute(env, use_case, observation)
                    stats.record(result)
                key = (scenario, use_case.name)
                if scheduler.name == "edge_cpu_fp32":
                    baseline_energy_mj[key] = stats.mean_energy_mj
                energies.append(
                    baseline_energy_mj[key] / stats.mean_energy_mj
                )
                violations += sum(
                    1 for lat in stats.latencies_ms if lat > use_case.qos_ms
                )
                count += stats.num_inferences
        summary.append({
            "scheduler": scheduler.name,
            "ppw_norm": float(np.mean(energies)),
            "qos_violation_pct": violations / count * 100.0,
        })

    table = format_table(
        ["scheduler", "PPW vs Edge(CPU)", "QoS violation %"],
        [[s["scheduler"], s["ppw_norm"], s["qos_violation_pct"]]
         for s in summary],
        title="Fig. 7 - prediction-based approaches vs Opt",
    )
    return {"mape": mapes, "misclassification": misclass,
            "summary": summary, "table": table}
