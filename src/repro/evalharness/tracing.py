"""Execution tracing: record, persist, and analyze inference streams.

A deployed scheduler needs observability: which targets ran, what they
cost, where deadlines were missed, and how decisions moved as conditions
changed.  :class:`TraceRecorder` captures one record per inference from
an engine's steps (or any scheduler's results), round-trips through JSONL,
and produces the summaries the examples print.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.contracts import (
    ensure_duration_ms,
    ensure_energy_mj,
    ensure_finite,
    ensure_latency_ms,
)
from repro.common import ConfigError

__all__ = ["TraceRecord", "TraceRecorder", "load_trace"]


@dataclass(frozen=True)
class TraceRecord:
    """One inference, flattened for persistence."""

    index: int
    at_ms: float
    use_case: str
    target_key: str
    latency_ms: float
    energy_mj: float
    estimated_energy_mj: float
    accuracy_pct: float
    qos_ms: float
    reward: Optional[float] = None
    explored: Optional[bool] = None

    def __post_init__(self):
        ensure_duration_ms(self.at_ms, "at_ms")
        ensure_latency_ms(self.latency_ms, "latency_ms")
        ensure_energy_mj(self.energy_mj, "energy_mj")
        ensure_energy_mj(self.estimated_energy_mj, "estimated_energy_mj")
        ensure_duration_ms(self.qos_ms, "qos_ms")
        if not 0.0 <= self.accuracy_pct <= 100.0:
            raise ConfigError(
                f"accuracy outside [0, 100]: {self.accuracy_pct}"
            )
        if self.reward is not None:
            ensure_finite(self.reward, "reward")

    @property
    def meets_qos(self):
        return self.latency_ms <= self.qos_ms


class TraceRecorder:
    """Accumulates :class:`TraceRecord` entries and analyzes them."""

    def __init__(self):
        self.records: List[TraceRecord] = []

    def __len__(self):
        return len(self.records)

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------

    def record_step(self, step, use_case, at_ms=None):
        """Capture one engine :class:`AutoScaleStep`."""
        result = step.result
        self.records.append(TraceRecord(
            index=len(self.records),
            at_ms=float(at_ms if at_ms is not None else len(self.records)),
            use_case=use_case.name,
            target_key=step.target_key,
            latency_ms=result.latency_ms,
            energy_mj=result.energy_mj,
            estimated_energy_mj=result.estimated_energy_mj,
            accuracy_pct=result.accuracy_pct,
            qos_ms=use_case.qos_ms,
            reward=step.reward,
            explored=step.explored,
        ))
        return self.records[-1]

    def record_result(self, result, use_case, at_ms=None):
        """Capture a bare :class:`ExecutionResult` (baseline schedulers)."""
        self.records.append(TraceRecord(
            index=len(self.records),
            at_ms=float(at_ms if at_ms is not None else len(self.records)),
            use_case=use_case.name,
            target_key=result.target_key,
            latency_ms=result.latency_ms,
            energy_mj=result.energy_mj,
            estimated_energy_mj=result.estimated_energy_mj,
            accuracy_pct=result.accuracy_pct,
            qos_ms=use_case.qos_ms,
        ))
        return self.records[-1]

    # ------------------------------------------------------------------
    # Persistence (JSONL)
    # ------------------------------------------------------------------

    def save(self, path):
        """Write one JSON object per line."""
        path = pathlib.Path(path)
        with path.open("w") as handle:
            for record in self.records:
                handle.write(json.dumps(asdict(record)) + "\n")
        return path

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------

    def _require_records(self):
        if not self.records:
            raise ConfigError("trace is empty")

    def summary(self):
        """Aggregate energy/latency/violation statistics."""
        self._require_records()
        energies = np.array([r.energy_mj for r in self.records])
        latencies = np.array([r.latency_ms for r in self.records])
        violations = sum(1 for r in self.records if not r.meets_qos)
        return {
            "num_inferences": len(self.records),
            "total_energy_mj": float(energies.sum()),
            "mean_energy_mj": float(energies.mean()),
            "p95_latency_ms": float(np.percentile(latencies, 95)),
            "qos_violation_pct": violations / len(self.records) * 100.0,
        }

    def decisions_by_location(self):
        """Share of decisions per location (local/cloud/connected)."""
        self._require_records()
        counts: Dict[str, int] = {}
        for record in self.records:
            location = record.target_key.split("/")[0]
            counts[location] = counts.get(location, 0) + 1
        total = len(self.records)
        return {k: v / total for k, v in sorted(counts.items())}

    def migrations(self):
        """Indices where the chosen target changed from the previous
        inference of the *same use case* — how often the scheduler moved
        work around."""
        self._require_records()
        last: Dict[str, str] = {}
        moved = []
        for record in self.records:
            previous = last.get(record.use_case)
            if previous is not None and previous != record.target_key:
                moved.append(record.index)
            last[record.use_case] = record.target_key
        return moved

    def violation_runs(self):
        """Lengths of consecutive QoS-violation stretches."""
        self._require_records()
        runs, current = [], 0
        for record in self.records:
            if record.meets_qos:
                if current:
                    runs.append(current)
                current = 0
            else:
                current += 1
        if current:
            runs.append(current)
        return runs

    def estimator_mape_pct(self):
        """MAPE of the engine's energy estimates over this trace."""
        self._require_records()
        predicted = np.array([r.estimated_energy_mj for r in self.records])
        measured = np.array([r.energy_mj for r in self.records])
        return float(np.mean(np.abs(predicted - measured) / measured)
                     * 100.0)


def load_trace(path):
    """Read a JSONL trace back into a :class:`TraceRecorder`."""
    path = pathlib.Path(path)
    if not path.exists():
        raise ConfigError(f"no trace at {path}")
    recorder = TraceRecorder()
    with path.open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            recorder.records.append(TraceRecord(**json.loads(line)))
    return recorder
