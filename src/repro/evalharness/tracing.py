"""Compatibility shim: tracing moved to :mod:`repro.core.tracing`.

The recorder is consumed by the serving layer (``core.service`` records
every step), which made ``core -> evalharness`` a module-scope upward
import under the layer contract (RL104).  The implementation now lives
in :mod:`repro.core.tracing`; this module re-exports the public names so
existing imports keep working.
"""

from __future__ import annotations

from repro.core.tracing import TraceRecord, TraceRecorder, load_trace

__all__ = ["TraceRecord", "TraceRecorder", "load_trace"]
