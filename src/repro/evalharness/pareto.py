"""Energy-latency Pareto analysis of the execution design space.

For a (device, network, conditions) triple, every execution target is a
point in the (latency, energy) plane.  The Pareto frontier is the set of
targets no other target beats on both axes — the menu a scheduler actually
chooses from.  This analysis answers two questions the paper's figures
imply but never plot directly:

- how much of the ~66-action space is *dominated* (wasted actions a
  smarter enumeration could prune), and
- whether the oracle's pick is, as it must be, the cheapest frontier
  point that meets the QoS constraint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.contracts import ensure_energy_mj, ensure_latency_ms
from repro.baselines.oracle import OptOracle
from repro.common import ConfigError
from repro.env.environment import EdgeCloudEnvironment
from repro.env.observation import Observation
from repro.env.qos import use_case_for
from repro.evalharness.reporting import format_table
from repro.hardware.devices import build_device
from repro.models.zoo import build_network

__all__ = ["ParetoPoint", "pareto_frontier", "design_space_analysis"]


@dataclass(frozen=True)
class ParetoPoint:
    """One execution target in the (latency, energy) plane."""

    target_key: str
    latency_ms: float
    energy_mj: float
    accuracy_pct: float

    def __post_init__(self):
        ensure_latency_ms(self.latency_ms, "latency_ms")
        ensure_energy_mj(self.energy_mj, "energy_mj")
        if not 0.0 <= self.accuracy_pct <= 100.0:
            raise ConfigError(
                f"accuracy outside [0, 100]: {self.accuracy_pct}"
            )

    def dominates(self, other):
        """Strictly better on one axis, at least as good on the other."""
        return (self.latency_ms <= other.latency_ms
                and self.energy_mj <= other.energy_mj
                and (self.latency_ms < other.latency_ms
                     or self.energy_mj < other.energy_mj))


def pareto_frontier(points):
    """The non-dominated subset, sorted by latency."""
    frontier: List[ParetoPoint] = []
    for candidate in points:
        if any(other.dominates(candidate) for other in points
               if other is not candidate):
            continue
        frontier.append(candidate)
    return sorted(frontier, key=lambda p: p.latency_ms)


def design_space_analysis(device_name="mi8pro",
                          network_name="inception_v1",
                          observation=None, accuracy_target=None,
                          seed=0):
    """Evaluate every target, extract the frontier, check the oracle."""
    env = EdgeCloudEnvironment(build_device(device_name), scenario="S1",
                               seed=seed)
    use_case = use_case_for(build_network(network_name),
                            accuracy_target=accuracy_target)
    observation = observation or Observation()

    points = []
    for target in env.targets():
        nominal = env.estimate(use_case.network, target, observation)
        points.append(ParetoPoint(
            target_key=target.key,
            latency_ms=nominal.latency_ms,
            energy_mj=nominal.energy_mj,
            accuracy_pct=nominal.accuracy_pct,
        ))
    frontier = pareto_frontier(points)
    frontier_keys = {p.target_key for p in frontier}

    oracle_target, oracle_nominal = OptOracle(cache=False).evaluate(
        env, use_case, observation
    )
    feasible_frontier = [p for p in frontier
                         if p.latency_ms <= use_case.qos_ms
                         and use_case.meets_accuracy(p.accuracy_pct)]

    table = format_table(
        ["target", "latency (ms)", "energy (mJ)", "acc %"],
        [[p.target_key, p.latency_ms, p.energy_mj, p.accuracy_pct]
         for p in frontier],
        title=(f"Pareto frontier: {network_name} on {device_name} "
               f"({len(frontier)}/{len(points)} targets non-dominated)"),
    )
    return {
        "points": points,
        "frontier": frontier,
        "dominated_fraction": 1.0 - len(frontier) / len(points),
        "oracle_target": oracle_target.key,
        "oracle_on_frontier": oracle_target.key in frontier_keys,
        "oracle_energy_mj": oracle_nominal.energy_mj,
        "feasible_frontier": feasible_frontier,
        "table": table,
    }
