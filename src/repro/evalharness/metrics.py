"""Metrics used throughout the paper's evaluation.

- **PPW** (performance per watt) — for single inferences this reduces to
  inferences per joule; figures always report it *normalized* to a named
  baseline, so we provide ratio helpers.
- **QoS violation ratio** — fraction of inferences exceeding the target.
- **MAPE** — mean absolute percentage error of a predictor (Fig. 7).
- **Misclassification ratio** — for the classification baselines.
- **Prediction accuracy** — how often a scheduler's decision matches the
  oracle's, counting near-ties (energy within 1%) as matches, exactly the
  criterion under which the paper reports 97.9% (Fig. 13: AutoScale
  "mis-predicts the optimal target only when the energy difference ...
  is less than 1%").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.common import ConfigError

__all__ = [
    "EpisodeStats",
    "availability_pct",
    "mape",
    "misclassification_ratio",
    "ppw_ratio",
    "qos_violation_ratio",
    "decision_match",
]


def availability_pct(statuses):
    """Fraction of requests that delivered a result, in percent.

    Takes an iterable of :class:`~repro.core.tracing.TraceRecord`
    status strings (``"ok"`` and ``"degraded"`` both delivered;
    ``"failed"`` did not).
    """
    statuses = list(statuses)
    if not statuses:
        raise ConfigError("no statuses")
    delivered = sum(1 for status in statuses if status != "failed")
    return delivered / len(statuses) * 100.0


def mape(predicted, measured):
    """Mean absolute percentage error, in percent."""
    predicted = np.asarray(predicted, dtype=float)
    measured = np.asarray(measured, dtype=float)
    if predicted.shape != measured.shape:
        raise ConfigError("prediction/measurement shape mismatch")
    if len(predicted) == 0:
        raise ConfigError("empty MAPE input")
    if np.any(measured <= 0):
        raise ConfigError("measured values must be positive")
    return float(np.mean(np.abs(predicted - measured) / measured) * 100.0)


def misclassification_ratio(predicted_labels, true_labels):
    """Fraction of label mismatches, in percent."""
    if len(predicted_labels) != len(true_labels):
        raise ConfigError("label list length mismatch")
    if not predicted_labels:
        raise ConfigError("empty label lists")
    wrong = sum(1 for p, t in zip(predicted_labels, true_labels) if p != t)
    return wrong / len(predicted_labels) * 100.0


def qos_violation_ratio(latencies_ms, qos_ms):
    """Fraction of inferences over the QoS target, in percent."""
    latencies = np.asarray(latencies_ms, dtype=float)
    if len(latencies) == 0:
        raise ConfigError("no latencies")
    return float(np.mean(latencies > qos_ms) * 100.0)


def ppw_ratio(baseline_energy_mj, candidate_energy_mj):
    """PPW of the candidate normalized to the baseline.

    Since PPW is proportional to 1/energy for a fixed workload, the ratio
    is baseline energy over candidate energy — ">1" means the candidate
    is more energy-efficient.
    """
    if baseline_energy_mj <= 0 or candidate_energy_mj <= 0:
        raise ConfigError("energies must be positive")
    return baseline_energy_mj / candidate_energy_mj


def decision_match(chosen_energy_mj, optimal_energy_mj, tolerance=0.01):
    """Whether a decision counts as "optimal" under the 1% criterion."""
    if optimal_energy_mj <= 0:
        raise ConfigError("optimal energy must be positive")
    return (chosen_energy_mj
            <= optimal_energy_mj * (1.0 + tolerance) + 1e-12)


@dataclass
class EpisodeStats:
    """Accumulated measurements of one (scheduler, use case, scenario) run."""

    scheduler: str
    use_case: str
    scenario: str
    energies_mj: List[float] = field(default_factory=list)
    latencies_ms: List[float] = field(default_factory=list)
    qos_ms: float = 0.0
    decisions: Dict[str, int] = field(default_factory=dict)
    oracle_matches: int = 0
    oracle_checked: int = 0

    def __post_init__(self):
        if not math.isfinite(self.qos_ms) or self.qos_ms < 0:
            raise ConfigError(f"invalid QoS target {self.qos_ms} ms")
        for name, series in (("energies_mj", self.energies_mj),
                             ("latencies_ms", self.latencies_ms)):
            if any(not math.isfinite(value) or value <= 0
                   for value in series):
                raise ConfigError(
                    f"{name} must contain finite positive values"
                )

    def record(self, result, matched_oracle=None):
        self.energies_mj.append(result.energy_mj)
        self.latencies_ms.append(result.latency_ms)
        self.decisions[result.target_key] = \
            self.decisions.get(result.target_key, 0) + 1
        if matched_oracle is not None:
            self.oracle_checked += 1
            self.oracle_matches += int(matched_oracle)

    @property
    def num_inferences(self):
        return len(self.energies_mj)

    @property
    def mean_energy_mj(self):
        if not self.energies_mj:
            raise ConfigError("no inferences recorded")
        return float(np.mean(self.energies_mj))

    @property
    def mean_latency_ms(self):
        return float(np.mean(self.latencies_ms))

    @property
    def qos_violation_pct(self):
        return qos_violation_ratio(self.latencies_ms, self.qos_ms)

    @property
    def prediction_accuracy_pct(self):
        if self.oracle_checked == 0:
            return float("nan")
        return self.oracle_matches / self.oracle_checked * 100.0

    def decision_shares(self):
        """Fraction of decisions per target key."""
        total = sum(self.decisions.values())
        return {key: count / total
                for key, count in sorted(self.decisions.items())}
