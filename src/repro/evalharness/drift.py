"""Drift evaluation: guarded vs unguarded serving under mid-run shift.

The chaos driver varies *failure*, the overload driver varies *load*;
this driver varies the *world itself* mid-episode, which is exactly the
regime the policy guard (:mod:`repro.guard`) exists for.  Each episode
warms an engine closed-loop under the base scenario, then replays a
seeded open-loop arrival stream with learning still on — and at
``drift_at_ms`` a typed ``TIMER`` event on the :mod:`repro.sim` heap
mutates the environment underneath the policy:

- ``stationary`` — nothing changes (the false-alarm control);
- ``rssi_shift`` — the strong Wi-Fi of S1 collapses to S4's weak
  signal, so every learned remote preference goes stale;
- ``corunner_flip`` — a CPU-intensive co-runner (S2) appears, shifting
  requests into state buckets the table never trained under;
- ``cloud_slowdown`` — a remote straggler storm (an unmodeled fault-
  plan change: the nominal cost model keeps predicting the old remote
  latency, so residuals — not states — carry the signal).

Scenarios compose with the chaos fault plans (``plan=``); the slowdown
merges into whatever plan is already active.

The headline properties, pinned by tests: guarded serving strictly
dominates unguarded on post-drift QoS violations in every drifted
scenario, the guard never fires on ``stationary``, and with the guard
disabled the episode is bit-identical to an unguarded one.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.common import ConfigError, UnknownKeyError, make_rng
from repro.core.tracing import TraceRecorder
from repro.env.environment import EdgeCloudEnvironment
from repro.env.qos import UseCase
from repro.faults.plan import FaultPlan
from repro.guard import GuardConfig, PolicyGuard
from repro.hardware.devices import mi8pro
from repro.models.zoo import build_network
from repro.serving.arrivals import PoissonArrivals
from repro.serving.pipeline import ServingConfig, ServingPipeline
from repro.sim.events import EventKind

__all__ = [
    "DriftScenario",
    "DRIFT_SCENARIOS",
    "build_drift_scenario",
    "drift_episode",
    "drift_sweep",
]


@dataclass(frozen=True)
class DriftScenario:
    """One named mid-episode world shift.

    ``shifted_scenario`` (a Table-IV id) swaps the environment scenario
    at drift time; ``straggler_prob``/``straggler_factor`` > defaults
    merge a remote straggler storm into the active fault plan.  A
    scenario may do either, both, or neither (``stationary``).
    """

    name: str
    description: str
    base_scenario: str = "S1"
    shifted_scenario: str = ""
    straggler_prob: float = 0.0
    straggler_factor: float = 1.0

    def __post_init__(self):
        if not self.name:
            raise ConfigError("drift scenario needs a name")
        if not 0.0 <= self.straggler_prob <= 1.0:
            raise ConfigError(
                f"straggler_prob outside [0, 1]: {self.straggler_prob}"
            )
        if self.straggler_factor < 1.0:
            raise ConfigError(
                f"straggler_factor must be >= 1, got "
                f"{self.straggler_factor}"
            )

    @property
    def drifts(self):
        """Whether anything actually changes at drift time."""
        return bool(self.shifted_scenario) or self.straggler_prob > 0


DRIFT_SCENARIOS: Dict[str, DriftScenario] = {
    "stationary": DriftScenario(
        "stationary", "no drift (false-alarm control)"),
    "rssi_shift": DriftScenario(
        "rssi_shift", "strong Wi-Fi collapses to S4's weak signal",
        shifted_scenario="S4"),
    "corunner_flip": DriftScenario(
        "corunner_flip", "a CPU-intensive co-runner (S2) appears",
        shifted_scenario="S2"),
    "cloud_slowdown": DriftScenario(
        "cloud_slowdown", "remote straggler storm (unmodeled)",
        straggler_prob=0.9, straggler_factor=6.0),
}


def build_drift_scenario(name):
    """Look up a drift scenario by name."""
    try:
        return DRIFT_SCENARIOS[name]
    except KeyError:
        raise UnknownKeyError(
            f"unknown drift scenario {name!r}; "
            f"choose from {tuple(DRIFT_SCENARIOS)}"
        ) from None


def _merge_slowdown(base_plan, scenario):
    """Merge the scenario's straggler storm into an active fault plan."""
    storm = FaultPlan(straggler_prob=scenario.straggler_prob,
                      straggler_factor=scenario.straggler_factor)
    if base_plan is None:
        return storm
    return replace(
        base_plan,
        straggler_prob=max(base_plan.straggler_prob,
                           scenario.straggler_prob),
        straggler_factor=max(base_plan.straggler_factor,
                             scenario.straggler_factor),
    )


def drift_episode(scenario, guarded, plan=None, device=None,
                  network_name="resnet_50", qos_ms=200.0,
                  accuracy_target=70.0, arrivals_per_s=5.0,
                  duration_ms=60_000.0, drift_at_ms=20_000.0,
                  warmup_requests=400, seed=0, guard_config=None):
    """Serve one drift episode; returns a result-row dict.

    The engine warms closed-loop under the base scenario, then the
    arrival stream replays open-loop through the full serving pipeline
    with **learning still on** — re-adaptation under drift is the whole
    point.  ``guarded`` arms the policy guard (``guard_config`` or the
    defaults); unguarded runs the identical episode with the inert
    guard.  The row combines the serving-phase trace summary with
    post-drift violation counts and the pipeline's health ledgers.
    """
    if isinstance(scenario, str):
        scenario = build_drift_scenario(scenario)
    if duration_ms <= 0:
        raise ConfigError("duration_ms must be positive")
    if not 0 <= drift_at_ms < duration_ms:
        raise ConfigError(
            f"drift_at_ms must lie inside the episode, got "
            f"{drift_at_ms} of {duration_ms} ms"
        )
    if warmup_requests < 0:
        raise ConfigError("warmup_requests cannot be negative")
    env = EdgeCloudEnvironment(
        device if device is not None else mi8pro(),
        scenario=scenario.base_scenario, seed=seed, think_time_ms=0.0,
    )
    use_case = UseCase(name=f"drift-{network_name}",
                       network=build_network(network_name), qos_ms=qos_ms,
                       accuracy_target=accuracy_target)
    if guarded:
        guard = PolicyGuard(guard_config if guard_config is not None
                            else GuardConfig())
    else:
        guard = PolicyGuard(GuardConfig.disabled())
    # Local import: repro.core.service imports evalharness tooling, so a
    # module-level import here would be circular.
    from repro.core.service import AutoScaleService
    service = AutoScaleService(env, seed=seed, guard=guard)
    service.register(use_case)
    for _ in range(warmup_requests):
        service.handle(use_case.name)
    # Measure the serving phase only — but keep learning ON.
    service.trace = TraceRecorder(max_records=service.trace_limit)
    env.rewind_clock()
    if plan is not None:
        env.faults = plan

    def apply_drift(event):
        if scenario.shifted_scenario:
            env.scenario = scenario.shifted_scenario
        if scenario.straggler_prob > 0:
            env.faults = _merge_slowdown(env.faults, scenario)

    if scenario.drifts:
        # The shift is itself a typed timeline event: it fires between
        # requests wherever the clock lands, not at a request boundary
        # the harness hand-picks.
        env.kernel.schedule(drift_at_ms, EventKind.TIMER,
                            payload=f"drift:{scenario.name}",
                            callback=apply_drift)
    arrivals = PoissonArrivals(
        use_case.name, arrivals_per_s=arrivals_per_s,
    ).generate(duration_ms, make_rng(seed + 1))
    if not arrivals:
        raise ConfigError(
            f"no arrivals generated in {duration_ms} ms at "
            f"{arrivals_per_s}/s"
        )
    pipeline = ServingPipeline(service, ServingConfig())
    pipeline.serve(arrivals)
    records = service.trace.records
    post = [r for r in records if r.at_ms >= drift_at_ms]
    post_violations = sum(1 for r in post if not r.meets_qos)
    row = {
        "scenario": scenario.name,
        "guarded": bool(guarded),
        "offered": len(arrivals),
        "post_drift_requests": len(post),
        "post_drift_violations": post_violations,
        "post_drift_violation_pct": (
            post_violations / len(post) * 100.0 if post else 0.0
        ),
    }
    row.update(service.trace.summary())
    status = pipeline.status()
    row["guard"] = status["guard"]
    row["brownout_escalations"] = status["brownout_escalations"]
    row["sheds_by_reason"] = status["sheds"]["sheds"]
    row["faults"] = status.get("faults")
    return row


def drift_sweep(scenarios=None, plan=None, device=None,
                network_name="resnet_50", qos_ms=200.0,
                accuracy_target=70.0, arrivals_per_s=5.0,
                duration_ms=60_000.0, drift_at_ms=20_000.0,
                warmup_requests=400, seed=0, guard_config=None):
    """Run every scenario guarded and unguarded; returns result rows.

    Both arms of each scenario share the seed, so they face identical
    warmup trajectories, identical arrival streams, and an identical
    world up to the first guard intervention.
    """
    if scenarios is None:
        scenarios = tuple(DRIFT_SCENARIOS)
    rows = []
    for name in scenarios:
        for guarded in (False, True):
            rows.append(drift_episode(
                name, guarded, plan=plan, device=device,
                network_name=network_name, qos_ms=qos_ms,
                accuracy_target=accuracy_target,
                arrivals_per_s=arrivals_per_s,
                duration_ms=duration_ms, drift_at_ms=drift_at_ms,
                warmup_requests=warmup_requests, seed=seed,
                guard_config=guard_config,
            ))
    return rows
