"""Fleet experiment: train once, transfer everywhere (Section VI-C).

The paper transfers a Mi8Pro-trained model to the Galaxy S10e and Moto X
Force and reports a 21.2% cut in training time.  This driver formalizes
the full fleet pipeline:

1. train a *donor* engine on one device across use cases and scenarios;
2. for every other device, instantiate fresh engines with and without the
   transferred table;
3. measure, per device: convergence speed-up, post-training decision
   quality against that device's own oracle, and how many actions the
   semantic mapper could seed.

``examples/fleet_transfer.py`` is the narrated version; this module is the
measured one.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.baselines.oracle import OptOracle
from repro.core.batchtrain import BatchTrainer
from repro.core.convergence import episodes_to_converge
from repro.core.engine import AutoScale
from repro.core.transfer import map_actions, transfer_q_table
from repro.env.environment import EdgeCloudEnvironment
from repro.env.qos import use_case_for
from repro.evalharness.metrics import decision_match
from repro.evalharness.reporting import format_table
from repro.hardware.devices import build_device
from repro.models.zoo import build_network

__all__ = ["fleet_transfer_study"]


def _convergence_episodes(engine, use_case, runs, trainer=None):
    driver = trainer if trainer is not None else engine
    steps = driver.run(use_case, runs)
    rewards = [step.reward for step in steps if not step.explored]
    return episodes_to_converge(rewards)


def _decision_quality(engine, use_cases, eval_runs=8):
    """Frozen-decision quality against the device's own oracle.

    Returns ``(match_pct, energy_gap_pct)``: the share of decisions
    within the 1%-energy criterion, and the mean excess energy over the
    oracle's pick.  The gap is the meaningful number for transfer — a
    transferred table is *anchored* to the donor's near-optimum (it
    carries visit counts, so no fresh sweep happens), which can miss the
    exact argmax while staying within a few percent on energy.
    """
    engine.freeze()
    env = engine.environment
    oracle = OptOracle()
    matches, checked = 0, 0
    gaps = []
    for use_case in use_cases:
        for _ in range(eval_runs):
            observation = env.observe()
            chosen = engine.predict(use_case.network, observation)
            optimal = oracle.select(env, use_case, observation)
            sweep = env.estimate_all(use_case.network, observation)
            chosen_e = float(sweep.energy_mj[sweep.index_of(chosen)])
            optimal_e = float(sweep.energy_mj[sweep.index_of(optimal)])
            matches += int(decision_match(chosen_e, optimal_e))
            gaps.append(chosen_e / optimal_e - 1.0)
            checked += 1
            env.execute(use_case.network, chosen, observation)
    engine.unfreeze()
    return matches / checked * 100.0, float(np.mean(gaps)) * 100.0


def fleet_transfer_study(donor_device="mi8pro",
                         fleet_devices=("galaxy_s10e", "moto_x_force"),
                         network_names=("mobilenet_v3", "inception_v1",
                                        "resnet_50", "mobilebert"),
                         train_runs=100, seed=0, batched=True):
    """Run the full fleet pipeline; returns per-device rows + a table."""
    use_cases = [use_case_for(build_network(name))
                 for name in network_names]

    donor_env = EdgeCloudEnvironment(build_device(donor_device),
                                     scenario="S1", seed=seed)
    donor = AutoScale(donor_env, seed=seed)
    donor_trainer = BatchTrainer(donor) if batched else None
    for use_case in use_cases:
        if donor_trainer is not None:
            donor_trainer.run(use_case, train_runs)
        else:
            donor.run(use_case, train_runs)

    rows: List[Dict] = []
    for offset, device_name in enumerate(fleet_devices, start=1):
        per_mode = {}
        for mode in ("scratch", "transfer"):
            env = EdgeCloudEnvironment(build_device(device_name),
                                       scenario="S1",
                                       seed=seed + offset)
            engine = AutoScale(env, seed=seed + offset)
            trainer = BatchTrainer(engine) if batched else None
            seeded = 0
            if mode == "transfer":
                seeded = transfer_q_table(
                    donor.qtable, donor.action_space,
                    engine.qtable, engine.action_space,
                )
            episodes = [_convergence_episodes(engine, case, train_runs,
                                              trainer=trainer)
                        for case in use_cases]
            quality_pct, gap_pct = _decision_quality(engine, use_cases)
            per_mode[mode] = {
                "mean_convergence": float(np.mean(episodes)),
                "quality_pct": quality_pct,
                "energy_gap_pct": gap_pct,
                "actions_seeded": seeded,
            }
        speedup = 1.0 - (per_mode["transfer"]["mean_convergence"]
                         / per_mode["scratch"]["mean_convergence"])
        rows.append({
            "device": device_name,
            "scratch_convergence": per_mode["scratch"]["mean_convergence"],
            "transfer_convergence":
                per_mode["transfer"]["mean_convergence"],
            "time_reduction_pct": speedup * 100.0,
            "scratch_quality_pct": per_mode["scratch"]["quality_pct"],
            "transfer_quality_pct": per_mode["transfer"]["quality_pct"],
            "scratch_energy_gap_pct":
                per_mode["scratch"]["energy_gap_pct"],
            "transfer_energy_gap_pct":
                per_mode["transfer"]["energy_gap_pct"],
            "actions_seeded": per_mode["transfer"]["actions_seeded"],
        })

    table = format_table(
        ["device", "scratch conv", "transfer conv", "time cut %",
         "scratch gap %", "transfer gap %", "seeded"],
        [[r["device"], r["scratch_convergence"],
          r["transfer_convergence"], r["time_reduction_pct"],
          r["scratch_energy_gap_pct"], r["transfer_energy_gap_pct"],
          r["actions_seeded"]] for r in rows],
        title=f"Fleet transfer study (donor: {donor_device})",
    )
    mean_reduction = float(np.mean([r["time_reduction_pct"]
                                    for r in rows]))
    return {"rows": rows, "mean_time_reduction_pct": mean_reduction,
            "table": table}
