"""Plain-text table rendering for experiment outputs.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers keep that output aligned and diff-friendly.
"""

from __future__ import annotations

__all__ = ["format_table", "format_kv"]


def format_table(headers, rows, title=None):
    """Render an aligned ASCII table."""
    headers = [str(h) for h in headers]
    text_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_kv(pairs, title=None):
    """Render key/value lines (for scalar summaries)."""
    lines = [title] if title else []
    width = max(len(str(k)) for k, _ in pairs) if pairs else 0
    for key, value in pairs:
        lines.append(f"{str(key).ljust(width)} : {_cell(value)}")
    return "\n".join(lines)


def _cell(value):
    if isinstance(value, float):
        if value != value:  # NaN
            return "n/a"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)
