"""Energy breakdown: where each decision's millijoules actually go.

Whole-inference energies hide the structure the paper's models expose:
a local run splits into processor-busy + host-idle + platform power; an
offloaded run into TX + RX + radio-idle + radio-tail + platform.  This
analyzer decomposes the nominal model's energy for any target, which is
how the examples explain *why* a decision wins (e.g. "the cloud loses on
the radio tail, not the transfer").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.contracts import ensure_energy_mj, ensure_latency_ms
from repro.common import ConfigError
from repro.env.target import Location
from repro.evalharness.reporting import format_table
from repro.hardware.power import platform_energy_mj
from repro.hardware.processor import ProcessorKind
from repro.wireless.energy import transmission_energy_mj

__all__ = ["EnergyBreakdown", "decompose_energy", "breakdown_table"]


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-component energy of one nominal execution."""

    target_key: str
    latency_ms: float
    components_mj: Dict[str, float]

    def __post_init__(self):
        ensure_latency_ms(self.latency_ms, "latency_ms")
        if not self.components_mj:
            raise ConfigError("energy breakdown has no components")
        for component, value_mj in self.components_mj.items():
            ensure_energy_mj(value_mj, f"components_mj[{component!r}]")

    @property
    def total_mj(self):
        return sum(self.components_mj.values())

    def share(self, component):
        """Fraction of the total a component accounts for."""
        return self.components_mj.get(component, 0.0) / self.total_mj

    def dominant_component(self):
        return max(self.components_mj, key=self.components_mj.get)


def decompose_energy(environment, network, target, observation):
    """Decompose the nominal-model energy of (network, target).

    Local targets: ``compute`` (busy processor), ``host_idle`` (the CPU
    idling while a co-processor runs), ``platform`` (always-on rails).
    Remote targets: ``tx``, ``rx``, ``radio_idle``, ``radio_tail``,
    ``platform``, ``host_idle``.
    """
    device = environment.device
    nominal = environment.estimate(network, target, observation)
    latency_ms = nominal.latency_ms
    components: Dict[str, float] = {
        "platform": platform_energy_mj(device.soc.platform_idle_mw,
                                       latency_ms),
    }
    if target.location is Location.LOCAL:
        proc = device.soc.processor(target.role)
        if proc.kind is ProcessorKind.CPU:
            host_idle = 0.0
        else:
            host_idle = device.soc.cpu.idle_power_mw * latency_ms / 1000.0
        components["host_idle"] = host_idle
        components["compute"] = (nominal.energy_mj
                                 - components["platform"] - host_idle)
    else:
        link = (environment.wifi if target.location is Location.CLOUD
                else environment.p2p)
        rssi_dbm = (observation.rssi_wlan_dbm
                    if target.location is Location.CLOUD
                    else observation.rssi_p2p_dbm)
        radio = transmission_energy_mj(
            link, rssi_dbm, network.input_bytes, network.output_bytes,
            latency_ms,
        )
        components["tx"] = radio.tx_energy_mj
        components["rx"] = radio.rx_energy_mj
        components["radio_idle"] = radio.idle_energy_mj
        components["radio_tail"] = radio.tail_energy_mj
        components["host_idle"] = (device.soc.cpu.idle_power_mw
                                   * latency_ms / 1000.0)
    return EnergyBreakdown(
        target_key=target.key,
        latency_ms=latency_ms,
        components_mj=components,
    )


def breakdown_table(environment, network, targets, observation,
                    title=None):
    """Side-by-side breakdown of several targets."""
    breakdowns = [decompose_energy(environment, network, target,
                                   observation)
                  for target in targets]
    component_names = sorted({name for b in breakdowns
                              for name in b.components_mj})
    rows = []
    for breakdown in breakdowns:
        rows.append(
            [breakdown.target_key, breakdown.total_mj]
            + [breakdown.components_mj.get(name, 0.0)
               for name in component_names]
        )
    table = format_table(
        ["target", "total (mJ)"] + [f"{n} (mJ)" for n in component_names],
        rows,
        title=title or f"Energy breakdown: {network.name}",
    )
    return {"breakdowns": breakdowns, "table": table}
