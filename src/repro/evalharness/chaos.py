"""Chaos evaluation: serving quality under injected request-level faults.

The paper's evaluation varies *degradation* (signal, contention); this
driver varies *failure*.  A :func:`chaos_sweep` serves the same request
stream through four schedulers at increasing fault intensity:

- ``resilient`` — AutoScale behind the full
  :class:`~repro.faults.ResiliencePolicy` (deadline, retries, breakers,
  local degradation);
- ``naive`` — the same engine, single-attempt serving (failures surface
  to the caller);
- ``static_remote`` — the nominally best remote target, always;
- ``static_local`` — the nominally best local target, always (immune to
  the fault plan, but pays local energy/latency for every request).

Each episode reports the trace summary (availability, QoS violations,
energy, retries, degraded share) plus the environment's fault ledger, so
tests can assert the headline property — resilience strictly dominates
naive serving on availability and QoS under every non-empty fault plan —
and the energy-conservation property (every billed dead-attempt
millijoule appears in the trace).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.common import ConfigError
from repro.env.environment import EdgeCloudEnvironment
from repro.env.qos import UseCase
from repro.core.tracing import TraceRecorder
from repro.faults import FaultPlan, OutageWindow, ResiliencePolicy
from repro.hardware.devices import mi8pro
from repro.models.zoo import build_network

__all__ = ["ChaosLevel", "DEFAULT_LEVELS", "chaos_episode", "chaos_sweep"]

#: The schedulers an episode can run (see module docstring).
_SCHEDULERS = ("resilient", "naive", "static_remote", "static_local")


@dataclass(frozen=True)
class ChaosLevel:
    """One named fault intensity of a sweep."""

    name: str
    plan: FaultPlan

    def __post_init__(self):
        if not self.name:
            raise ConfigError("chaos level needs a name")


DEFAULT_LEVELS: Tuple[ChaosLevel, ...] = (
    ChaosLevel("calm", FaultPlan.none()),
    ChaosLevel("mild", FaultPlan(loss_scale=1.0, abort_prob=0.05)),
    ChaosLevel("rough", FaultPlan(
        loss_scale=1.0, abort_prob=0.15, straggler_prob=0.1,
    )),
    ChaosLevel("hostile", FaultPlan(
        loss_scale=1.0, abort_prob=0.3, straggler_prob=0.2,
        outages=(OutageWindow("cloud", start_ms=5_000.0,
                              duration_ms=5_000.0, period_ms=20_000.0),),
    )),
)


def _build_use_case(network_name, qos_ms):
    return UseCase(name=f"chaos-{network_name}",
                   network=build_network(network_name), qos_ms=qos_ms)


def _static_target(env, use_case, remote):
    """The nominally best (remote or local) target at episode start."""
    observation = env.observe()
    targets = env.targets()
    indices = [index for index, target in enumerate(targets)
               if target.is_remote == remote]
    if not indices:
        raise ConfigError(
            f"no {'remote' if remote else 'local'} targets to serve from"
        )
    best = env.estimate_all(use_case.network, observation) \
        .argbest(use_case, indices=indices)
    if best is None:
        raise ConfigError("no accuracy-feasible static target")
    return targets[best]


def _serve_static(env, use_case, remote, num_requests):
    trace = TraceRecorder()
    target = _static_target(env, use_case, remote)
    for _ in range(num_requests):
        result = env.execute(use_case.network, target)
        trace.record_result(result, use_case, at_ms=env.clock.now_ms)
    return trace


def _serve_autoscale(env, use_case, resilience, num_requests, seed):
    # Local import: repro.core.service itself imports evalharness (the
    # tracer), so a module-level import here would be circular.
    from repro.core.service import AutoScaleService
    service = AutoScaleService(env, seed=seed, resilience=resilience)
    service.register(use_case)
    for _ in range(num_requests):
        service.handle(use_case.name)
    return service.trace


def chaos_episode(scheduler, plan, device=None, network_name="resnet_50",
                  qos_ms=200.0, num_requests=150, seed=0):
    """Serve one fault-injected episode; returns a result-row dict.

    The row combines the trace summary with the environment's fault
    ledger (``fault_*`` keys), so billed dead-attempt energy can be
    checked against the trace's accounting.
    """
    if scheduler not in _SCHEDULERS:
        raise ConfigError(
            f"unknown chaos scheduler {scheduler!r}; legal: {_SCHEDULERS}"
        )
    if num_requests < 1:
        raise ConfigError("num_requests must be >= 1")
    env = EdgeCloudEnvironment(device if device is not None else mi8pro(),
                               seed=seed, faults=plan)
    use_case = _build_use_case(network_name, qos_ms)
    if scheduler == "resilient":
        trace = _serve_autoscale(env, use_case, ResiliencePolicy(),
                                 num_requests, seed)
    elif scheduler == "naive":
        trace = _serve_autoscale(env, use_case,
                                 ResiliencePolicy.disabled(),
                                 num_requests, seed)
    else:
        trace = _serve_static(env, use_case,
                              scheduler == "static_remote", num_requests)
    row = {"scheduler": scheduler}
    row.update(trace.summary())
    stats = env.fault_stats
    row["fault_attempts"] = stats.attempts
    row["fault_failures"] = stats.total_failures
    row["fault_billed_energy_mj"] = stats.billed_energy_mj
    return row


def chaos_sweep(levels=None, schedulers=_SCHEDULERS, device=None,
                network_name="resnet_50", qos_ms=200.0, num_requests=150,
                seed=0):
    """Serve every (level, scheduler) pair; returns rows for reporting.

    Every episode gets a fresh environment built from the same seed, so
    schedulers face identically distributed (not identical — their
    decisions steer the stream) conditions at each level.
    """
    if levels is None:
        levels = DEFAULT_LEVELS
    rows = []
    for level in levels:
        for scheduler in schedulers:
            row = chaos_episode(
                scheduler, level.plan, device=device,
                network_name=network_name, qos_ms=qos_ms,
                num_requests=num_requests, seed=seed,
            )
            row["level"] = level.name
            rows.append(row)
    return rows
