"""Experiment runner: the paper's training/evaluation protocol.

Section V-C: to cover the design space, AutoScale trains with repeated
inference runs for each network in each runtime-variance state; testing
uses *leave-one-out cross-validation* across the networks — the Q-table
used to test a network was trained on the other nine.  Because AutoScale
is a continuous learner, testing starts from the transferred table, adapts
online until the reward converges, then the trained table is used greedily
(Section IV-B) while measurements are taken.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.baselines.oracle import OptOracle
from repro.common import ConfigError, make_rng
from repro.core.batchtrain import BatchTrainer
from repro.core.engine import AutoScale
from repro.env.environment import EdgeCloudEnvironment
from repro.env.scenarios import build_scenario
from repro.evalharness.metrics import EpisodeStats, decision_match

__all__ = [
    "RunConfig",
    "train_autoscale",
    "adapt_engine",
    "evaluate_autoscale",
    "evaluate_scheduler",
    "loo_train_and_evaluate",
]


@dataclass(frozen=True)
class RunConfig:
    """Episode sizes for training and evaluation.

    The paper trains with 100 runs per network per variance state; the
    defaults here are scaled for simulation-speed experiments and can be
    raised to paper scale by the benchmarks.
    """

    train_runs: int = 40
    adapt_runs: int = 50
    eval_runs: int = 30
    #: Dynamic (D1-D4) scenarios interleave several runtime-variance
    #: states within one episode, so each state sees only a fraction of
    #: the adaptation budget; scale the budget up so each state still
    #: receives roughly the paper's per-state training (the paper trains
    #: 100 runs per network per variance state and notes dynamic
    #: environments converge ~9% slower).
    dynamic_adapt_scale: float = 6.0

    def __post_init__(self):
        if min(self.train_runs, self.adapt_runs, self.eval_runs) < 1:
            raise ConfigError("run counts must be >= 1")
        if self.dynamic_adapt_scale < 1.0:
            raise ConfigError("dynamic_adapt_scale must be >= 1")

    def adapt_budget(self, scenario):
        """Adaptation runs for a scenario (scaled up when dynamic)."""
        if getattr(scenario, "dynamic", False):
            return int(self.adapt_runs * self.dynamic_adapt_scale)
        return self.adapt_runs


def train_autoscale(engine, use_cases, scenarios=("S1",),
                    runs_per_case=40, batched=True):
    """Train an engine across use cases and Table-IV scenarios.

    The engine's environment is switched through each scenario; within a
    scenario every use case gets ``runs_per_case`` Algorithm-1 cycles.

    ``batched=True`` (the default) drives the episodes through
    :class:`~repro.core.batchtrain.BatchTrainer` — bit-identical Q-table,
    visit counts, history, and clock, several times faster.  The scalar
    path is kept for parity pinning and for configurations the trainer
    itself falls back on (frozen engines, active fault plans).
    """
    env = engine.environment
    trainer = BatchTrainer(engine) if batched else None
    for scenario_name in scenarios:
        env.scenario = build_scenario(scenario_name) \
            if isinstance(scenario_name, str) else scenario_name
        env.rewind_clock()
        for use_case in use_cases:
            if trainer is not None:
                trainer.run(use_case, runs_per_case)
            else:
                engine.run(use_case, runs_per_case)
    return engine


def adapt_engine(engine, use_case, max_runs=50,
                 stop_on_convergence=True, batched=True):
    """Online adaptation on a (possibly unseen) use case.

    Stops early once the reward converges unless
    ``stop_on_convergence=False`` — in *dynamic* environments the
    detector converges on the most frequent variance state long before
    the rare states are trained, so those runs must use the full budget.

    ``batched=True`` runs the loop through
    :class:`~repro.core.batchtrain.BatchTrainer.adapt` (bit-identical,
    faster); the scalar loop remains for parity pinning.
    """
    if batched:
        return BatchTrainer(engine).adapt(
            use_case, max_runs, stop_on_convergence=stop_on_convergence
        )
    engine.unfreeze()
    engine.convergence.reset()
    for _ in range(max_runs):
        engine.step(use_case)
        if stop_on_convergence and engine.converged:
            break
    return engine.convergence.converged_at


def evaluate_autoscale(engine, use_case, eval_runs=30, oracle=None,
                       scenario=None):
    """Frozen greedy evaluation; optionally scores against the oracle."""
    env = engine.environment
    if scenario is not None:
        env.scenario = build_scenario(scenario) \
            if isinstance(scenario, str) else scenario
        env.rewind_clock()
    engine.freeze()
    stats = EpisodeStats(
        scheduler="autoscale", use_case=use_case.name,
        scenario=env.scenario.name, qos_ms=use_case.qos_ms,
    )
    for _ in range(eval_runs):
        observation = env.observe()
        matched = None
        if oracle is not None:
            chosen = engine.predict(use_case.network, observation)
            optimal = oracle.select(
                env, use_case, observation,
                state_key=engine.observe_state(use_case.network,
                                               observation),
            )
            sweep = env.estimate_all(use_case.network, observation)
            matched = decision_match(
                float(sweep.energy_mj[sweep.index_of(chosen)]),
                float(sweep.energy_mj[sweep.index_of(optimal)]),
            )
        step = engine.step(use_case, observation)
        stats.record(step.result, matched)
    engine.unfreeze()
    return stats


def evaluate_scheduler(environment, scheduler, use_case, eval_runs=30,
                       scenario=None):
    """Measure any baseline scheduler over an episode."""
    if scenario is not None:
        environment.scenario = build_scenario(scenario) \
            if isinstance(scenario, str) else scenario
        environment.rewind_clock()
    stats = EpisodeStats(
        scheduler=scheduler.name, use_case=use_case.name,
        scenario=environment.scenario.name, qos_ms=use_case.qos_ms,
    )
    for _ in range(eval_runs):
        observation = environment.observe()
        result = scheduler.execute(environment, use_case, observation)
        stats.record(result)
    return stats


def loo_train_and_evaluate(device_builder, use_cases, test_case,
                           scenarios=("S1",), config=RunConfig(),
                           seed=0, oracle=True, engine_kwargs=None,
                           environment=None, batched=True):
    """The paper's leave-one-out protocol for one held-out use case.

    Trains a fresh engine on every use case *except* ``test_case`` across
    ``scenarios``, then — per scenario — adapts online on the held-out
    case until convergence and evaluates the frozen table.

    Pass ``environment`` to reuse one environment across folds: the
    environment is re-armed for the fold (scenario reset, clock rewind,
    fresh RNG stream from ``seed``) but its exact nominal-component
    caches are value-keyed and deterministic, so they survive — every
    fold after the first trains against a warm cache and produces the
    same results a cold environment would.  ``device_builder`` is
    ignored when an environment is supplied.

    Returns ``(engine, {scenario_name: EpisodeStats})``.
    """
    training_cases = [case for case in use_cases
                      if case.name != test_case.name]
    if environment is None:
        env = EdgeCloudEnvironment(device_builder(), scenario=scenarios[0],
                                   seed=seed)
    else:
        env = environment
        env.scenario = scenarios[0]
        env.reset(seed=seed)
    engine = AutoScale(env, seed=seed, **(engine_kwargs or {}))
    train_autoscale(engine, training_cases, scenarios,
                    config.train_runs, batched=batched)
    opt = OptOracle() if oracle else None
    results = {}
    for scenario_name in scenarios:
        env.scenario = build_scenario(scenario_name)
        env.rewind_clock()
        adapt_engine(
            engine, test_case, config.adapt_budget(env.scenario),
            stop_on_convergence=not env.scenario.dynamic,
            batched=batched,
        )
        results[scenario_name] = evaluate_autoscale(
            engine, test_case, config.eval_runs, oracle=opt,
        )
    return engine, results
