"""One-call reproduction report.

``pytest benchmarks/ --benchmark-only`` persists every regenerated
table under ``benchmarks/results/``; this module stitches those artifacts
into a single Markdown report (default: ``REPORT.md``) so a reader gets
the whole reproduction in one file, in the paper's figure order.
"""

from __future__ import annotations

import datetime
import pathlib

from repro.common import ConfigError

__all__ = ["generate_report", "RESULT_ORDER"]

#: Paper order first, then the analysis extensions.
RESULT_ORDER = (
    ("fig02_characterization", "Fig. 2 — varying optimal execution target"),
    ("fig03_layer_latency", "Fig. 3 — per-layer-type latency"),
    ("fig04_accuracy", "Fig. 4 — accuracy targets shift the optimum"),
    ("fig05_interference", "Fig. 5 — co-runner interference"),
    ("fig06_signal", "Fig. 6 — signal strength"),
    ("fig07_predictors", "Fig. 7 — prediction-based approaches"),
    ("fig09_main", "Fig. 9 — main result (static environments)"),
    ("fig10_streaming", "Fig. 10 — streaming scenario"),
    ("fig11_dynamic", "Fig. 11 — stochastic variance"),
    ("fig12_accuracy_targets", "Fig. 12 — inference-quality targets"),
    ("fig13_decisions", "Fig. 13 — decision distribution"),
    ("fig14_convergence", "Fig. 14 — convergence and transfer"),
    ("overhead", "Section VI-C — overhead analysis"),
    ("ablation_states", "Ablation — state features"),
    ("ablation_hyperparameters", "Ablation — hyperparameters"),
    ("ablation_reward", "Ablation — reward shaping"),
    ("ablation_rl_designs", "Ablation — RL designs (Section IV)"),
    ("extension_npu", "Extension — NPU/TPU actions (Section V-C)"),
    ("fleet_transfer", "Extension — fleet transfer study"),
    ("calibration", "Calibration self-test"),
    ("pareto_inception_v1", "Analysis — Pareto frontier"),
    ("sweep_signal_resnet50", "Analysis — signal-strength sweep"),
    ("sweep_qos_inception_v1", "Analysis — QoS sweep"),
)


def generate_report(results_dir, output_path=None, strict=False):
    """Assemble the Markdown report from persisted benchmark tables.

    Args:
        results_dir: the ``benchmarks/results`` directory.
        output_path: where to write; defaults to ``REPORT.md`` next to
            the results directory's parent.
        strict: raise if any expected artifact is missing (otherwise the
            section is marked "not yet generated").

    Returns the output path.
    """
    results_dir = pathlib.Path(results_dir)
    if not results_dir.is_dir():
        raise ConfigError(f"no results directory at {results_dir}")
    if output_path is None:
        output_path = results_dir.parent.parent / "REPORT.md"
    output_path = pathlib.Path(output_path)

    lines = [
        "# AutoScale reproduction report",
        "",
        f"Generated {datetime.date.today().isoformat()} from "
        f"`{results_dir}`.  Regenerate the inputs with "
        "`pytest benchmarks/ --benchmark-only`; see EXPERIMENTS.md for "
        "the paper-vs-measured discussion of every section below.",
        "",
    ]
    missing = []
    for stem, heading in RESULT_ORDER:
        path = results_dir / f"{stem}.txt"
        lines.append(f"## {heading}")
        lines.append("")
        if path.exists():
            lines.append("```")
            lines.append(path.read_text().rstrip())
            lines.append("```")
        else:
            missing.append(stem)
            lines.append("*not yet generated — run the benchmarks*")
        lines.append("")
    if strict and missing:
        raise ConfigError(f"missing benchmark artifacts: {missing}")
    output_path.write_text("\n".join(lines))
    return output_path
