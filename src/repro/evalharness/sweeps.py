"""Fine-grained parameter sweeps around the paper's figures.

The paper's characterization figures sample a handful of conditions
(strong/weak signal, three co-runner intensities, two QoS targets).  These
sweeps trace the full curves — where exactly the cloud/edge crossover
falls as RSSI degrades, how the optimum migrates as a co-runner ramps up,
and how the DVFS sweet spot moves with the deadline — both for analysis
and as a stress test of the simulator's monotonicity.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.oracle import OptOracle
from repro.env.environment import EdgeCloudEnvironment
from repro.env.observation import Observation
from repro.env.qos import UseCase, use_case_for
from repro.evalharness.reporting import format_table
from repro.hardware.devices import build_device
from repro.models.zoo import build_network

__all__ = [
    "signal_strength_sweep",
    "interference_sweep",
    "qos_sweep",
    "epsilon_sweep",
    "radio_comparison",
]


def _quiet_env(device_name, seed=0):
    return EdgeCloudEnvironment(build_device(device_name), scenario="S1",
                                seed=seed)


def signal_strength_sweep(network_name="resnet_50", device_name="mi8pro",
                          rssi_grid_dbm=None, seed=0):
    """Fig. 6 at fine grain: the optimum as Wi-Fi RSSI degrades."""
    if rssi_grid_dbm is None:
        rssi_grid_dbm = np.arange(-55.0, -95.0, -2.5)
    env = _quiet_env(device_name, seed)
    use_case = use_case_for(build_network(network_name))
    oracle = OptOracle(cache=False)
    rows = []
    for rssi_dbm in rssi_grid_dbm:
        observation = Observation(rssi_wlan_dbm=float(rssi_dbm))
        target, nominal = oracle.evaluate(env, use_case, observation)
        rows.append({
            "rssi_dbm": float(rssi_dbm),
            "optimal_target": target.key,
            "energy_mj": nominal.energy_mj,
            "latency_ms": nominal.latency_ms,
            "meets_qos": nominal.latency_ms <= use_case.qos_ms,
        })
    crossovers = [
        (previous["rssi_dbm"], current["rssi_dbm"])
        for previous, current in zip(rows, rows[1:])
        if previous["optimal_target"].split("/")[0]
        != current["optimal_target"].split("/")[0]
    ]
    table = format_table(
        ["RSSI (dBm)", "optimal target", "E (mJ)", "lat (ms)", "QoS"],
        [[r["rssi_dbm"], r["optimal_target"], r["energy_mj"],
          r["latency_ms"], "ok" if r["meets_qos"] else "VIO"]
         for r in rows],
        title=f"Signal-strength sweep ({network_name}, {device_name})",
    )
    return {"rows": rows, "crossovers": crossovers, "table": table}


def interference_sweep(network_name="mobilenet_v3", device_name="mi8pro",
                       cpu_grid=None, seed=0):
    """Fig. 5 at fine grain: the optimum as a co-runner's CPU load ramps."""
    if cpu_grid is None:
        cpu_grid = np.linspace(0.0, 1.0, 11)
    env = _quiet_env(device_name, seed)
    use_case = use_case_for(build_network(network_name))
    oracle = OptOracle(cache=False)
    rows = []
    for cpu_util in cpu_grid:
        observation = Observation(cpu_util=float(cpu_util), mem_util=0.1)
        target, nominal = oracle.evaluate(env, use_case, observation)
        rows.append({
            "cpu_util": float(cpu_util),
            "optimal_target": target.key,
            "energy_mj": nominal.energy_mj,
        })
    table = format_table(
        ["co-runner CPU", "optimal target", "E (mJ)"],
        [[r["cpu_util"], r["optimal_target"], r["energy_mj"]]
         for r in rows],
        title=f"Interference sweep ({network_name}, {device_name})",
    )
    return {"rows": rows, "table": table}


def qos_sweep(network_name="inception_v1", device_name="mi8pro",
              qos_grid=(20.0, 33.3, 50.0, 75.0, 100.0, 150.0), seed=0):
    """How the optimum (and its DVFS point) relaxes with the deadline."""
    env = _quiet_env(device_name, seed)
    network = build_network(network_name)
    oracle = OptOracle(cache=False)
    observation = Observation()
    rows = []
    for qos_ms in qos_grid:
        use_case = UseCase(f"{network_name}@{qos_ms:g}", network,
                           qos_ms=qos_ms)
        target, nominal = oracle.evaluate(env, use_case, observation)
        rows.append({
            "qos_ms": qos_ms,
            "optimal_target": target.key,
            "energy_mj": nominal.energy_mj,
            "latency_ms": nominal.latency_ms,
            "meets_qos": nominal.latency_ms <= qos_ms,
        })
    table = format_table(
        ["QoS (ms)", "optimal target", "E (mJ)", "lat (ms)"],
        [[r["qos_ms"], r["optimal_target"], r["energy_mj"],
          r["latency_ms"]] for r in rows],
        title=f"QoS sweep ({network_name}, {device_name})",
    )
    return {"rows": rows, "table": table}


def epsilon_sweep(network_name="mobilenet_v3", device_name="mi8pro",
                  epsilons=(0.01, 0.05, 0.1, 0.3), train_runs=120,
                  eval_runs=15, seed=0):
    """Exploration-rate sensitivity (the paper fixes epsilon = 0.1)."""
    from repro.core.engine import AutoScale
    from repro.core.qlearning import QLearningConfig

    use_case = use_case_for(build_network(network_name))
    rows = []
    for epsilon in epsilons:
        env = _quiet_env(device_name, seed)
        engine = AutoScale(env, seed=seed,
                           config=QLearningConfig(epsilon=epsilon))
        engine.run(use_case, train_runs)
        engine.freeze()
        energies = [engine.step(use_case).result.energy_mj
                    for _ in range(eval_runs)]
        rows.append({
            "epsilon": epsilon,
            "mean_energy_mj": float(np.mean(energies)),
            "converged_at": engine.convergence.converged_at,
        })
    table = format_table(
        ["epsilon", "mean energy (mJ)", "policy settled at"],
        [[r["epsilon"], r["mean_energy_mj"],
          r["converged_at"] if r["converged_at"] is not None else "n/a"]
         for r in rows],
        title=f"Exploration-rate sweep ({network_name})",
    )
    return {"rows": rows, "table": table}


def radio_comparison(network_name="inception_v1", device_name="mi8pro",
                     rssi_dbm=-60.0, seed=0):
    """Cloud offloading cost over Wi-Fi vs LTE for one network.

    Quantifies why the radio profile matters: the LTE path's longer RTT
    and tail state shift the edge/cloud break-even toward the edge.
    """
    from repro.env.target import ExecutionTarget, Location
    from repro.models.quantization import Precision
    from repro.wireless.profiles import default_lte, default_wifi

    use_case = use_case_for(build_network(network_name))
    observation = Observation(rssi_wlan_dbm=rssi_dbm)
    cloud = ExecutionTarget(Location.CLOUD, "gpu", Precision.FP32)
    rows = []
    for label, link in (("wifi", default_wifi()), ("lte", default_lte())):
        env = EdgeCloudEnvironment(build_device(device_name),
                                   scenario="S1", wifi=link, seed=seed)
        sweep = env.estimate_all(use_case.network, observation)
        cloud_index = sweep.index_of(cloud)
        local_indices = [index for index, target in enumerate(env.targets())
                         if target.location is Location.LOCAL]
        best_local_mj = float(np.min(sweep.energy_mj[local_indices]))
        rows.append({
            "radio": label,
            "cloud_latency_ms": float(sweep.latency_ms[cloud_index]),
            "cloud_energy_mj": float(sweep.energy_mj[cloud_index]),
            "best_local_energy_mj": best_local_mj,
            "cloud_wins": float(sweep.energy_mj[cloud_index]) < best_local_mj,
        })
    table = format_table(
        ["radio", "cloud lat (ms)", "cloud E (mJ)", "best local E (mJ)",
         "cloud wins"],
        [[r["radio"], r["cloud_latency_ms"], r["cloud_energy_mj"],
          r["best_local_energy_mj"], "yes" if r["cloud_wins"] else "no"]
         for r in rows],
        title=f"Radio-path comparison ({network_name}, {device_name})",
    )
    return {"rows": rows, "table": table}
