"""Evaluation harness: metrics, runners, per-figure experiment drivers."""

from repro.evalharness.characterization import (
    fig2_characterization,
    fig3_layer_latency,
    fig4_accuracy_tradeoff,
    fig5_interference,
    fig6_signal,
    fig7_predictors,
    representative_targets,
)
from repro.evalharness.evaluation import (
    DEFAULT_NETWORKS,
    ablation_hyperparameters,
    ablation_states,
    baseline_suite,
    fig9_main_results,
    fig10_streaming,
    fig11_dynamic,
    fig12_accuracy_targets,
    fig13_decisions,
    fig14_convergence,
    overhead_analysis,
)
from repro.evalharness.chaos import (
    DEFAULT_LEVELS,
    ChaosLevel,
    chaos_episode,
    chaos_sweep,
)
from repro.evalharness.overload import (
    DEFAULT_PROFILES,
    SERVING_POLICIES,
    ArrivalProfile,
    overload_episode,
    overload_sweep,
)
from repro.evalharness.drift import (
    DRIFT_SCENARIOS,
    DriftScenario,
    build_drift_scenario,
    drift_episode,
    drift_sweep,
)
from repro.evalharness.metrics import (
    EpisodeStats,
    availability_pct,
    decision_match,
    mape,
    misclassification_ratio,
    ppw_ratio,
    qos_violation_ratio,
)
from repro.evalharness.report import generate_report
from repro.evalharness.reporting import format_kv, format_table
from repro.evalharness.breakdown import (
    EnergyBreakdown,
    breakdown_table,
    decompose_energy,
)
from repro.evalharness.calibration import run_calibration_checks
from repro.evalharness.fleet import fleet_transfer_study
from repro.evalharness.pareto import (
    ParetoPoint,
    design_space_analysis,
    pareto_frontier,
)
from repro.evalharness.rl_comparison import compare_rl_designs
from repro.evalharness.sweeps import (
    epsilon_sweep,
    interference_sweep,
    qos_sweep,
    signal_strength_sweep,
)
from repro.core.tracing import TraceRecorder, load_trace
from repro.evalharness.runner import (
    RunConfig,
    adapt_engine,
    evaluate_autoscale,
    evaluate_scheduler,
    loo_train_and_evaluate,
    train_autoscale,
)

__all__ = [
    "fig2_characterization",
    "fig3_layer_latency",
    "fig4_accuracy_tradeoff",
    "fig5_interference",
    "fig6_signal",
    "fig7_predictors",
    "representative_targets",
    "DEFAULT_NETWORKS",
    "ablation_hyperparameters",
    "ablation_states",
    "baseline_suite",
    "fig9_main_results",
    "fig10_streaming",
    "fig11_dynamic",
    "fig12_accuracy_targets",
    "fig13_decisions",
    "fig14_convergence",
    "overhead_analysis",
    "ChaosLevel",
    "DEFAULT_LEVELS",
    "chaos_episode",
    "chaos_sweep",
    "ArrivalProfile",
    "DEFAULT_PROFILES",
    "SERVING_POLICIES",
    "overload_episode",
    "overload_sweep",
    "DRIFT_SCENARIOS",
    "DriftScenario",
    "build_drift_scenario",
    "drift_episode",
    "drift_sweep",
    "EpisodeStats",
    "availability_pct",
    "decision_match",
    "mape",
    "misclassification_ratio",
    "ppw_ratio",
    "qos_violation_ratio",
    "generate_report",
    "format_kv",
    "format_table",
    "compare_rl_designs",
    "run_calibration_checks",
    "fleet_transfer_study",
    "EnergyBreakdown",
    "breakdown_table",
    "decompose_energy",
    "ParetoPoint",
    "design_space_analysis",
    "pareto_frontier",
    "epsilon_sweep",
    "interference_sweep",
    "qos_sweep",
    "signal_strength_sweep",
    "TraceRecorder",
    "load_trace",
    "RunConfig",
    "adapt_engine",
    "evaluate_autoscale",
    "evaluate_scheduler",
    "loo_train_and_evaluate",
    "train_autoscale",
]
