"""Overload evaluation: serving quality under open-loop arrival pressure.

The chaos driver (:mod:`repro.evalharness.chaos`) varies *failure*; this
driver varies *load*.  An :func:`overload_sweep` replays the same seeded
open-loop arrival stream through three serving policies at increasing
arrival intensity:

- ``fifo`` — unbounded queue, serve everything in order, never shed,
  never degrade (the naive baseline);
- ``shed`` — bounded admission queue plus the deadline-aware shedder;
- ``shed_brownout`` — shedding plus brownout degradation tiers (the full
  pipeline).

Each episode first warms the engine closed-loop (so the table serves
from experience, not from random initialization), then freezes it and
replays the arrival stream through a fresh trace — the reported summary
covers the open-loop serving phase only.  Episodes compose with the
chaos fault plans (``plan=``), so overload-under-failure is one argument
away.

The headline property, pinned by tests: at the highest intensity the
full pipeline strictly dominates naive FIFO on *both* end-to-end QoS
violations and energy per delivered inference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.common import ConfigError, make_rng
from repro.env.environment import EdgeCloudEnvironment
from repro.env.qos import UseCase
from repro.core.tracing import TraceRecorder
from repro.hardware.devices import mi8pro
from repro.models.zoo import build_network
from repro.serving.arrivals import (
    MarkovModulatedArrivals,
    PoissonArrivals,
)
from repro.serving.pipeline import ServingConfig, ServingPipeline

__all__ = [
    "ArrivalProfile",
    "DEFAULT_PROFILES",
    "SERVING_POLICIES",
    "overload_episode",
    "overload_sweep",
]

#: The serving policies an episode can run (see module docstring).
SERVING_POLICIES = ("fifo", "shed", "shed_brownout")


@dataclass(frozen=True)
class ArrivalProfile:
    """One named arrival intensity of a sweep.

    ``burst_per_s`` > 0 switches the generator from plain Poisson to the
    Markov-modulated process with that burst-phase intensity.
    """

    name: str
    arrivals_per_s: float
    burst_per_s: float = 0.0

    def __post_init__(self):
        if not self.name:
            raise ConfigError("arrival profile needs a name")
        if self.arrivals_per_s <= 0:
            raise ConfigError("arrival intensity must be positive")
        if self.burst_per_s < 0:
            raise ConfigError("burst intensity cannot be negative")

    def generate(self, use_case_name, duration_ms, rng):
        if self.burst_per_s > 0:
            return MarkovModulatedArrivals(
                use_case_name,
                calm_per_s=self.arrivals_per_s,
                burst_per_s=self.burst_per_s,
            ).generate(duration_ms, rng)
        return PoissonArrivals(
            use_case_name, arrivals_per_s=self.arrivals_per_s,
        ).generate(duration_ms, rng)


DEFAULT_PROFILES: Tuple[ArrivalProfile, ...] = (
    ArrivalProfile("calm", arrivals_per_s=2.0),
    ArrivalProfile("busy", arrivals_per_s=10.0),
    ArrivalProfile("surge", arrivals_per_s=40.0),
)


def _serving_config(policy):
    if policy == "fifo":
        return ServingConfig.fifo()
    if policy == "shed":
        return ServingConfig.shed_only()
    if policy == "shed_brownout":
        return ServingConfig()
    raise ConfigError(
        f"unknown serving policy {policy!r}; legal: {SERVING_POLICIES}"
    )


def overload_episode(policy, profile, plan=None, device=None,
                     network_name="inception_v1", qos_ms=200.0,
                     accuracy_target=65.0, duration_ms=20_000.0,
                     warmup_requests=300, seed=0):
    """Serve one open-loop episode; returns a result-row dict.

    The engine is warmed closed-loop for ``warmup_requests`` inferences
    (faults off, think time on), then frozen; the arrival stream then
    replays open-loop (think time zero — the clock is driven by
    arrivals and service times) under ``plan``.  The row combines the
    serving-phase trace summary with the pipeline's queue/shed/brownout
    counters.

    The default use case (Inception-v1 at a 65% accuracy target) makes
    the brownout trade visible: the INT8 variants miss the accuracy
    target (62.2% vs 69.8% FP32), so the trained engine serves FP32 —
    and the brownout tiers deliberately give that accuracy back for
    cheaper, faster inference when the queue is on fire.
    """
    if isinstance(profile, (int, float)):
        profile = ArrivalProfile(f"{profile:g}ps", float(profile))
    config = _serving_config(policy)
    if duration_ms <= 0:
        raise ConfigError("duration_ms must be positive")
    if warmup_requests < 0:
        raise ConfigError("warmup_requests cannot be negative")
    env = EdgeCloudEnvironment(
        device if device is not None else mi8pro(),
        seed=seed, think_time_ms=0.0,
    )
    use_case = UseCase(name=f"overload-{network_name}",
                       network=build_network(network_name), qos_ms=qos_ms,
                       accuracy_target=accuracy_target)
    # Local import: repro.core.service imports evalharness (the tracer),
    # so a module-level import here would be circular.
    from repro.core.service import AutoScaleService
    service = AutoScaleService(env, seed=seed)
    service.register(use_case)
    for _ in range(warmup_requests):
        service.handle(use_case.name)
    service.set_learning(False)
    # Measure the serving phase only: fresh trace, fresh clock, and the
    # fault plan switched on just for the open-loop replay.
    service.trace = TraceRecorder(max_records=service.trace_limit)
    env.rewind_clock()
    if plan is not None:
        env.faults = plan
    arrivals = profile.generate(use_case.name, duration_ms,
                                make_rng(seed + 1))
    if not arrivals:
        raise ConfigError(
            f"profile {profile.name!r} produced no arrivals in "
            f"{duration_ms} ms"
        )
    pipeline = ServingPipeline(service, config)
    pipeline.serve(arrivals)
    row = {"policy": policy, "profile": profile.name,
           "arrivals_per_s": profile.arrivals_per_s,
           "offered": len(arrivals)}
    row.update(service.trace.summary())
    status = pipeline.status()
    row["queue_peak_depth"] = status["queue_peak_depth"]
    row["queue_rejected"] = status["queue_rejected"]
    row["brownout_escalations"] = status["brownout_escalations"]
    row["sheds_by_reason"] = status["sheds"]["sheds"]
    return row


def overload_sweep(profiles=None, policies=SERVING_POLICIES, plan=None,
                   device=None, network_name="inception_v1", qos_ms=200.0,
                   accuracy_target=65.0, duration_ms=20_000.0,
                   warmup_requests=300, seed=0):
    """Serve every (profile, policy) pair; returns rows for reporting.

    Every episode gets a fresh environment and a freshly warmed engine
    built from the same seed, so policies face identically distributed
    conditions and identical arrival streams at each intensity.
    """
    if profiles is None:
        profiles = DEFAULT_PROFILES
    rows = []
    for profile in profiles:
        for policy in policies:
            row = overload_episode(
                policy, profile, plan=plan, device=device,
                network_name=network_name, qos_ms=qos_ms,
                accuracy_target=accuracy_target,
                duration_ms=duration_ms,
                warmup_requests=warmup_requests, seed=seed,
            )
            rows.append(row)
    return rows
