"""Dynamic voltage and frequency scaling (DVFS) tables.

Table II gives each mobile processor a maximum frequency and a number of
V/F steps (e.g. the Mi8Pro CPU has 23 steps up to 2.8 GHz).  AutoScale
treats every V/F step of the local CPU and GPU as an augmented action, so
the exact step count matters: it is what makes the Mi8Pro action space come
out at the paper's ~66 actions.

Voltage is modelled as scaling linearly with frequency between a floor and
a peak voltage, the standard first-order approximation for mobile DVFS
rails.  Dynamic power then scales as V^2 * f (see ``repro.hardware.power``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.common import ConfigError

__all__ = ["VFStep", "build_vf_table"]


@dataclass(frozen=True)
class VFStep:
    """One operating point of a processor's DVFS rail."""

    freq_mhz: float
    voltage_v: float

    def __post_init__(self):
        if self.freq_mhz <= 0:
            raise ConfigError(f"frequency must be positive: {self.freq_mhz}")
        if self.voltage_v <= 0:
            raise ConfigError(f"voltage must be positive: {self.voltage_v}")


def build_vf_table(num_steps, max_freq_mhz, min_freq_ratio=0.3,
                   min_voltage_v=0.6, max_voltage_v=1.0):
    """Build an ascending V/F table with ``num_steps`` operating points.

    Frequencies are evenly spaced between ``min_freq_ratio * max_freq_mhz``
    and ``max_freq_mhz``; voltage interpolates linearly across that range.
    The last entry is always the peak operating point.
    """
    if num_steps < 1:
        raise ConfigError(f"need at least one V/F step, got {num_steps}")
    if max_freq_mhz <= 0:
        raise ConfigError(f"max frequency must be positive: {max_freq_mhz}")
    if not 0 < min_freq_ratio <= 1:
        raise ConfigError(f"min_freq_ratio outside (0, 1]: {min_freq_ratio}")
    if min_voltage_v > max_voltage_v:
        raise ConfigError("min voltage exceeds max voltage")

    steps = []
    min_freq_mhz = max_freq_mhz * min_freq_ratio
    for i in range(num_steps):
        fraction = 1.0 if num_steps == 1 else i / (num_steps - 1)
        freq_mhz = min_freq_mhz + (max_freq_mhz - min_freq_mhz) * fraction
        voltage = min_voltage_v + (max_voltage_v - min_voltage_v) * fraction
        steps.append(VFStep(freq_mhz=freq_mhz, voltage_v=voltage))
    return tuple(steps)
