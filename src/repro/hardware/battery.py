"""Battery model: what the energy savings buy the user.

The paper's motivation is that mobile devices are *energy constrained* —
every millijoule AutoScale saves extends the time between charges.  This
module converts per-inference energies into battery terms: a
:class:`Battery` tracks drain against a capacity, and
:func:`projected_runtime_hours` turns an inference workload profile into
a battery-life estimate, which the ``battery_life`` example uses to
translate Fig. 9's PPW ratios into hours of service.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common import ConfigError

__all__ = ["Battery", "projected_runtime_hours", "DEFAULT_PHONE_BATTERY"]

#: One hour on the simulation timeline.
_HOUR_MS = 3_600_000.0


@dataclass
class Battery:
    """A simple coulomb-counting battery.

    Attributes:
        capacity_mah: rated capacity.
        voltage_v: nominal pack voltage (energy = capacity x voltage).
        drained_mj: energy drawn so far.
    """

    capacity_mah: float = 3500.0
    voltage_v: float = 3.85
    drained_mj: float = field(default=0.0)

    def __post_init__(self):
        if self.capacity_mah <= 0 or self.voltage_v <= 0:
            raise ConfigError("battery capacity and voltage must be "
                              "positive")
        if self.drained_mj < 0:
            raise ConfigError("negative drained energy")

    @property
    def capacity_mj(self):
        """Total energy content in millijoules.

        mAh x V x 3.6 gives joules; x1000 gives mJ.
        """
        return self.capacity_mah * self.voltage_v * 3.6 * 1000.0

    @property
    def remaining_mj(self):
        return max(0.0, self.capacity_mj - self.drained_mj)

    @property
    def remaining_fraction(self):
        return self.remaining_mj / self.capacity_mj

    @property
    def is_empty(self):
        return self.remaining_mj <= 0.0

    def drain(self, energy_mj):
        """Draw energy; returns the remaining fraction."""
        if energy_mj < 0:
            raise ConfigError(f"cannot drain {energy_mj} mJ")
        self.drained_mj += energy_mj
        return self.remaining_fraction

    def recharge(self):
        self.drained_mj = 0.0


def projected_runtime_hours(battery, energy_per_inference_mj,
                            inferences_per_hour,
                            background_power_mw=0.0):
    """Hours until empty for a steady inference workload.

    Args:
        battery: a (fresh) :class:`Battery`.
        energy_per_inference_mj: mean per-inference system energy.
        inferences_per_hour: workload intensity.
        background_power_mw: non-inference drain (idle screen-off
            platform power etc.).
    """
    if energy_per_inference_mj < 0 or inferences_per_hour < 0:
        raise ConfigError("workload parameters must be non-negative")
    background_drain_mj = _HOUR_MS * background_power_mw / 1000.0
    drain_per_hour_mj = (
        energy_per_inference_mj * inferences_per_hour
        + background_drain_mj
    )
    if drain_per_hour_mj <= 0:
        raise ConfigError("workload draws no energy; runtime is unbounded")
    return battery.remaining_mj / drain_per_hour_mj


#: A typical flagship-phone battery (the Mi8Pro ships ~3000 mAh; we use a
#: round 3500 mAh pack as the reference).
DEFAULT_PHONE_BATTERY = Battery
