"""System-on-chip: a set of processors plus platform-level characteristics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.common import ConfigError, UnknownKeyError
from repro.hardware.processor import Processor, ProcessorKind
from repro.hardware.thermal import ThermalModel

__all__ = ["MobileSoC"]


@dataclass(frozen=True)
class MobileSoC:
    """A device's compute complex.

    Attributes:
        name: SoC marketing name (e.g. ``"snapdragon_845"``).
        processors: map from role (``"cpu"``, ``"gpu"``, ``"dsp"``) to the
            :class:`Processor`.  A ``"cpu"`` entry is mandatory — it both
            runs inference and hosts AutoScale itself.
        platform_idle_mw: always-on system power (display pipeline, DRAM,
            rails) that a system-wide power meter sees regardless of which
            unit runs the inference.
        dram_gb: DRAM capacity; used for the Q-table memory-footprint
            overhead analysis (Section VI-C).
        thermal: the throttling model for this SoC.
    """

    name: str
    processors: Dict[str, Processor]
    platform_idle_mw: float
    dram_gb: float = 4.0
    thermal: ThermalModel = field(default_factory=ThermalModel)

    def __post_init__(self):
        if "cpu" not in self.processors:
            raise ConfigError(f"{self.name}: a SoC needs a 'cpu' processor")
        if self.platform_idle_mw < 0:
            raise ConfigError(f"{self.name}: negative platform power")
        if self.dram_gb <= 0:
            raise ConfigError(f"{self.name}: DRAM capacity must be positive")
        expected_kind = {
            "cpu": ProcessorKind.CPU,
            "gpu": ProcessorKind.GPU,
            "dsp": ProcessorKind.DSP,
            "npu": ProcessorKind.NPU,
        }
        for role, proc in self.processors.items():
            if role in expected_kind and proc.kind is not expected_kind[role]:
                raise ConfigError(
                    f"{self.name}: role {role!r} holds a {proc.kind}"
                )

    @property
    def roles(self):
        """Available processor roles in a stable order (cpu, gpu, dsp)."""
        order = {"cpu": 0, "gpu": 1, "dsp": 2, "npu": 3}
        return tuple(sorted(self.processors, key=lambda r: order.get(r, 9)))

    def processor(self, role):
        """Look up a processor by role; raises KeyError with guidance."""
        try:
            return self.processors[role]
        except KeyError:
            raise UnknownKeyError(
                f"{self.name} has no {role!r} unit (has {self.roles})"
            ) from None

    @property
    def cpu(self):
        return self.processors["cpu"]

    def has(self, role):
        return role in self.processors
