"""Energy models of Section IV-A, equations (1)-(3).

These are the models AutoScale uses to *estimate* ``R_energy`` for local
execution targets; the execution simulator uses the same models to produce
ground truth (plus stochastic variance), which keeps the estimator's error
in the single-digit-percent range the paper reports (MAPE 7.3%).

Unit note: power is mW and time is ms, so ``mW * ms = microjoules``; all
public functions return millijoules.
"""

from __future__ import annotations

from repro.analysis.contracts import (
    checked,
    ensure_duration_ms,
    ensure_energy_mj,
    ensure_power_mw,
)
from repro.common import ConfigError
from repro.hardware.processor import ProcessorKind

__all__ = [
    "busy_idle_energy_mj",
    "cpu_energy_mj",
    "gpu_energy_mj",
    "dsp_energy_mj",
    "platform_energy_mj",
]


def _energy_mj(power_mw, time_ms):
    return power_mw * time_ms / 1000.0


@checked(busy_ms=ensure_duration_ms, idle_ms=ensure_duration_ms,
         _returns=ensure_energy_mj)
def busy_idle_energy_mj(processor, busy_ms, idle_ms=0.0, vf_index=-1):
    """Generic busy/idle split: P_busy(f) * t_busy + P_idle * t_idle.

    This is the shared core of equations (1) and (2): energy is the busy
    power at the selected V/F step integrated over the busy time plus the
    idle power over the idle time.
    """
    if busy_ms < 0 or idle_ms < 0:
        raise ConfigError("busy/idle times must be non-negative")
    busy_power_mw = processor.busy_power_at(vf_index)
    return (
        _energy_mj(busy_power_mw, busy_ms)
        + _energy_mj(processor.idle_power_mw, idle_ms)
    )


@checked(busy_ms=ensure_duration_ms, idle_ms=ensure_duration_ms,
         _returns=ensure_energy_mj)
def cpu_energy_mj(processor, busy_ms, idle_ms=0.0, vf_index=-1,
                  active_cores=None):
    """Equation (1): utilization-based CPU energy.

    The paper sums per-core energy; we model the cluster's aggregate busy
    power and scale it by the fraction of active cores, which is equivalent
    when the active cores run at a common frequency (the usual case under
    a cluster-wide DVFS rail).
    """
    if processor.kind is not ProcessorKind.CPU:
        raise ConfigError(f"{processor.name} is not a CPU")
    if active_cores is None:
        active_cores = processor.num_cores
    if not 1 <= active_cores <= processor.num_cores:
        raise ConfigError(
            f"active_cores {active_cores} outside [1, {processor.num_cores}]"
        )
    core_fraction = active_cores / processor.num_cores
    busy_power_mw = (
        processor.idle_power_mw
        + (processor.busy_power_at(vf_index) - processor.idle_power_mw)
        * core_fraction
    )
    return (
        _energy_mj(busy_power_mw, busy_ms)
        + _energy_mj(processor.idle_power_mw, idle_ms)
    )


@checked(busy_ms=ensure_duration_ms, idle_ms=ensure_duration_ms,
         _returns=ensure_energy_mj)
def gpu_energy_mj(processor, busy_ms, idle_ms=0.0, vf_index=-1):
    """Equation (2): GPU energy from the busy/idle power split."""
    if processor.kind is not ProcessorKind.GPU:
        raise ConfigError(f"{processor.name} is not a GPU")
    return busy_idle_energy_mj(processor, busy_ms, idle_ms, vf_index)


@checked(latency_ms=ensure_duration_ms, _returns=ensure_energy_mj)
def dsp_energy_mj(processor, latency_ms):
    """Equation (3): E_DSP = P_DSP * R_latency.

    The paper measured DSP power to be constant across runs, so the model
    is a single pre-measured power value times the inference latency.
    NPUs (the paper's proposed action-space extension) are fixed-function
    matrix engines with the same constant-power profile, so they share
    this model.
    """
    if processor.kind not in (ProcessorKind.DSP, ProcessorKind.NPU):
        raise ConfigError(f"{processor.name} is not a DSP/NPU")
    if latency_ms < 0:
        raise ConfigError("latency must be non-negative")
    return _energy_mj(processor.busy_power_mw, latency_ms)


@checked(idle_power_mw=ensure_power_mw, duration_ms=ensure_duration_ms,
         _returns=ensure_energy_mj)
def platform_energy_mj(idle_power_mw, duration_ms):
    """Always-on platform power (rails, DRAM refresh, display pipeline).

    The paper measures *system-wide* power with a Monsoon meter, so every
    execution option also pays the platform's base power for the full
    duration of the inference.
    """
    if idle_power_mw < 0 or duration_ms < 0:
        raise ConfigError("power and duration must be non-negative")
    return _energy_mj(idle_power_mw, duration_ms)
