"""Thermal throttling model.

The paper observes (Section III-B) that a CPU-intensive co-runner degrades
on-device inference not only through time-sharing but through *frequent
thermal throttling due to high CPU utilization*.  We model that with a
simple utilization-driven throttle: when the combined utilization of the
inference and its co-runners crosses a threshold, the effective clock is
scaled down, which the execution simulator applies as an extra slowdown.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import ConfigError, clamp

__all__ = ["ThermalModel"]


@dataclass(frozen=True)
class ThermalModel:
    """Utilization-triggered frequency throttling.

    Attributes:
        threshold: combined utilization above which throttling begins.
            The default of 1.0 means an inference alone never throttles —
            only the *addition* of co-runner load pushes the SoC past its
            sustained-power envelope (the Fig. 5 effect).
        max_cap: the lowest effective-frequency fraction the governor will
            throttle down to (reached at utilization 2.0, i.e. inference
            plus a fully CPU-bound co-runner).
    """

    threshold: float = 1.0
    max_cap: float = 0.62

    def __post_init__(self):
        if not 0.0 < self.threshold < 2.0:
            raise ConfigError(f"threshold outside (0, 2): {self.threshold}")
        if not 0.0 < self.max_cap <= 1.0:
            raise ConfigError(f"max_cap outside (0, 1]: {self.max_cap}")

    def frequency_cap(self, inference_util, corunner_util):
        """Effective-frequency fraction in (0, 1] under combined load."""
        for name, util in (("inference", inference_util),
                           ("corunner", corunner_util)):
            if not 0.0 <= util <= 1.0:
                raise ConfigError(f"{name} utilization outside [0, 1]: {util}")
        combined = inference_util + corunner_util
        if combined <= self.threshold:
            return 1.0
        overshoot = (combined - self.threshold) / (2.0 - self.threshold)
        return clamp(1.0 - overshoot * (1.0 - self.max_cap),
                     self.max_cap, 1.0)

    def slowdown(self, inference_util, corunner_util):
        """Latency multiplier (>= 1) implied by the frequency cap."""
        return 1.0 / self.frequency_cap(inference_util, corunner_util)
