"""The five evaluation platforms (Table II and Section V-A).

The three phones span the paper's market tiers:

- **Mi8Pro** — high-end with GPU *and* an NN-capable DSP;
- **Galaxy S10e** — high-end with GPU but no DSP;
- **Moto X Force** — mid-end, whose SoC cannot meet the QoS target even
  for light networks (which is what makes scale-out mandatory for it).

Plus the **Galaxy Tab S6** as the locally connected edge device and the
Xeon E5-2640 + Tesla P100 **cloud server**.

Throughput/power calibration: Table II's published clocks, V/F step counts
and peak system powers are used directly; effective GMAC/s rates are chosen
so the per-network latencies land in the publicly reported ranges for these
SoCs and, crucially, so the paper's orderings hold (light NNs meet 50 ms on
the high-end phones but not on the Moto; ResNet-50-class networks miss the
QoS target on every phone; FC/RC-heavy networks prefer the CPU).  The
cloud-server power numbers are placeholders — the paper (and this
reproduction) only accounts the *mobile* system's energy, measured at the
phone, so server power never enters any result.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common import ConfigError, UnknownKeyError
from repro.hardware.dvfs import build_vf_table
from repro.hardware.processor import Processor, ProcessorKind
from repro.hardware.soc import MobileSoC
from repro.models.layers import LayerType
from repro.models.quantization import Precision

__all__ = [
    "DeviceClass",
    "Device",
    "mi8pro",
    "galaxy_s10e",
    "moto_x_force",
    "galaxy_tab_s6",
    "cloud_server",
    "mi8pro_npu",
    "cloud_server_tpu",
    "build_device",
    "PHONE_NAMES",
    "DEVICE_BUILDERS",
]


class DeviceClass(enum.Enum):
    """Where a device sits in the edge-cloud hierarchy."""

    PHONE = "phone"
    TABLET = "tablet"
    SERVER = "server"


@dataclass(frozen=True)
class Device:
    """A named platform with a SoC."""

    name: str
    device_class: DeviceClass
    soc: MobileSoC

    def __post_init__(self):
        if not self.name:
            raise ConfigError("device needs a name")

    @property
    def is_mobile(self):
        return self.device_class is not DeviceClass.SERVER


def _cpu(name, steps, max_mhz, peak_gmacs, busy_mw, idle_mw, int8_mult,
         num_cores=4):
    return Processor(
        name=name, kind=ProcessorKind.CPU,
        vf_table=build_vf_table(steps, max_mhz),
        peak_gmacs=peak_gmacs,
        precisions={Precision.FP32: 1.0, Precision.INT8: int8_mult},
        busy_power_mw=busy_mw, idle_power_mw=idle_mw, num_cores=num_cores,
    )


def _gpu(name, steps, max_mhz, peak_gmacs, busy_mw, idle_mw, fp16_mult,
         dispatch_ms=0.15):
    return Processor(
        name=name, kind=ProcessorKind.GPU,
        vf_table=build_vf_table(steps, max_mhz),
        peak_gmacs=peak_gmacs,
        precisions={Precision.FP32: 1.0, Precision.FP16: fp16_mult},
        busy_power_mw=busy_mw, idle_power_mw=idle_mw,
        dispatch_ms=dispatch_ms,
    )


def _dsp(name, max_mhz, peak_gmacs, busy_mw, idle_mw):
    # Mobile DSPs in the paper run INT8 only and do not expose DVFS.
    return Processor(
        name=name, kind=ProcessorKind.DSP,
        vf_table=build_vf_table(1, max_mhz),
        peak_gmacs=peak_gmacs,
        precisions={Precision.INT8: 1.0},
        busy_power_mw=busy_mw, idle_power_mw=idle_mw,
        layer_efficiency={
            LayerType.CONV: 0.90, LayerType.FC: 0.04, LayerType.RC: 0.03,
            LayerType.POOL: 0.75, LayerType.NORM: 0.70,
            LayerType.SOFTMAX: 0.35, LayerType.ARGMAX: 0.35,
            LayerType.DROPOUT: 0.85,
        },
    )


def _gpu_fc_poor():
    """Mobile-GPU layer efficiencies: CONV machines, weak on FC/RC."""
    return {
        LayerType.CONV: 0.95, LayerType.FC: 0.05, LayerType.RC: 0.06,
        LayerType.POOL: 0.85, LayerType.NORM: 0.80,
        LayerType.SOFTMAX: 0.40, LayerType.ARGMAX: 0.40,
        LayerType.DROPOUT: 0.90,
    }


def mi8pro():
    """Xiaomi Mi8Pro: Snapdragon 845 — CPU + GPU + DSP (Table II row 1)."""
    gpu = Processor(
        name="adreno_630", kind=ProcessorKind.GPU,
        vf_table=build_vf_table(7, 700),
        peak_gmacs=30.0,
        precisions={Precision.FP32: 1.0, Precision.FP16: 1.8},
        busy_power_mw=1000.0, idle_power_mw=150.0,
        layer_efficiency=_gpu_fc_poor(), dispatch_ms=0.15,
    )
    soc = MobileSoC(
        name="snapdragon_845",
        processors={
            "cpu": _cpu("cortex_a75", 23, 2800, 12.0, 4700, 300, 3.0),
            "gpu": gpu,
            "dsp": _dsp("hexagon_685", 750, 60.0, 950, 100),
        },
        platform_idle_mw=500.0, dram_gb=6.0,
    )
    return Device("mi8pro", DeviceClass.PHONE, soc)


def galaxy_s10e():
    """Samsung Galaxy S10e: Exynos 9820 — CPU + GPU, no DSP (row 2)."""
    gpu = Processor(
        name="mali_g76", kind=ProcessorKind.GPU,
        vf_table=build_vf_table(9, 700),
        peak_gmacs=26.0,
        precisions={Precision.FP32: 1.0, Precision.FP16: 1.8},
        busy_power_mw=1500.0, idle_power_mw=150.0,
        layer_efficiency=_gpu_fc_poor(), dispatch_ms=0.15,
    )
    soc = MobileSoC(
        name="exynos_9820",
        processors={
            "cpu": _cpu("mongoose_m4", 21, 2700, 13.0, 4800, 300, 3.0),
            "gpu": gpu,
        },
        platform_idle_mw=520.0, dram_gb=6.0,
    )
    return Device("galaxy_s10e", DeviceClass.PHONE, soc)


def moto_x_force():
    """Motorola Moto X Force: Snapdragon 810 — mid-end CPU + GPU (row 3)."""
    gpu = Processor(
        name="adreno_430", kind=ProcessorKind.GPU,
        vf_table=build_vf_table(6, 600),
        peak_gmacs=10.0,
        precisions={Precision.FP32: 1.0, Precision.FP16: 1.6},
        busy_power_mw=1300.0, idle_power_mw=150.0,
        layer_efficiency=_gpu_fc_poor(), dispatch_ms=0.2,
    )
    soc = MobileSoC(
        name="snapdragon_810",
        processors={
            "cpu": _cpu("cortex_a57", 15, 1900, 5.0, 2800, 250, 2.0),
            "gpu": gpu,
        },
        platform_idle_mw=480.0, dram_gb=3.0,
    )
    return Device("moto_x_force", DeviceClass.PHONE, soc)


def galaxy_tab_s6():
    """Samsung Galaxy Tab S6: Snapdragon 855 — the connected edge device."""
    gpu = Processor(
        name="adreno_640", kind=ProcessorKind.GPU,
        vf_table=build_vf_table(8, 670),
        peak_gmacs=42.0,
        precisions={Precision.FP32: 1.0, Precision.FP16: 1.9},
        busy_power_mw=1200.0, idle_power_mw=150.0,
        layer_efficiency=_gpu_fc_poor(), dispatch_ms=0.15,
    )
    soc = MobileSoC(
        name="snapdragon_855",
        processors={
            "cpu": _cpu("cortex_a76", 20, 2840, 16.0, 5200, 320, 3.0),
            "gpu": gpu,
            "dsp": _dsp("hexagon_690", 800, 70.0, 1200, 110),
        },
        platform_idle_mw=700.0, dram_gb=8.0,
    )
    return Device("galaxy_tab_s6", DeviceClass.TABLET, soc)


def cloud_server():
    """Xeon E5-2640 (40 cores) + NVIDIA Tesla P100.

    Server-side layer efficiencies are higher for FC/RC than the mobile
    parts' (big caches, HBM); server power numbers never enter results
    because energy is accounted at the phone (see module docstring).
    """
    cpu = Processor(
        name="xeon_e5_2640", kind=ProcessorKind.CPU,
        vf_table=build_vf_table(1, 2400),
        peak_gmacs=180.0,
        precisions={Precision.FP32: 1.0},
        busy_power_mw=90_000.0, idle_power_mw=30_000.0, num_cores=40,
        dispatch_ms=0.02,
    )
    gpu = Processor(
        name="tesla_p100", kind=ProcessorKind.GPU,
        vf_table=build_vf_table(1, 1328),
        peak_gmacs=900.0,
        precisions={Precision.FP32: 1.0},
        busy_power_mw=250_000.0, idle_power_mw=30_000.0,
        layer_efficiency={
            LayerType.CONV: 0.95, LayerType.FC: 0.50, LayerType.RC: 0.45,
            LayerType.POOL: 0.85, LayerType.NORM: 0.80,
            LayerType.SOFTMAX: 0.50, LayerType.ARGMAX: 0.50,
            LayerType.DROPOUT: 0.90,
        },
        dispatch_ms=0.08,
    )
    soc = MobileSoC(
        name="xeon_p100_node",
        processors={"cpu": cpu, "gpu": gpu},
        platform_idle_mw=100_000.0, dram_gb=256.0,
    )
    return Device("cloud_server", DeviceClass.SERVER, soc)


def mi8pro_npu():
    """A hypothetical Mi8Pro variant with a programmable mobile NPU.

    Section V-C: "depending on the configurations of edge-cloud systems,
    additional actions, such as mobile NPU or cloud TPU, could be further
    considered" — the paper could not use NPUs because their SDKs were
    not public.  This platform adds one, INT8-only and fixed-clock like
    the DSP but with systolic-array throughput, so experiments can probe
    how AutoScale's action space extends.
    """
    base = mi8pro()
    npu = Processor(
        name="mobile_npu", kind=ProcessorKind.NPU,
        vf_table=build_vf_table(1, 900),
        peak_gmacs=120.0,
        precisions={Precision.INT8: 1.0},
        busy_power_mw=1400.0, idle_power_mw=120.0,
    )
    processors = dict(base.soc.processors)
    processors["npu"] = npu
    soc = MobileSoC(
        name="snapdragon_845_npu", processors=processors,
        platform_idle_mw=base.soc.platform_idle_mw,
        dram_gb=base.soc.dram_gb, thermal=base.soc.thermal,
    )
    return Device("mi8pro_npu", DeviceClass.PHONE, soc)


def cloud_server_tpu():
    """The cloud node extended with a TPU-class accelerator.

    Modelled as a server-side NPU serving quantized (INT8) models — the
    interesting trade-off the extension exposes: the TPU is the fastest
    target in the system but caps inference accuracy at the INT8 level.
    """
    base = cloud_server()
    tpu = Processor(
        name="cloud_tpu", kind=ProcessorKind.NPU,
        vf_table=build_vf_table(1, 940),
        peak_gmacs=4000.0,
        precisions={Precision.INT8: 1.0},
        busy_power_mw=200_000.0, idle_power_mw=30_000.0,
        dispatch_ms=0.05,
    )
    processors = dict(base.soc.processors)
    processors["npu"] = tpu
    soc = MobileSoC(
        name="xeon_p100_tpu_node", processors=processors,
        platform_idle_mw=base.soc.platform_idle_mw,
        dram_gb=base.soc.dram_gb,
    )
    return Device("cloud_server_tpu", DeviceClass.SERVER, soc)


PHONE_NAMES = ("mi8pro", "galaxy_s10e", "moto_x_force")

DEVICE_BUILDERS = {
    "mi8pro": mi8pro,
    "galaxy_s10e": galaxy_s10e,
    "moto_x_force": moto_x_force,
    "galaxy_tab_s6": galaxy_tab_s6,
    "cloud_server": cloud_server,
    "mi8pro_npu": mi8pro_npu,
    "cloud_server_tpu": cloud_server_tpu,
}


def build_device(name):
    """Build any of the five platforms by name."""
    try:
        return DEVICE_BUILDERS[name]()
    except KeyError:
        raise UnknownKeyError(
            f"unknown device {name!r}; choose from {sorted(DEVICE_BUILDERS)}"
        ) from None
