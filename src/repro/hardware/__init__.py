"""Hardware substrate: processors, DVFS, power models, thermal, devices."""

from repro.hardware.devices import (
    DEVICE_BUILDERS,
    PHONE_NAMES,
    Device,
    DeviceClass,
    build_device,
    cloud_server,
    cloud_server_tpu,
    galaxy_s10e,
    galaxy_tab_s6,
    mi8pro,
    mi8pro_npu,
    moto_x_force,
)
from repro.hardware.battery import Battery, projected_runtime_hours
from repro.hardware.dvfs import VFStep, build_vf_table
from repro.hardware.power import (
    busy_idle_energy_mj,
    cpu_energy_mj,
    dsp_energy_mj,
    gpu_energy_mj,
    platform_energy_mj,
)
from repro.hardware.processor import Processor, ProcessorKind
from repro.hardware.soc import MobileSoC
from repro.hardware.thermal import ThermalModel

__all__ = [
    "DEVICE_BUILDERS",
    "PHONE_NAMES",
    "Device",
    "DeviceClass",
    "build_device",
    "cloud_server",
    "cloud_server_tpu",
    "galaxy_s10e",
    "galaxy_tab_s6",
    "mi8pro",
    "mi8pro_npu",
    "moto_x_force",
    "Battery",
    "projected_runtime_hours",
    "VFStep",
    "build_vf_table",
    "busy_idle_energy_mj",
    "cpu_energy_mj",
    "dsp_energy_mj",
    "gpu_energy_mj",
    "platform_energy_mj",
    "Processor",
    "ProcessorKind",
    "MobileSoC",
    "ThermalModel",
]
