"""Processor performance model.

Each processor is described by an effective peak throughput (GMACs/s at its
top frequency, FP32), a V/F table, per-precision throughput multipliers,
and per-layer-type efficiency factors.  The layer-type factors encode the
paper's Fig. 3 observation: throughput-oriented co-processors (GPU, DSP)
excel at CONV layers but fall behind the CPU on memory-bound FC and RC
layers, so a network's layer composition decides its best local target.

Latency of a layer on a processor at a chosen V/F step and precision:

    t = macs / (peak * (f / f_max) * precision_mult * layer_eff) + dispatch

where ``dispatch`` is a fixed per-layer launch overhead (kernel launches on
co-processors are much more expensive than function calls on the CPU).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.common import ConfigError
from repro.hardware.dvfs import VFStep
from repro.models.layers import LayerType
from repro.models.quantization import Precision

__all__ = ["ProcessorKind", "Processor"]


class ProcessorKind(enum.Enum):
    """Processor classes appearing in the edge-cloud system (Section IV-A).

    NPU covers the paper's proposed action-space extensions ("additional
    actions, such as mobile NPU or cloud TPU, could be further
    considered", Section V-C): dedicated matrix engines, whether a mobile
    NPU or a server TPU.
    """

    CPU = "cpu"
    GPU = "gpu"
    DSP = "dsp"
    NPU = "npu"


# Default per-layer-type efficiency (fraction of peak MAC throughput)
# per processor class.  CPUs handle everything acceptably; GPUs/DSPs are
# CONV machines that stall on memory-bound FC/RC layers (Fig. 3).
_DEFAULT_LAYER_EFFICIENCY = {
    ProcessorKind.CPU: {
        LayerType.CONV: 0.70, LayerType.FC: 0.75, LayerType.RC: 0.60,
        LayerType.POOL: 0.50, LayerType.NORM: 0.50,
        LayerType.SOFTMAX: 0.60, LayerType.ARGMAX: 0.60,
        LayerType.DROPOUT: 0.80,
    },
    ProcessorKind.GPU: {
        LayerType.CONV: 0.95, LayerType.FC: 0.22, LayerType.RC: 0.12,
        LayerType.POOL: 0.85, LayerType.NORM: 0.80,
        LayerType.SOFTMAX: 0.40, LayerType.ARGMAX: 0.40,
        LayerType.DROPOUT: 0.90,
    },
    ProcessorKind.DSP: {
        LayerType.CONV: 0.90, LayerType.FC: 0.18, LayerType.RC: 0.08,
        LayerType.POOL: 0.75, LayerType.NORM: 0.70,
        LayerType.SOFTMAX: 0.35, LayerType.ARGMAX: 0.35,
        LayerType.DROPOUT: 0.85,
    },
    # NPUs are systolic matrix engines: excellent CONV *and* decent
    # FC/RC throughput (weights stream through the array), weak on the
    # odd scalar-ish tail layers.
    ProcessorKind.NPU: {
        LayerType.CONV: 0.95, LayerType.FC: 0.35, LayerType.RC: 0.20,
        LayerType.POOL: 0.60, LayerType.NORM: 0.55,
        LayerType.SOFTMAX: 0.25, LayerType.ARGMAX: 0.25,
        LayerType.DROPOUT: 0.80,
    },
}

# Per-layer dispatch overhead in ms: CPU calls are cheap, GPU kernel
# launches and DSP DMA set-up are not.
_DEFAULT_DISPATCH_MS = {
    ProcessorKind.CPU: 0.03,
    ProcessorKind.GPU: 0.12,
    ProcessorKind.DSP: 0.10,
    ProcessorKind.NPU: 0.08,
}


@dataclass(frozen=True)
class Processor:
    """One execution engine inside a device.

    Attributes:
        name: e.g. ``"cortex_a75"`` or ``"adreno_630"``.
        kind: CPU / GPU / DSP.
        vf_table: ascending V/F steps; single-entry for fixed-clock parts
            (the paper's DSPs do not support DVFS).
        peak_gmacs: effective FP32 GMAC/s throughput at the top V/F step.
        precisions: map of supported :class:`Precision` to the *total*
            throughput multiplier at that precision (relative to FP32).
        busy_power_mw: power at 100% utilization at the top V/F step.
        idle_power_mw: power when the unit is idle but powered.
        num_cores: parallel cores (CPU clusters); used by the
            utilization-based power model of eq. (1).
        layer_efficiency: per-:class:`LayerType` fraction of peak
            throughput; defaults per processor class.
        dispatch_ms: fixed per-layer launch overhead.
    """

    name: str
    kind: ProcessorKind
    vf_table: Tuple[VFStep, ...]
    peak_gmacs: float
    precisions: Dict[Precision, float]
    busy_power_mw: float
    idle_power_mw: float
    num_cores: int = 1
    layer_efficiency: Dict[LayerType, float] = field(default=None)
    dispatch_ms: float = field(default=None)

    def __post_init__(self):
        if not self.vf_table:
            raise ConfigError(f"{self.name}: empty V/F table")
        freqs = [step.freq_mhz for step in self.vf_table]
        if freqs != sorted(freqs):
            raise ConfigError(f"{self.name}: V/F table must be ascending")
        if self.peak_gmacs <= 0:
            raise ConfigError(f"{self.name}: peak_gmacs must be positive")
        if not self.precisions:
            raise ConfigError(f"{self.name}: supports no precision")
        if Precision.FP32 in self.precisions:
            if abs(self.precisions[Precision.FP32] - 1.0) > 1e-9:
                raise ConfigError(
                    f"{self.name}: FP32 multiplier must be 1.0 by definition"
                )
        if self.busy_power_mw <= self.idle_power_mw:
            raise ConfigError(
                f"{self.name}: busy power must exceed idle power"
            )
        if self.num_cores < 1:
            raise ConfigError(f"{self.name}: num_cores must be >= 1")
        if self.layer_efficiency is None:
            object.__setattr__(
                self, "layer_efficiency",
                dict(_DEFAULT_LAYER_EFFICIENCY[self.kind]),
            )
        if self.dispatch_ms is None:
            object.__setattr__(
                self, "dispatch_ms", _DEFAULT_DISPATCH_MS[self.kind]
            )

    # ------------------------------------------------------------------
    # DVFS helpers
    # ------------------------------------------------------------------

    @property
    def num_vf_steps(self):
        return len(self.vf_table)

    @property
    def max_freq_mhz(self):
        return self.vf_table[-1].freq_mhz

    def vf_step(self, index):
        """The V/F step at ``index``; negative indices follow list rules."""
        return self.vf_table[index]

    @property
    def supports_dvfs(self):
        return len(self.vf_table) > 1

    def supports(self, precision):
        return precision in self.precisions

    # ------------------------------------------------------------------
    # Latency model
    # ------------------------------------------------------------------

    def throughput_gmacs(self, precision, vf_index=-1):
        """Effective GMAC/s at a precision and V/F step (before layer eff)."""
        if not self.supports(precision):
            raise ConfigError(
                f"{self.name} does not support {precision}"
            )
        step = self.vf_table[vf_index]
        vf_scale = step.freq_mhz / self.max_freq_mhz
        return self.peak_gmacs * vf_scale * self.precisions[precision]

    def layer_latency_ms(self, layer, precision, vf_index=-1,
                         slowdown=1.0):
        """Latency of one layer, including dispatch overhead.

        ``slowdown`` >= 1 multiplies the compute time; the interference
        model uses it to express contention and thermal throttling.
        """
        if slowdown < 1.0:
            raise ConfigError(f"slowdown must be >= 1, got {slowdown}")
        efficiency = self.layer_efficiency.get(layer.kind, 0.5)
        gmacs_per_s = self.throughput_gmacs(precision, vf_index) * efficiency
        compute_ms = (layer.macs / 1e9) / gmacs_per_s * 1000.0
        return compute_ms * slowdown + self.dispatch_ms

    def network_latency_ms(self, network, precision, vf_index=-1,
                           slowdown=1.0):
        """Latency of a full network (sum over layers)."""
        return sum(
            self.layer_latency_ms(layer, precision, vf_index, slowdown)
            for layer in network.layers
        )

    def layers_latency_ms(self, layers, precision, vf_index=-1,
                          slowdown=1.0):
        """Latency of an arbitrary layer slice (partitioned execution)."""
        return sum(
            self.layer_latency_ms(layer, precision, vf_index, slowdown)
            for layer in layers
        )

    # ------------------------------------------------------------------
    # Power helpers (used by the eq. 1-3 energy models in ``power.py``)
    # ------------------------------------------------------------------

    def busy_power_at(self, vf_index=-1):
        """Busy power (mW) at a V/F step.

        Dynamic power scales with V^2 * f; the static share (approximated
        by the idle power) does not scale.
        """
        step = self.vf_table[vf_index]
        top = self.vf_table[-1]
        scale = (
            (step.voltage_v / top.voltage_v) ** 2
            * (step.freq_mhz / top.freq_mhz)
        )
        dynamic = self.busy_power_mw - self.idle_power_mw
        return self.idle_power_mw + dynamic * scale
