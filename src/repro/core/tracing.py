"""Execution tracing: record, persist, and analyze inference streams.

A deployed scheduler needs observability: which targets ran, what they
cost, where deadlines were missed, and how decisions moved as conditions
changed.  :class:`TraceRecorder` captures one record per inference from
an engine's steps (or any scheduler's results), round-trips through JSONL,
and produces the summaries the examples print.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.contracts import (
    contracts_enabled,
    ensure_duration_ms,
    ensure_energy_mj,
    ensure_finite,
    ensure_latency_ms,
)
from repro.common import ConfigError

__all__ = ["TraceRecord", "TraceRecorder", "load_trace"]


#: Legal ``TraceRecord.status`` values: a normally delivered result, a
#: request that delivered nothing (naive serving under faults), a
#: result delivered by the resilience fallback after remote attempts
#: were exhausted, and a request the overload pipeline refused to
#: execute (zero latency, zero energy).
_STATUSES = ("ok", "failed", "degraded", "shed")


@dataclass(frozen=True)
class TraceRecord:
    """One inference, flattened for persistence.

    ``status``/``retries``/``failed_energy_mj`` are the resilience
    bookkeeping: ``failed_energy_mj`` is the energy billed to dead
    attempts *before* this record's outcome (for ``status="failed"``
    the record's own ``energy_mj`` is itself dead-attempt energy).

    ``queue_delay_ms``/``tier`` are the overload bookkeeping: time the
    request waited in the admission queue before service (or before
    being shed), and the brownout tier it was served under.  QoS is
    judged end-to-end — queueing delay counts against the deadline just
    like service latency does.

    ``reason`` is the degradation reason code in force when the record
    was written — ``"guard/<stage>"`` under an escalated policy guard,
    ``"brownout/<tier>"`` under an escalated brownout with a healthy
    guard, empty for a normally served request.  Unlike ``tier`` it is
    stamped on *every* row (including sheds), so a trace reader can
    attribute any record to the regime that produced it.
    """

    index: int
    at_ms: float
    use_case: str
    target_key: str
    latency_ms: float
    energy_mj: float
    estimated_energy_mj: float
    accuracy_pct: float
    qos_ms: float
    reward: Optional[float] = None
    explored: Optional[bool] = None
    status: str = "ok"
    retries: int = 0
    failed_energy_mj: float = 0.0
    queue_delay_ms: float = 0.0
    tier: str = "normal"
    reason: str = ""

    def __post_init__(self):
        # Trace rows are minted once per served request — the serving
        # hot path — so the field contracts obey the same switch as
        # :func:`repro.analysis.contracts.checked`: on under pytest,
        # off in production unless REPRO_CONTRACTS forces them.
        if not contracts_enabled():
            return
        ensure_duration_ms(self.at_ms, "at_ms")
        if self.status == "shed":
            # A shed executes nothing; zero latency is its whole point.
            ensure_duration_ms(self.latency_ms, "latency_ms")
        else:
            ensure_latency_ms(self.latency_ms, "latency_ms")
        ensure_energy_mj(self.energy_mj, "energy_mj")
        ensure_energy_mj(self.estimated_energy_mj, "estimated_energy_mj")
        ensure_duration_ms(self.qos_ms, "qos_ms")
        ensure_duration_ms(self.queue_delay_ms, "queue_delay_ms")
        if not 0.0 <= self.accuracy_pct <= 100.0:
            raise ConfigError(
                f"accuracy outside [0, 100]: {self.accuracy_pct}"
            )
        if self.reward is not None:
            ensure_finite(self.reward, "reward")
        if self.status not in _STATUSES:
            raise ConfigError(
                f"unknown trace status {self.status!r}; "
                f"legal: {_STATUSES}"
            )
        if self.retries < 0:
            raise ConfigError(f"negative retries: {self.retries}")
        ensure_energy_mj(self.failed_energy_mj, "failed_energy_mj")

    @property
    def delivered(self):
        """Whether the request produced an inference result at all."""
        return self.status not in ("failed", "shed")

    @property
    def meets_qos(self):
        """End-to-end QoS: queueing delay counts against the deadline.

        A request that delivered nothing (failed or shed) cannot have
        met its QoS.
        """
        return (self.delivered
                and self.queue_delay_ms + self.latency_ms <= self.qos_ms)


class TraceRecorder:
    """Accumulates :class:`TraceRecord` entries and analyzes them.

    ``max_records`` bounds the trace as a rolling window: when an append
    would reach the bound, the oldest half is dropped in one go
    (amortized O(1) per record).  ``None`` keeps everything.
    """

    def __init__(self, max_records=None):
        if max_records is not None and max_records < 1:
            raise ConfigError("max_records must be >= 1 (or None)")
        self.max_records = max_records
        self.records: List[TraceRecord] = []

    def __len__(self):
        return len(self.records)

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------

    def _trim(self):
        if self.max_records is not None \
                and len(self.records) >= self.max_records:
            self.records = self.records[self.max_records // 2:]

    def record_step(self, step, use_case, at_ms=None, status=None,
                    retries=0, failed_energy_mj=0.0, queue_delay_ms=0.0,
                    tier="normal", reason=""):
        """Capture one engine :class:`AutoScaleStep`.

        ``status`` defaults from the result itself (``"failed"`` for a
        :class:`~repro.faults.FailedAttempt`, else ``"ok"``); the
        resilient service overrides it and supplies the retry count and
        the energy its dead attempts burned.  The serving pipeline
        supplies the queueing delay and brownout tier.
        """
        self._trim()
        result = step.result
        if status is None:
            status = "failed" if result.failed else "ok"
        self.records.append(TraceRecord(
            index=len(self.records),
            at_ms=float(at_ms if at_ms is not None else len(self.records)),
            use_case=use_case.name,
            target_key=step.target_key,
            latency_ms=result.latency_ms,
            energy_mj=result.energy_mj,
            estimated_energy_mj=result.estimated_energy_mj,
            accuracy_pct=result.accuracy_pct,
            qos_ms=use_case.qos_ms,
            reward=step.reward,
            explored=step.explored,
            status=status,
            retries=retries,
            failed_energy_mj=failed_energy_mj,
            queue_delay_ms=queue_delay_ms,
            tier=tier,
            reason=reason,
        ))
        return self.records[-1]

    def record_result(self, result, use_case, at_ms=None, status=None,
                      retries=0, failed_energy_mj=0.0, queue_delay_ms=0.0,
                      tier="normal", reason=""):
        """Capture a bare :class:`ExecutionResult` (baseline schedulers,
        and the resilient service's degraded-mode fallback)."""
        self._trim()
        if status is None:
            status = "failed" if getattr(result, "failed", False) else "ok"
        self.records.append(TraceRecord(
            index=len(self.records),
            at_ms=float(at_ms if at_ms is not None else len(self.records)),
            use_case=use_case.name,
            target_key=result.target_key,
            latency_ms=result.latency_ms,
            energy_mj=result.energy_mj,
            estimated_energy_mj=result.estimated_energy_mj,
            accuracy_pct=result.accuracy_pct,
            qos_ms=use_case.qos_ms,
            status=status,
            retries=retries,
            failed_energy_mj=failed_energy_mj,
            queue_delay_ms=queue_delay_ms,
            tier=tier,
            reason=reason,
        ))
        return self.records[-1]

    def record_shed(self, shed, use_case, tier="normal", reason=""):
        """Capture a :class:`~repro.serving.SheddedRequest`.

        Shed records bill zero latency and zero energy; their
        ``target_key`` carries the shed reason (``"shed/<reason>"``) so
        :meth:`decisions_by_location` and per-target breakdowns keep a
        visible ``shed`` bucket.  ``tier``/``reason`` stamp the brownout
        tier and degradation regime in force at shed time — previously
        sheds always recorded the default tier, hiding which regime was
        refusing work.
        """
        self._trim()
        self.records.append(TraceRecord(
            index=len(self.records),
            at_ms=shed.shed_at_ms,
            use_case=use_case.name,
            target_key=shed.target_key,
            latency_ms=0.0,
            energy_mj=0.0,
            estimated_energy_mj=0.0,
            accuracy_pct=0.0,
            qos_ms=use_case.qos_ms,
            status="shed",
            queue_delay_ms=shed.queue_delay_ms,
            tier=tier,
            reason=reason,
        ))
        return self.records[-1]

    # ------------------------------------------------------------------
    # Persistence (JSONL)
    # ------------------------------------------------------------------

    def save(self, path):
        """Write one JSON object per line."""
        path = pathlib.Path(path)
        with path.open("w") as handle:
            for record in self.records:
                handle.write(json.dumps(asdict(record)) + "\n")
        return path

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------

    def _require_records(self):
        if not self.records:
            raise ConfigError("trace is empty")

    _EMPTY_SUMMARY = {
        "num_inferences": 0,
        "total_energy_mj": 0.0,
        "mean_energy_mj": 0.0,
        "p95_latency_ms": 0.0,
        "qos_violation_pct": 0.0,
        "availability_pct": 0.0,
        "degraded_pct": 0.0,
        "retries_per_request": 0.0,
        "failed_energy_mj": 0.0,
        "shed_pct": 0.0,
        "p50_queue_delay_ms": 0.0,
        "p99_queue_delay_ms": 0.0,
        "energy_per_delivered_mj": 0.0,
    }

    def summary(self):
        """Aggregate energy/latency/violation/availability statistics.

        Degenerate traces are legal inputs: an empty trace returns the
        all-zero summary (every key present, every rate 0.0) instead of
        raising, and a trace with nothing delivered (all failed, all
        shed) keeps every ratio finite — a monitoring endpoint must not
        crash precisely when the service is at its sickest.
        """
        total = len(self.records)
        if total == 0:
            return dict(self._EMPTY_SUMMARY)
        energies = np.array([r.energy_mj for r in self.records])
        # Shed requests never executed; their zero latency is not a
        # service-time sample and would drag percentiles toward zero.
        executed_latencies = np.array([
            r.latency_ms for r in self.records if r.status != "shed"
        ])
        queue_delays = np.array([r.queue_delay_ms for r in self.records])
        violations = sum(1 for r in self.records if not r.meets_qos)
        delivered = sum(1 for r in self.records if r.delivered)
        degraded = sum(1 for r in self.records if r.status == "degraded")
        sheds = sum(1 for r in self.records if r.status == "shed")
        # Dead-attempt energy: resilient records carry it alongside a
        # delivered result; a "failed" record's own energy *is* it.
        failed_energy_mj = sum(r.failed_energy_mj for r in self.records)
        failed_energy_mj += sum(r.energy_mj for r in self.records
                                if r.status == "failed")
        total_energy_mj = float(energies.sum())
        return {
            "num_inferences": total,
            "total_energy_mj": total_energy_mj,
            "mean_energy_mj": float(energies.mean()),
            "p95_latency_ms": (
                float(np.percentile(executed_latencies, 95))
                if len(executed_latencies) else 0.0
            ),
            "qos_violation_pct": violations / total * 100.0,
            "availability_pct": delivered / total * 100.0,
            "degraded_pct": degraded / total * 100.0,
            "retries_per_request": sum(r.retries for r in self.records)
            / total,
            "failed_energy_mj": float(failed_energy_mj),
            "shed_pct": sheds / total * 100.0,
            "p50_queue_delay_ms": float(np.percentile(queue_delays, 50)),
            "p99_queue_delay_ms": float(np.percentile(queue_delays, 99)),
            "energy_per_delivered_mj": (
                total_energy_mj / delivered if delivered else 0.0
            ),
        }

    def decisions_by_location(self):
        """Share of decisions per location (local/cloud/connected)."""
        self._require_records()
        counts: Dict[str, int] = {}
        for record in self.records:
            location = record.target_key.split("/")[0]
            counts[location] = counts.get(location, 0) + 1
        total = len(self.records)
        return {k: v / total for k, v in sorted(counts.items())}

    def migrations(self):
        """Indices where the chosen target changed from the previous
        inference of the *same use case* — how often the scheduler moved
        work around."""
        self._require_records()
        last: Dict[str, str] = {}
        moved = []
        for record in self.records:
            previous = last.get(record.use_case)
            if previous is not None and previous != record.target_key:
                moved.append(record.index)
            last[record.use_case] = record.target_key
        return moved

    def violation_runs(self):
        """Lengths of consecutive QoS-violation stretches."""
        self._require_records()
        runs, current = [], 0
        for record in self.records:
            if record.meets_qos:
                if current:
                    runs.append(current)
                current = 0
            else:
                current += 1
        if current:
            runs.append(current)
        return runs

    def estimator_mape_pct(self):
        """MAPE of the engine's energy estimates over this trace.

        Shed records never executed (measured energy is identically
        zero) so they carry no estimator information and are excluded;
        a trace with nothing executed yields 0.0.
        """
        self._require_records()
        executed = [r for r in self.records if r.status != "shed"]
        if not executed:
            return 0.0
        predicted = np.array([r.estimated_energy_mj for r in executed])
        measured = np.array([r.energy_mj for r in executed])
        return float(np.mean(np.abs(predicted - measured) / measured)
                     * 100.0)


def load_trace(path, max_records=None):
    """Read a JSONL trace back into a :class:`TraceRecorder`.

    ``max_records`` restores the recorder's rolling-window bound (only
    the newest ``max_records`` lines are kept, with original indices).
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise ConfigError(f"no trace at {path}")
    recorder = TraceRecorder(max_records=max_records)
    with path.open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            recorder.records.append(TraceRecord(**json.loads(line)))
    if max_records is not None and len(recorder.records) > max_records:
        recorder.records = recorder.records[-max_records:]
    return recorder
