"""AutoScaleService: the engine packaged the way a product would ship it.

Footnote 7: "AutoScale is implemented as part of intelligent services and
runs on the mobile CPU."  This facade is that integration surface — one
object that owns the engine, keeps a rolling trace, persists/restores its
table, and exposes the two calls a service framework needs:

- :meth:`handle` — schedule and execute one inference request;
- :meth:`checkpoint` / :meth:`restore` — survive process restarts.

Training is continuous by default (the paper's "continuously learns"),
with :meth:`set_learning` to pin a converged table in place.
"""

from __future__ import annotations

import pathlib
from typing import Optional

from repro.common import ConfigError, UnknownKeyError
from repro.core.engine import AutoScale
from repro.core.persistence import load_engine, save_engine
from repro.evalharness.tracing import TraceRecorder

__all__ = ["AutoScaleService"]


class AutoScaleService:
    """A deployable wrapper around one engine and its bookkeeping."""

    def __init__(self, environment, engine=None, seed=None,
                 trace_limit=10_000):
        if trace_limit < 1:
            raise ConfigError("trace_limit must be >= 1")
        self.environment = environment
        self.engine = engine or AutoScale(environment, seed=seed)
        self.trace = TraceRecorder()
        self.trace_limit = trace_limit
        self._registered = {}

    # ------------------------------------------------------------------
    # Service registry
    # ------------------------------------------------------------------

    def register(self, use_case):
        """Register a service's use case; returns its name handle."""
        self._registered[use_case.name] = use_case
        return use_case.name

    def use_case(self, name):
        try:
            return self._registered[name]
        except KeyError:
            raise UnknownKeyError(
                f"no registered service {name!r}; "
                f"known: {sorted(self._registered)}"
            ) from None

    @property
    def services(self):
        return tuple(sorted(self._registered))

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def handle(self, name):
        """Schedule and execute one inference for a registered service.

        Returns the :class:`~repro.env.result.ExecutionResult`.
        """
        use_case = self.use_case(name)
        step = self.engine.step(use_case)
        if len(self.trace) >= self.trace_limit:
            # Rolling window: drop the oldest half in one go (amortized).
            self.trace.records = self.trace.records[self.trace_limit // 2:]
        self.trace.record_step(step, use_case,
                               at_ms=self.environment.clock.now_ms)
        return step.result

    def set_learning(self, enabled):
        """Toggle continuous learning (off pins the trained table)."""
        if enabled:
            self.engine.unfreeze()
        else:
            self.engine.freeze()

    @property
    def learning(self):
        return self.engine.training

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def status(self):
        """A service-health snapshot."""
        status = {
            "services": list(self.services),
            "learning": self.learning,
            "inferences_served": len(self.engine.history),
            "qtable_mb": self.engine.memory_footprint_bytes() / 1e6,
            "converged": self.engine.converged,
        }
        if len(self.trace):
            status.update(self.trace.summary())
        return status

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def checkpoint(self, directory):
        """Persist the trained table (and the current trace) to disk."""
        path = save_engine(self.engine, directory)
        if len(self.trace):
            self.trace.save(pathlib.Path(directory) / "trace.jsonl")
        return path

    @classmethod
    def restore(cls, directory, environment, seed=None,
                trace_limit=10_000):
        """Reconstruct a service from a checkpoint."""
        engine = load_engine(directory, environment, seed=seed)
        return cls(environment, engine=engine, trace_limit=trace_limit)
