"""AutoScaleService: the engine packaged the way a product would ship it.

Footnote 7: "AutoScale is implemented as part of intelligent services and
runs on the mobile CPU."  This facade is that integration surface — one
object that owns the engine, keeps a rolling trace, persists/restores its
table, and exposes the two calls a service framework needs:

- :meth:`handle` — schedule and execute one inference request;
- :meth:`checkpoint` / :meth:`restore` — survive process restarts.

Training is continuous by default (the paper's "continuously learns"),
with :meth:`set_learning` to pin a converged table in place.

With a :class:`~repro.faults.ResiliencePolicy` attached, :meth:`handle`
becomes the *resilient* serving path (see docs/robustness.md): remote
attempts run under a deadline, failed attempts are retried with
exponential backoff and jitter, repeat offenders are circuit-broken out
of the engine's action space, and a request whose retries are exhausted
degrades to the best local target rather than failing the caller.
``ResiliencePolicy.disabled()`` (the default) is bit-identical to the
historical single-attempt path.
"""

from __future__ import annotations

import pathlib
from typing import Optional

import numpy as np

from repro.common import ConfigError, UnknownKeyError, make_rng
from repro.core.engine import AutoScale
from repro.core.persistence import (
    load_engine,
    load_guard,
    save_engine,
    save_guard,
)
from repro.core.tracing import TraceRecorder, load_trace
from repro.faults.breaker import CircuitBreaker
from repro.faults.resilience import ResiliencePolicy
from repro.guard import GuardConfig, PolicyGuard
from repro.sim.events import EventKind

__all__ = ["AutoScaleService"]


class AutoScaleService:
    """A deployable wrapper around one engine and its bookkeeping."""

    def __init__(self, environment, engine=None, seed=None,
                 trace_limit=10_000, resilience=None, guard=None):
        if trace_limit < 1:
            raise ConfigError("trace_limit must be >= 1")
        self.environment = environment
        self.engine = engine or AutoScale(environment, seed=seed)
        self.trace = TraceRecorder(max_records=trace_limit)
        self.trace_limit = trace_limit
        self.resilience = (resilience if resilience is not None
                           else ResiliencePolicy.disabled())
        # The policy guard (see repro.guard) defaults to the inert
        # configuration: no ticks, no detector feeds, bit-identical
        # serving.  The serving pipeline hosts its GUARD_TICK loop.
        self.guard = (guard if guard is not None
                      else PolicyGuard(GuardConfig.disabled()))
        # Pre-escalation engine hyperparameters, parked here by the
        # serving pipeline while the guard holds a non-HEALTHY stage.
        self._guard_base = None
        self._retry_rng = make_rng(seed)
        self._breakers = {}
        self._registered = {}

    # ------------------------------------------------------------------
    # Service registry
    # ------------------------------------------------------------------

    def register(self, use_case):
        """Register a service's use case; returns its name handle."""
        self._registered[use_case.name] = use_case
        return use_case.name

    def use_case(self, name):
        try:
            return self._registered[name]
        except KeyError:
            raise UnknownKeyError(
                f"no registered service {name!r}; "
                f"known: {sorted(self._registered)}"
            ) from None

    @property
    def services(self):
        return tuple(sorted(self._registered))

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def handle(self, name):
        """Schedule and execute one inference for a registered service.

        Returns the :class:`~repro.env.result.ExecutionResult` — or,
        with faults active and no resilience policy, possibly a
        :class:`~repro.faults.FailedAttempt` (the naive path surfaces
        failures to the caller; the resilient path absorbs them).
        """
        use_case = self.use_case(name)
        if not self.resilience.enabled:
            step = self.engine.step(use_case)
            self.trace.record_step(step, use_case,
                                   at_ms=self.environment.clock.now_ms)
            return step.result
        return self._handle_resilient(use_case)

    def serve(self, arrivals, config=None):
        """Replay an open-loop arrival stream through the serving
        pipeline (see :mod:`repro.serving`); returns one
        :class:`~repro.serving.ServedRequest` per arrival.

        ``config`` is a :class:`~repro.serving.ServingConfig`; the
        default enables the bounded queue, the deadline-aware shedder,
        and the brownout controller.
        """
        # Imported lazily: repro.serving builds on this module.
        from repro.serving.pipeline import ServingPipeline
        return ServingPipeline(self, config).serve(arrivals)

    def _handle_resilient(self, use_case, extra_allowed=None,
                          queue_delay_ms=0.0, tier="normal", reason=""):
        """The resilient request path: deadline, retries, degradation.

        Every attempt goes through the engine's full Algorithm-1 cycle,
        so failed attempts also *teach* the Q-table (their reward sits
        below every delivering action's) while the breakers mask the
        worst offenders out of selection entirely.  ``extra_allowed``
        (the serving pipeline's brownout mask) intersects with the
        breaker mask on every attempt.  ``queue_delay_ms``/``tier`` are
        the pipeline's queueing columns, written into the trace record
        at construction — re-stamping the trace tail after the fact
        would race the rolling window's eviction.
        """
        policy = self.resilience
        env = self.environment
        deadline_ms = policy.deadline_ms(use_case.qos_ms)
        failed_energy_mj = 0.0
        attempts = 0
        step = None
        while attempts <= policy.max_retries:
            step = self.engine.step(
                use_case,
                allowed_actions=self._combine_masks(self._allowed_actions(),
                                                    extra_allowed),
                deadline_ms=deadline_ms,
            )
            attempts += 1
            self._note_outcome(step)
            if not step.result.failed:
                self.trace.record_step(
                    step, use_case, at_ms=env.clock.now_ms,
                    status="ok", retries=attempts - 1,
                    failed_energy_mj=failed_energy_mj,
                    queue_delay_ms=queue_delay_ms, tier=tier,
                    reason=reason,
                )
                return step.result
            failed_energy_mj += step.result.energy_mj
            if attempts <= policy.max_retries:
                self._backoff(policy.backoff_ms(attempts - 1,
                                                self._retry_rng))
        # Retries exhausted: degrade to the best local target, which the
        # fault plan cannot touch.  Only a use case with no accuracy-
        # feasible local target at all still fails.
        result = self._degrade(use_case)
        if result is None:
            self.trace.record_step(
                step, use_case, at_ms=env.clock.now_ms,
                status="failed", retries=attempts - 1,
                failed_energy_mj=failed_energy_mj - step.result.energy_mj,
                queue_delay_ms=queue_delay_ms, tier=tier,
                reason=reason,
            )
            return step.result
        self.trace.record_result(
            result, use_case, at_ms=env.clock.now_ms,
            status="degraded", retries=attempts - 1,
            failed_energy_mj=failed_energy_mj,
            queue_delay_ms=queue_delay_ms, tier=tier,
            reason=reason,
        )
        return result

    def _backoff(self, delay_ms):
        """Wait out one retry backoff as a typed timeline event.

        The wait is scheduled as a ``RETRY`` event and the clock is
        advanced through the environment funnel, so the backoff is
        visible on the event timeline and anything else due inside the
        window (queued arrivals, outage boundaries) fires in order
        during the wait.  The advance is the same single
        ``delta``-advance as before, keeping timestamps bit-identical.
        """
        self.environment.kernel.schedule_in(delay_ms, EventKind.RETRY)
        self.environment.advance_clock(delay_ms)

    def _degrade(self, use_case):
        """Execute the best accuracy-feasible local target directly."""
        env = self.environment
        targets = env.targets()
        local_indices = [index for index, target in enumerate(targets)
                         if not target.is_remote]
        if not local_indices:
            return None
        observation = env.observe()
        sweep = env.estimate_all(use_case.network, observation)
        best = sweep.argbest(use_case, indices=local_indices)
        if best is None:
            return None
        return env.execute(use_case.network, targets[best], observation)

    # ------------------------------------------------------------------
    # Circuit breakers
    # ------------------------------------------------------------------

    def _allowed_actions(self):
        """Boolean action mask from the breakers, or ``None`` (= all)."""
        if not self._breakers:
            return None
        now_ms = self.environment.clock.now_ms
        verdicts = {key: breaker.allows(now_ms)
                    for key, breaker in self._breakers.items()}
        if all(verdicts.values()):
            return None
        space = self.engine.action_space
        allowed = np.ones(len(space), dtype=bool)
        for index in range(len(space)):
            if not verdicts.get(space.target(index).key, True):
                allowed[index] = False
        return allowed

    def action_mask(self):
        """The current breaker-derived action mask (``None`` = all).

        Public so the serving pipeline can intersect it with its own
        brownout mask before selection.
        """
        return self._allowed_actions()

    @staticmethod
    def _combine_masks(first, second):
        """Intersect two optional boolean masks (``None`` = everything)."""
        if first is None:
            return second
        if second is None:
            return first
        return first & second

    def _note_outcome(self, step):
        """Feed one attempt's outcome to its target's breaker."""
        target = self.engine.action_space.target(step.action)
        if not target.is_remote:
            return
        breaker = self._breakers.get(target.key)
        if breaker is None:
            if not step.result.failed:
                return  # no breaker bookkeeping for healthy targets
            breaker = CircuitBreaker(self.resilience.breaker)
            self._breakers[target.key] = breaker
        now_ms = self.environment.clock.now_ms
        if step.result.failed:
            breaker.record_failure(now_ms)
        else:
            breaker.record_success(now_ms)

    def breaker_states(self):
        """Current breaker state per (ever-failed) remote target key."""
        return {key: breaker.state.value
                for key, breaker in sorted(self._breakers.items())}

    def set_learning(self, enabled):
        """Toggle continuous learning (off pins the trained table)."""
        if enabled:
            self.engine.unfreeze()
        else:
            self.engine.freeze()

    @property
    def learning(self):
        return self.engine.training

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def status(self):
        """A service-health snapshot.

        With traffic recorded this includes the trace summary's
        resilience block (``availability_pct``, ``degraded_pct``,
        ``retries_per_request``, ``failed_energy_mj``) plus the live
        breaker states and the environment's fault counters.
        """
        status = {
            "services": list(self.services),
            "learning": self.learning,
            "resilience_enabled": self.resilience.enabled,
            "inferences_served": self.engine.total_steps,
            "qtable_mb": self.engine.memory_footprint_bytes() / 1e6,
            "converged": self.engine.converged,
            "breakers": self.breaker_states(),
            "guard": self.guard.status(),
        }
        fault_stats = getattr(self.environment, "fault_stats", None)
        if fault_stats is not None:
            status["faults"] = fault_stats.as_dict()
        if len(self.trace):
            status.update(self.trace.summary())
        return status

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def checkpoint(self, directory):
        """Persist the trained table (and the current trace) to disk.

        An *enabled* policy guard is serialized alongside (detector
        baselines, CUSUM accumulators, dwell counters, stage), so a
        restart mid-incident resumes the supervisor exactly where it
        was instead of silently re-arming a healthy one.
        """
        path = save_engine(self.engine, directory)
        if len(self.trace):
            self.trace.save(pathlib.Path(directory) / "trace.jsonl")
        if self.guard.enabled:
            save_guard(self.guard, directory)
        return path

    @classmethod
    def restore(cls, directory, environment, seed=None,
                trace_limit=10_000, resilience=None, guard=None):
        """Reconstruct a service from a checkpoint.

        Restores the trained table *and* the rolling trace (when the
        checkpoint saved one), bounded by ``trace_limit`` — so a
        restarted service resumes with its observability intact instead
        of an empty history.  A persisted guard blob is restored the
        same way unless an explicit ``guard`` overrides it.
        """
        engine = load_engine(directory, environment, seed=seed)
        if guard is None:
            guard = load_guard(directory)
        service = cls(environment, engine=engine, trace_limit=trace_limit,
                      resilience=resilience, guard=guard)
        trace_path = pathlib.Path(directory) / "trace.jsonl"
        if trace_path.exists():
            service.trace = load_trace(trace_path,
                                       max_records=trace_limit)
        return service
