"""Q-table transfer learning across devices.

Section IV / VI-C: although execution targets' absolute performance varies
across heterogeneous devices, they exhibit similar *energy trends* per
network, so a model trained on one device carries useful knowledge to
another and accelerates convergence (the paper reports a 21.2% cut in
training time transferring Mi8Pro -> Galaxy S10e / Moto X Force).

Devices have differently sized action spaces (66 on the Mi8Pro, fewer on
phones without a DSP or with fewer V/F steps), so values cannot be copied
column-for-column.  :func:`map_actions` aligns actions semantically: each
target-device action maps to the source action with the same (location,
role, precision) and the nearest *relative* DVFS position; actions with no
source counterpart (e.g. a DSP the source lacks) keep their fresh random
initialization.
"""

from __future__ import annotations

from repro.common import ConfigError
from repro.env.target import Location

__all__ = ["map_actions", "transfer_q_table"]


def _relative_vf(target, space):
    """The action's V/F position as a fraction of its processor's range."""
    if target.location is not Location.LOCAL or target.vf_index < 0:
        return 1.0
    # Infer the step count from the largest vf_index sharing the slot.
    siblings = [
        t.vf_index for t in space.targets
        if (t.location, t.role, t.precision)
        == (target.location, target.role, target.precision)
    ]
    top = max(siblings)
    return target.vf_index / top if top > 0 else 1.0


def map_actions(source_space, target_space):
    """For each target action, the best-matching source action index.

    Returns a list of length ``len(target_space)`` whose entries are a
    source index or ``None`` when no source action shares the target's
    (location, role, precision) slot.
    """
    source_slots = {}
    for index, action in enumerate(source_space.targets):
        slot = (action.location, action.role, action.precision)
        source_slots.setdefault(slot, []).append(index)

    mapping = []
    for action in target_space.targets:
        slot = (action.location, action.role, action.precision)
        candidates = source_slots.get(slot)
        if not candidates:
            mapping.append(None)
            continue
        wanted = _relative_vf(action, target_space)
        best = min(
            candidates,
            key=lambda i: abs(
                _relative_vf(source_space.targets[i], source_space) - wanted
            ),
        )
        mapping.append(best)
    return mapping


def transfer_q_table(source_table, source_space, target_table,
                     target_space, blend=1.0):
    """Seed ``target_table`` with knowledge from ``source_table``.

    Args:
        source_table / target_table: :class:`~repro.core.qlearning.QTable`
            instances over the *same* state space (Table I is
            device-independent).
        source_space / target_space: the two devices' action spaces.
        blend: 1.0 overwrites the target's initial values; smaller values
            mix transferred knowledge with the fresh initialization.

    Returns the number of target actions that received transferred values.
    """
    if source_table.num_states != target_table.num_states:
        raise ConfigError(
            "transfer requires identical state spaces "
            f"({source_table.num_states} != {target_table.num_states})"
        )
    if not 0.0 < blend <= 1.0:
        raise ConfigError(f"blend outside (0, 1]: {blend}")
    mapping = map_actions(source_space, target_space)
    transferred = 0
    for column, source_index in enumerate(mapping):
        if source_index is None:
            continue
        target_table.values[:, column] = (
            blend * source_table.values[:, source_index]
            + (1.0 - blend) * target_table.values[:, column]
        )
        # Transferred values encode real experience, not optimistic
        # initialization — carry the visit counts so the target engine's
        # trained-table selection rule trusts them immediately.
        target_table.visits[:, column] = \
            source_table.visits[:, source_index]
        transferred += 1
    return transferred
