"""AutoScale's state space (Table I).

Eight discrete features: four describing the network (CONV/FC/RC layer
counts and total MACs) and four describing runtime variance (co-runner CPU
and memory usage, WLAN RSSI, P2P RSSI).  With the paper's bins the space
has 4 * 2 * 2 * 3 * 4 * 4 * 2 * 2 = 3,072 states — the "3,072 states" of
the Opt design-space enumeration in Section V-A.

The bin boundaries were derived by the authors with DBSCAN over profiling
data; ``repro.core.discretize`` reimplements that derivation, and
:func:`table_i_state_space` hard-codes the resulting Table-I bins.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.common import ConfigError, UnknownKeyError

__all__ = ["StateFeature", "StateSpace", "table_i_state_space"]


@dataclass(frozen=True)
class StateFeature:
    """One discretized state feature.

    Attributes:
        name: feature id, e.g. ``"s_conv"``.
        edges: ascending bin boundaries.  A raw value ``v`` falls in bin
            ``bisect_right(edges, v)`` (boundaries belong to the upper
            bin, matching Table I's ``<`` / ``>=`` conventions).
        labels: one label per bin (``len(edges) + 1``, plus one more when
            ``zero_bin``).
        zero_bin: give exact-zero values a dedicated first bin (Table I's
            "none (0%)" bins).
        edge_belongs_low: boundary values fall in the *lower* bin instead
            — Table I's RSSI features are "regular (> -80), weak
            (<= -80)", so -80 itself is weak.
    """

    name: str
    edges: Tuple[float, ...]
    labels: Tuple[str, ...]
    zero_bin: bool = False
    edge_belongs_low: bool = False

    def __post_init__(self):
        edges = tuple(self.edges)
        if list(edges) != sorted(edges):
            raise ConfigError(f"{self.name}: edges must be ascending")
        if len(set(edges)) != len(edges):
            raise ConfigError(f"{self.name}: duplicate edges")
        expected = len(edges) + 1 + (1 if self.zero_bin else 0)
        if len(self.labels) != expected:
            raise ConfigError(
                f"{self.name}: expected {expected} labels, "
                f"got {len(self.labels)}"
            )
        object.__setattr__(self, "edges", edges)
        object.__setattr__(self, "labels", tuple(self.labels))

    @property
    def num_bins(self):
        return len(self.labels)

    def discretize(self, value):
        """Map a raw value to its bin index."""
        locate = (bisect.bisect_left if self.edge_belongs_low
                  else bisect.bisect_right)
        if self.zero_bin:
            if value == 0:
                return 0
            return 1 + locate(self.edges, value)
        return locate(self.edges, value)

    def label_of(self, value):
        """The human-readable bin label for a raw value."""
        return self.labels[self.discretize(value)]


class StateSpace:
    """An ordered collection of state features with mixed-radix indexing."""

    def __init__(self, features):
        self.features = tuple(features)
        if not self.features:
            raise ConfigError("state space needs at least one feature")
        names = [f.name for f in self.features]
        if len(set(names)) != len(names):
            raise ConfigError("duplicate feature names")
        self._radices = tuple(f.num_bins for f in self.features)

    @property
    def size(self):
        """Total number of discrete states."""
        total = 1
        for radix in self._radices:
            total *= radix
        return total

    def feature(self, name):
        for feature in self.features:
            if feature.name == name:
                return feature
        raise UnknownKeyError(f"no feature named {name!r}")

    def discretize(self, raw_values):
        """Per-feature bin indices for an ordered raw-value sequence."""
        if len(raw_values) != len(self.features):
            raise ConfigError(
                f"expected {len(self.features)} values, got {len(raw_values)}"
            )
        return tuple(
            feature.discretize(value)
            for feature, value in zip(self.features, raw_values)
        )

    def index_of(self, bins):
        """Mixed-radix flattening of per-feature bins to one state index."""
        if len(bins) != len(self.features):
            raise ConfigError(
                f"expected {len(self.features)} bins, got {len(bins)}"
            )
        index = 0
        for bin_index, radix in zip(bins, self._radices):
            if not 0 <= bin_index < radix:
                raise ConfigError(f"bin {bin_index} outside [0, {radix})")
            index = index * radix + bin_index
        return index

    def encode(self, network, observation):
        """State index for a (network, observation) pair.

        Raw values follow the Table-I feature order: S_CONV, S_FC, S_RC,
        S_MAC, S_Co_CPU, S_Co_MEM, S_RSSI_W, S_RSSI_P.  Utilizations are
        converted to percent, MACs to millions.
        """
        raw = (
            network.num_conv,
            network.num_fc,
            network.num_rc,
            network.mega_macs,
            observation.cpu_util * 100.0,
            observation.mem_util * 100.0,
            observation.rssi_wlan_dbm,
            observation.rssi_p2p_dbm,
        )
        return self.index_of(self.discretize(raw))

    def describe(self, network, observation):
        """Human-readable per-feature labels (for logging/debugging)."""
        raw = (
            network.num_conv, network.num_fc, network.num_rc,
            network.mega_macs, observation.cpu_util * 100.0,
            observation.mem_util * 100.0, observation.rssi_wlan_dbm,
            observation.rssi_p2p_dbm,
        )
        return {
            feature.name: feature.label_of(value)
            for feature, value in zip(self.features, raw)
        }

    def without(self, name):
        """A copy of the space lacking one feature (ablation studies).

        The returned space encodes only the remaining features; the
        Table-I raw ordering no longer applies, so use it through the
        ablation helpers in ``repro.evalharness``.
        """
        remaining = [f for f in self.features if f.name != name]
        if len(remaining) == len(self.features):
            raise UnknownKeyError(f"no feature named {name!r}")
        return StateSpace(remaining)


def table_i_state_space():
    """The exact Table-I feature bins (3,072 states)."""
    return StateSpace([
        StateFeature(
            "s_conv", edges=(30, 50, 90),
            labels=("small", "medium", "large", "larger"),
        ),
        StateFeature("s_fc", edges=(10,), labels=("small", "large")),
        StateFeature("s_rc", edges=(10,), labels=("small", "large")),
        StateFeature(
            "s_mac", edges=(1000.0, 2000.0),
            labels=("small", "medium", "large"),
        ),
        StateFeature(
            "s_co_cpu", edges=(25.0, 75.0),
            labels=("none", "small", "medium", "large"), zero_bin=True,
        ),
        StateFeature(
            "s_co_mem", edges=(25.0, 75.0),
            labels=("none", "small", "medium", "large"), zero_bin=True,
        ),
        StateFeature(
            "s_rssi_w", edges=(-80.0,), labels=("weak", "regular"),
            edge_belongs_low=True,
        ),
        StateFeature(
            "s_rssi_p", edges=(-80.0,), labels=("weak", "regular"),
            edge_belongs_low=True,
        ),
    ])
