"""AutoScale's action space.

Actions are the available execution targets (Section IV-A), augmented with
DVFS settings and quantization levels (Section V-C).  The
:class:`ActionSpace` indexes a stable tuple of
:class:`~repro.env.target.ExecutionTarget` so the Q-table can address
actions by integer column.
"""

from __future__ import annotations

from repro.common import ConfigError, UnknownKeyError
from repro.env.target import enumerate_targets

__all__ = ["ActionSpace"]


class ActionSpace:
    """An indexed, immutable set of execution targets."""

    def __init__(self, targets):
        self.targets = tuple(targets)
        if not self.targets:
            raise ConfigError("action space cannot be empty")
        self._index = {target.key: i for i, target in enumerate(self.targets)}
        if len(self._index) != len(self.targets):
            raise ConfigError("duplicate targets in action space")

    @classmethod
    def from_environment(cls, environment, with_dvfs=True,
                         with_quantization=True):
        """Build the action space of an :class:`EdgeCloudEnvironment`.

        With both augmentations on (the paper's configuration), the
        Mi8Pro environment yields the paper's 66 actions.
        """
        return cls(enumerate_targets(
            environment.device, environment.cloud, environment.connected,
            with_dvfs=with_dvfs, with_quantization=with_quantization,
        ))

    def __len__(self):
        return len(self.targets)

    def __iter__(self):
        return iter(self.targets)

    def target(self, index):
        """The :class:`ExecutionTarget` at an action index."""
        return self.targets[index]

    def index_of(self, target):
        """The action index of a target (by key)."""
        try:
            return self._index[target.key]
        except KeyError:
            raise UnknownKeyError(f"{target.key} not in this action space") from None

    def __contains__(self, target):
        return getattr(target, "key", None) in self._index
