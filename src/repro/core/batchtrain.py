"""Batched training engine: fast Algorithm-1 rollouts, bit-exact.

The scalar training loop (:meth:`repro.core.engine.AutoScale.run`) pays
for a full nominal-cost evaluation — a per-layer latency walk plus link
arithmetic — on **every** inference, even though the nominal components
only depend on the (network, target, observation) triple and the paper's
protocol revisits the same few triples tens of thousands of times.

:class:`BatchTrainer` drives the same Algorithm-1 cycles through the
environment's cached execution path
(:meth:`~repro.env.environment.EdgeCloudEnvironment.execute_cached`):
nominal components come from exact value-keyed caches, measurement
jitters are drawn through the documented per-request draw-order contract
(see ``EdgeCloudEnvironment.execute_batch``), and static Table-IV
scenarios (constant co-runner, constant signals) skip the per-step
observation re-sampling entirely — legal because a static scenario draws
nothing from the RNG and returns the same values every time.

**Parity contract.**  For the same seeds, a :class:`BatchTrainer` episode
is *bit-identical* to the scalar engine loop it replaces: the same
engine-RNG draws in the same order (one uniform per step, one integer
draw only when exploring), the same environment-RNG draws (observation
sampling only in dynamic scenarios, jitters in scalar order), the same
float arithmetic for results, rewards, and Q-updates.  Q-table values,
visit counts, convergence bookkeeping, history records, and the virtual
clock all end up bitwise equal.  ``tests/core/test_batchtrain.py`` pins
this.

**When the scalar path is still used.**  The trainer falls back to the
scalar :meth:`AutoScale.step` loop whenever batching could change RNG
semantics: a frozen (non-training) engine, or an active fault plan
(fault sampling interleaves data-dependent draws).
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.analysis.contracts import contracts_enabled
from repro.common import ConfigError
from repro.core.engine import AutoScaleStep
from repro.core.reward import compute_reward
from repro.env.result import ExecutionResult
from repro.env.target import Location
from repro.hardware.processor import ProcessorKind

__all__ = ["BatchTrainer"]


class BatchTrainer:
    """Fast-path driver for Algorithm-1 training episodes.

    Wraps an :class:`~repro.core.engine.AutoScale` engine and runs its
    training episodes through the environment's cached execution path.
    All mutable learning state (Q-table, visit counts, convergence
    detector, overhead stats, history) lives on the wrapped engine; the
    trainer holds no state of its own, so scalar and batched stepping
    can be freely interleaved.
    """

    def __init__(self, engine):
        self.engine = engine
        # Lazily-built per-action caches (stable for the engine's
        # lifetime: the action space and device topology are frozen).
        self._completers = {}
        self._accuracy_rows = {}

    @property
    def environment(self):
        return self.engine.environment

    # ------------------------------------------------------------------
    # Fast-path eligibility
    # ------------------------------------------------------------------

    def _static_scenario(self):
        """True when the scenario draws nothing and never changes.

        Delegates to
        :attr:`~repro.env.environment.EdgeCloudEnvironment.scenario_is_static`
        — the shared eligibility check the vectorized serving drain uses
        too.
        """
        return self.engine.environment.scenario_is_static

    def _fast_path_available(self):
        engine = self.engine
        return engine.training and not engine.environment.faults_active

    # ------------------------------------------------------------------
    # Episodes
    # ------------------------------------------------------------------

    def run(self, use_case, num_inferences):
        """``AutoScale.run``, batched.  Returns the episode's steps."""
        if num_inferences < 1:
            raise ConfigError("num_inferences must be >= 1")
        if not self._fast_path_available():
            return self.engine.run(use_case, num_inferences)
        return self._train(use_case, num_inferences,
                           stop_on_convergence=False)

    def adapt(self, use_case, max_runs, stop_on_convergence=True):
        """The ``runner.adapt_engine`` loop, batched.

        Unfreezes the engine, resets the convergence detector, then runs
        up to ``max_runs`` cycles, stopping early on convergence (unless
        disabled).  Returns ``convergence.converged_at``.
        """
        if max_runs < 1:
            raise ConfigError("max_runs must be >= 1")
        engine = self.engine
        engine.unfreeze()
        engine.convergence.reset()
        if not self._fast_path_available():
            for _ in range(max_runs):
                engine.step(use_case)
                if stop_on_convergence and engine.converged:
                    break
        else:
            self._train(use_case, max_runs,
                        stop_on_convergence=stop_on_convergence)
        return engine.convergence.converged_at

    # ------------------------------------------------------------------
    # The hot loop
    # ------------------------------------------------------------------

    def _local_completer(self, target):
        """A closure finishing one local execution from two jitters.

        Precomputes every latency-independent coefficient of equations
        (1)-(4) for this action; the per-step work is then the exact
        float expression chain of :func:`finish_local_execution` — same
        values, same IEEE operation order, bit-identical results.
        """
        engine = self.engine
        env = engine.environment
        device = env.device
        proc = device.soc.processor(target.role)
        vf_index = target.vf_index
        kind = proc.kind
        if kind is ProcessorKind.CPU:
            # cpu_energy_mj's busy power with full-cluster utilization.
            core_fraction = proc.num_cores / proc.num_cores
            busy_power_mw = proc.idle_power_mw + (
                proc.busy_power_at(vf_index) - proc.idle_power_mw
            ) * core_fraction
        elif kind is ProcessorKind.GPU:
            busy_power_mw = proc.busy_power_at(vf_index)
        else:
            busy_power_mw = proc.busy_power_mw
        platform_mw = device.soc.platform_idle_mw
        host_idle_mw = (device.soc.cpu.idle_power_mw
                        if target.role != "cpu" else None)
        target_key = target.key
        dispatch_ms = proc.dispatch_ms
        precision = target.precision
        interference_slowdown = env.interference.slowdown
        terms_for = env.cost_engine._terms_for

        # (network name, observation) -> (nominal_ms, slowdown) memo for
        # the repeat-heavy static case; observation identity is enough
        # because the static fast path reuses one Observation object.
        memo = [None, None, 0.0, 0.0]
        # The layer-term column is load-independent: cache it per
        # network so a memo miss only recomputes the slowdown product.
        vf_terms_cache = {}

        def complete(network, observation, accuracy_pct, jitters):
            lat_jitter, pwr_jitter = jitters
            if memo[0] is observation and memo[1] == network.name:
                nominal_ms = memo[2]
                slowdown = memo[3]
            else:
                # ``CostEngine.local_nominal``'s miss arithmetic, inline
                # (the layer-term table keeps the scalar walk's exact
                # accumulation order; see ``_terms_for``).  Observations
                # expose the same ``cpu_util``/``mem_util`` fields the
                # co-runner load carries.
                slowdown = interference_slowdown(kind, observation)
                vf_terms = vf_terms_cache.get(network.name)
                if vf_terms is None:
                    vf_terms = terms_for("local", proc, network,
                                         precision)[:, vf_index]
                    vf_terms_cache[network.name] = vf_terms
                nominal_ms = sum(
                    (vf_terms * slowdown + dispatch_ms).tolist()
                )
                memo[0] = observation
                memo[1] = network.name
                memo[2] = nominal_ms
                memo[3] = slowdown
            latency_ms = nominal_ms * lat_jitter
            busy_mj = busy_power_mw * latency_ms / 1000.0
            overhead_mj = platform_mw * latency_ms / 1000.0
            if host_idle_mw is not None:
                overhead_mj = (overhead_mj
                               + host_idle_mw * latency_ms / 1000.0)
            factor = (1.0 + 0.10 * observation.mem_util
                      + 0.05 * observation.cpu_util)
            return ExecutionResult(
                latency_ms=latency_ms,
                energy_mj=busy_mj * factor * pwr_jitter + overhead_mj,
                estimated_energy_mj=busy_mj + overhead_mj,
                accuracy_pct=accuracy_pct,
                target_key=target_key,
                detail={
                    "compute_ms": latency_ms,
                    "slowdown": slowdown,
                    "busy_mj": busy_mj,
                },
            )

        return complete

    def _remote_completer(self, target):
        """A closure finishing one remote execution from five jitters.

        Precomputes the link's constant power and tail terms; the
        per-step work is the exact float expression chain of
        :func:`finish_remote_execution` plus eq. (4)'s
        ``transmission_energy_mj`` — same values, same IEEE operation
        order, bit-identical results.  The jitter 5-tuple is the scalar
        draw order ``(server, tx, rx, rtt, power)``.
        """
        env = self.engine.environment
        device = env.device
        _, link = env._remote_setup(target)
        is_cloud = target.location is Location.CLOUD
        platform_mw = device.soc.platform_idle_mw
        host_idle_mw = device.soc.cpu.idle_power_mw
        rx_power_mw = link.rx_power_mw
        radio_idle_mw = link.idle_power_mw
        tail_mj = link.tail_energy_mj()
        tx_mw_for = link.tx_power_mw
        target_key = target.key
        remote_nominal = env.cost_engine.remote_nominal_ms
        link_nominal = env.cost_engine.link_nominal

        # Observation-identity memo (see ``_local_completer``) covering
        # the rssi- and load-dependent nominal components.
        memo = [None, None, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]
        remote_ms_cache = {}

        def complete(network, observation, accuracy_pct, jitters):
            if memo[0] is observation and memo[1] == network.name:
                remote_nominal_ms = memo[2]
                tx_base_ms = memo[3]
                rx_base_ms = memo[4]
                rtt_base_ms = memo[5]
                tx_slow = memo[6]
                tx_power_mw = memo[7]
            else:
                rssi_dbm = (observation.rssi_wlan_dbm if is_cloud
                            else observation.rssi_p2p_dbm)
                # Server compute is load- and rssi-independent: one
                # lookup per network, not per observation change.
                remote_nominal_ms = remote_ms_cache.get(network.name)
                if remote_nominal_ms is None:
                    remote_nominal_ms = remote_nominal(network, target)
                    remote_ms_cache[network.name] = remote_nominal_ms
                tx_base_ms, rx_base_ms, rtt_base_ms = link_nominal(
                    network, target, rssi_dbm
                )
                # InterferenceModel.transmission_slowdown, verbatim.
                tx_slow = (1.0 + 0.25 * observation.cpu_util
                           + 0.15 * observation.mem_util)
                tx_power_mw = tx_mw_for(rssi_dbm)
                memo[0] = observation
                memo[1] = network.name
                memo[2] = remote_nominal_ms
                memo[3] = tx_base_ms
                memo[4] = rx_base_ms
                memo[5] = rtt_base_ms
                memo[6] = tx_slow
                memo[7] = tx_power_mw
            (server_jitter, tx_jitter, rx_jitter, rtt_jitter,
             pwr_jitter) = jitters
            remote_ms = remote_nominal_ms * server_jitter
            tx_ms = tx_base_ms * tx_slow * tx_jitter
            rx_ms = rx_base_ms * tx_slow * rx_jitter
            rtt_ms = rtt_base_ms * rtt_jitter
            latency_ms = tx_ms + rtt_ms + remote_ms + rx_ms
            wait_ms = latency_ms - tx_ms - rx_ms
            if wait_ms < -1e-9:
                raise ConfigError(
                    f"total latency {latency_ms} ms shorter than transfer "
                    f"time {tx_ms + rx_ms:.3f} ms"
                )
            wait_ms = max(0.0, wait_ms)
            # TransmissionBreakdown.radio_energy_mj's addition order.
            radio_mj = (tx_power_mw * tx_ms / 1000.0
                        + rx_power_mw * rx_ms / 1000.0
                        + radio_idle_mw * wait_ms / 1000.0
                        + tail_mj)
            overhead_mj = (platform_mw * latency_ms / 1000.0
                           + host_idle_mw * latency_ms / 1000.0)
            return ExecutionResult(
                latency_ms=latency_ms,
                energy_mj=radio_mj * pwr_jitter + overhead_mj,
                estimated_energy_mj=radio_mj + overhead_mj,
                accuracy_pct=accuracy_pct,
                target_key=target_key,
                detail={
                    "tx_ms": tx_ms,
                    "rx_ms": rx_ms,
                    "rtt_ms": rtt_ms,
                    "remote_ms": remote_ms,
                    "radio_mj": radio_mj,
                },
            )

        return complete

    def _train(self, use_case, num_inferences, stop_on_convergence):
        """Bit-exact replica of ``num_inferences`` scalar training steps.

        Draw order per step (both RNG streams), matching
        ``AutoScale.step``:

        * env stream — observation sample (dynamic scenarios only),
          execution jitters (scalar order, see ``execute_batch``),
          successor-observation sample (dynamic only);
        * engine stream — one uniform for the epsilon test, plus one
          integer draw only when exploring.

        Runtime contracts (``REPRO_CONTRACTS``/pytest) are snapshotted
        once per episode: with contracts *on*, every step goes through
        the fully-instrumented ``execute_cached``/``QTable.update`` call
        chain so each contract still fires; with contracts *off* (the
        production configuration the Section VI-C overhead numbers are
        about), local executions and Q-updates run through inlined
        replicas of the same float expressions.  Both produce
        bit-identical values.
        """
        engine = self.engine
        env = engine.environment
        network = use_case.network
        qtable = engine.qtable
        values = qtable.values
        visits = qtable.visits
        config = qtable.config
        gamma = config.learning_rate
        mu = config.discount
        epsilon = engine.config.epsilon
        action_space = engine.action_space
        n_actions = len(action_space)
        targets = action_space.targets
        target_keys = [target.key for target in targets]
        reward_config = engine.reward_config
        alpha = reward_config.alpha
        beta = reward_config.beta
        normalize = reward_config.normalize
        energy_ref_mj = reward_config.energy_ref_mj
        accuracy_target = use_case.accuracy_target
        qos_ms = use_case.qos_ms
        convergence = engine.convergence
        converge_observe = convergence.observe
        overhead = engine.overhead
        select_append = overhead.select_us.append
        update_append = overhead.update_us.append
        history_append = engine.history.append
        engine_random = engine.rng.random
        engine_integers = engine.rng.integers
        env_std_normal = env.rng.standard_normal
        observe = env.observe
        encode = engine.state_space.encode
        clock_advance = env.clock.advance
        think_time_ms = env.think_time_ms
        exp = math.exp
        perf_counter = time.perf_counter

        faithful = contracts_enabled()
        execute_cached = env.execute_cached
        noise = env.noise
        accuracy_by_action = self._accuracy_rows.get(network.name)
        if accuracy_by_action is None:
            accuracy_by_action = [
                env.accuracy.lookup(network.name, target.precision)
                for target in targets
            ]
            self._accuracy_rows[network.name] = accuracy_by_action
        # Per-action jitter slots: the scalar draw order with zero-sigma
        # slots pre-resolved to "no draw" (None), exactly as ``_jitter``
        # skips them.
        local_slots = tuple(
            sigma if sigma > 0.0 else None
            for sigma in (noise.latency_sigma, noise.power_sigma)
        )
        remote_slots = tuple(
            sigma if sigma > 0.0 else None
            for sigma in (noise.server_sigma, noise.network_sigma,
                          noise.network_sigma, noise.network_sigma,
                          noise.power_sigma)
        )
        slots_by_action = [remote_slots if target.is_remote else local_slots
                          for target in targets]
        completers = self._completers

        static = self._static_scenario()
        if static:
            observation = observe()
            state = encode(network, observation)

        steps = []
        for _ in range(num_inferences):
            if not static:
                observation = observe()
                state = encode(network, observation)
            started = perf_counter()
            if engine_random() < epsilon:
                action = int(engine_integers(n_actions))
                explored = True
            else:
                # np.argmax dispatches here anyway; call it directly.
                action = int(values[state].argmax())
                explored = False
            select_append((perf_counter() - started) * 1e6)
            target = targets[action]

            if faithful:
                result = execute_cached(network, target, observation)
            else:
                completer = completers.get(action)
                if completer is None:
                    completer = (self._remote_completer(target)
                                 if target.is_remote
                                 else self._local_completer(target))
                    completers[action] = completer
                # sigma * standard_normal() is bit-identical to
                # normal(0.0, sigma) (same ziggurat draw, same C
                # double scaling) and skips the loc/scale parsing.
                jitters = [
                    exp(sigma * env_std_normal())
                    if sigma is not None else 1.0
                    for sigma in slots_by_action[action]
                ]
                result = completer(network, observation,
                                   accuracy_by_action[action], jitters)
                clock_advance(result.latency_ms + think_time_ms)

            started = perf_counter()
            if faithful:
                reward = compute_reward(result, use_case, reward_config)
            else:
                # Equation (5) (``compute_reward``) inline, normalized
                # branch, non-failed results only — the fast path never
                # sees injected faults.  Same expressions, same order.
                accuracy = result.accuracy_pct
                if accuracy_target is not None \
                        and accuracy < accuracy_target:
                    reward = (-50.0 + (accuracy - 100.0) / 100.0
                              if normalize else accuracy - 100.0)
                else:
                    latency_ms = result.latency_ms
                    if normalize:
                        cost_term = (result.estimated_energy_mj
                                     / energy_ref_mj)
                        time_term = latency_ms / energy_ref_mj
                    else:
                        cost_term = result.estimated_energy_mj / 1000.0
                        time_term = latency_ms / 1000.0
                    reward = -cost_term + beta * (accuracy / 100.0)
                    if latency_ms <= qos_ms:
                        reward += alpha * time_term
            if static:
                # The scalar loop re-observes here; a static scenario
                # returns the same values without drawing, so reuse.
                next_state = state
            else:
                next_state = encode(network, observe())
            if faithful:
                q_delta = qtable.update(state, action, reward, next_state)
            else:
                # QTable.update's expression chain, verbatim (np.max
                # dispatches to ndarray.max; same bits, less overhead).
                target_q = reward + mu * float(values[next_state].max())
                delta = gamma * (target_q - values[state, action])
                values[state, action] += delta
                visits[state, action] += 1
                qtable.update_count += 1
                q_delta = float(delta)
            if not explored:
                converge_observe(reward, executed_action=action)
            update_append((perf_counter() - started) * 1e6)
            record = AutoScaleStep(
                state=state, action=action, target_key=target_keys[action],
                reward=reward, result=result, explored=explored,
                q_delta=q_delta,
            )
            history_append(record)
            steps.append(record)
            if stop_on_convergence and convergence.converged:
                break
        return steps
