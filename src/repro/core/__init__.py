"""AutoScale core: state/action/reward, Q-learning, engine, transfer."""

from repro.core.action import ActionSpace
from repro.core.alternatives import (LinearQFunction, MlpQNetwork,
                                     SarsaTable)
from repro.core.convergence import ConvergenceDetector, episodes_to_converge
from repro.core.discretize import cluster_edges, dbscan, derive_feature_edges
from repro.core.engine import AutoScale, AutoScaleStep, OverheadStats
from repro.core.persistence import load_engine, save_engine
from repro.core.qlearning import QLearningConfig, QTable, epsilon_greedy
from repro.core.service import AutoScaleService
from repro.core.reward import RewardConfig, compute_reward
from repro.core.state import StateFeature, StateSpace, table_i_state_space
from repro.core.transfer import map_actions, transfer_q_table

__all__ = [
    "ActionSpace",
    "LinearQFunction",
    "MlpQNetwork",
    "SarsaTable",
    "load_engine",
    "save_engine",
    "ConvergenceDetector",
    "episodes_to_converge",
    "cluster_edges",
    "dbscan",
    "derive_feature_edges",
    "AutoScale",
    "AutoScaleService",
    "AutoScaleStep",
    "OverheadStats",
    "QLearningConfig",
    "QTable",
    "epsilon_greedy",
    "RewardConfig",
    "compute_reward",
    "StateFeature",
    "StateSpace",
    "table_i_state_space",
    "map_actions",
    "transfer_q_table",
]
