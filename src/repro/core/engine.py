"""The AutoScale execution-scaling engine (Fig. 8 / Algorithm 1).

For each inference the engine (1) identifies the current execution state —
NN characteristics plus runtime variance; (2) selects an action (execution
target) from its Q-table via epsilon-greedy; (3) executes the inference on
that target; (4) computes the reward from the measured latency, the
estimated energy, and the stored accuracy; and (5) updates the Q-table.

The engine instruments its own decision/update path with wall-clock
timers, which is what the Section VI-C overhead analysis measures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.common import ConfigError, make_rng
from repro.core.action import ActionSpace
from repro.core.convergence import ConvergenceDetector
from repro.core.qlearning import QLearningConfig, QTable, epsilon_greedy
from repro.core.reward import RewardConfig, compute_reward
from repro.core.state import table_i_state_space

__all__ = ["AutoScaleStep", "BoundedHistory", "OverheadStats",
           "StreamingSeries", "AutoScale"]


@dataclass(frozen=True)
class AutoScaleStep:
    """Everything produced by one observe-select-execute-update cycle.

    ``q_delta`` is the signed Q-table increment the update applied
    (``0.0`` with training frozen) — the raw temporal-difference signal
    the policy guard's surge detector consumes.
    """

    state: int
    action: int
    target_key: str
    reward: float
    result: object
    explored: bool
    q_delta: float = 0.0


class StreamingSeries:
    """A per-step timing series with O(1) memory.

    Long training campaigns (paper scale: 100 runs x 8 networks x 9
    scenarios, multiplied across devices) used to retain every per-step
    timing float forever.  This accumulator keeps the exact count and
    sum — so means stay exact — plus a bounded sample for percentiles,
    thinned *deterministically*: when the sample buffer fills, every
    other element is dropped and the keep-stride doubles.  No RNG is
    involved, so instrumented and non-instrumented runs consume
    identical random streams.
    """

    __slots__ = ("count", "total", "_capacity", "_stride", "_sample",
                 "_until_keep")

    def __init__(self, capacity=4096):
        if capacity < 2:
            raise ConfigError(
                f"sample capacity must be >= 2, got {capacity}"
            )
        self._capacity = capacity
        self.clear()

    def append(self, value):
        # Hot path: called once or twice per Algorithm-1 step.  A
        # countdown to the next retained sample keeps the common case
        # to three attribute updates and one branch.
        self.count += 1
        self.total += value
        self._until_keep -= 1
        if self._until_keep <= 0:
            if len(self._sample) >= self._capacity:
                self._sample = self._sample[::2]
                self._stride *= 2
            self._sample.append(value)
            self._until_keep = self._stride

    def clear(self):
        self.count = 0
        self.total = 0.0
        self._stride = 1
        self._sample = []
        self._until_keep = 1

    def mean(self):
        return self.total / self.count if self.count else 0.0

    def percentile(self, q):
        """Approximate percentile from the thinned sample (exact until
        ``count`` exceeds the sample capacity)."""
        if not self._sample:
            return 0.0
        return float(np.percentile(self._sample, q))

    @property
    def sample(self):
        """The retained (deterministically thinned) sample values."""
        return list(self._sample)

    def __len__(self):
        return self.count

    def __bool__(self):
        return self.count > 0

    def __iter__(self):
        return iter(self._sample)


@dataclass
class OverheadStats:
    """Accumulated engine overhead (Section VI-C).

    ``select_us`` covers state lookup + action choice (the inference-time
    overhead of a trained table); ``update_us`` additionally covers reward
    calculation and the Q update (the training-time overhead).  Both are
    :class:`StreamingSeries` — exact count/mean, bounded memory.
    """

    select_us: StreamingSeries = field(default_factory=StreamingSeries)
    update_us: StreamingSeries = field(default_factory=StreamingSeries)

    def mean_select_us(self):
        return self.select_us.mean()

    def mean_update_us(self):
        return self.update_us.mean()

    def mean_train_us(self):
        """Full training-path overhead per inference (select + update)."""
        return self.mean_select_us() + self.mean_update_us()


class BoundedHistory(list):
    """A step log with a hard cap on retained entries.

    Every Algorithm-1 cycle appends an :class:`AutoScaleStep` (which
    holds the full :class:`ExecutionResult`, detail dict included), so
    unbounded retention dominated memory on paper-scale campaigns.  When
    the cap is hit the *oldest quarter* is spliced out in one move —
    amortized O(1) per append — and counted in ``dropped``.  Recent-
    window consumers (slicing, ``history[-1]``, reward traces) keep the
    plain-``list`` interface; monotonic consumers should read ``total``.
    """

    #: Default retention: ~100k steps, comfortably above any single
    #: protocol in the repo (paper scale trains 900 episodes per case).
    DEFAULT_MAXLEN = 100_000

    def __init__(self, maxlen=DEFAULT_MAXLEN):
        super().__init__()
        if maxlen < 4:
            raise ConfigError(f"history cap must be >= 4, got {maxlen}")
        self.maxlen = maxlen
        self.dropped = 0

    def append(self, item):
        if len(self) >= self.maxlen:
            cut = self.maxlen // 4
            del self[:cut]
            self.dropped += cut
        super().append(item)

    @property
    def total(self):
        """Monotonic count of every step ever appended."""
        return len(self) + self.dropped


class AutoScale:
    """The adaptive execution-scaling engine.

    Args:
        environment: an :class:`~repro.env.EdgeCloudEnvironment`.
        state_space: defaults to the Table-I space (3,072 states).
        action_space: defaults to the environment's full augmented space.
        config: Q-learning hyperparameters (paper defaults).
        reward: reward weights/normalization.
        seed: RNG seed for exploration and Q-table initialization.
    """

    def __init__(self, environment, state_space=None, action_space=None,
                 config=None, reward=None, seed=None):
        self.environment = environment
        self.state_space = state_space or table_i_state_space()
        self.action_space = action_space or \
            ActionSpace.from_environment(environment)
        self.config = config or QLearningConfig()
        self.reward_config = reward or RewardConfig()
        self.rng = make_rng(seed)
        self.qtable = QTable(
            self.state_space.size, len(self.action_space),
            config=self.config, seed=self.rng,
        )
        self.overhead = OverheadStats()
        self.convergence = ConvergenceDetector()
        self.training = True
        self.history = BoundedHistory()

    # ------------------------------------------------------------------
    # Mode control
    # ------------------------------------------------------------------

    def freeze(self):
        """Stop exploring and learning; use the trained table greedily."""
        self.training = False

    def unfreeze(self):
        self.training = True

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------

    def observe_state(self, network, observation):
        """Step 1: encode (NN characteristics, runtime variance)."""
        return self.state_space.encode(network, observation)

    def select_action(self, state, explore=None, allowed=None):
        """Step 2: epsilon-greedy over the Q-table.

        ``allowed`` — an optional boolean mask over the action space
        (the resilient service passes one derived from its circuit
        breakers) — restricts every branch to the True entries, so a
        broken remote target is not even exploration-eligible.  A mask
        with no True entry is treated as no mask.

        Returns ``(action_index, explored)``.
        """
        if explore is None:
            explore = self.training
        if allowed is not None and not np.any(allowed):
            allowed = None
        started = time.perf_counter()
        if explore and self.rng.random() < self.config.epsilon:
            if allowed is None:
                action = int(self.rng.integers(len(self.action_space)))
            else:
                candidates = np.flatnonzero(allowed)
                action = int(candidates[
                    self.rng.integers(len(candidates))
                ])
            explored = True
        elif explore:
            # Training-time exploitation: plain argmax, so untried
            # actions' optimistic init values drive directed exploration.
            action = self.qtable.best_action(state, allowed)
            explored = False
        else:
            # Trained-table usage: only actions with at least one real
            # reward are eligible (Section IV-B's "after the learning is
            # complete, the Q-table is used to select A").  States never
            # visited during training fall back to the nearest trained
            # sibling state of the same network (see _sibling_fallback).
            if self.qtable.visits[state].any():
                action = self.qtable.best_visited_action(state, allowed)
            else:
                action = self._sibling_fallback(state, allowed)
            explored = False
        self.overhead.select_us.append(
            (time.perf_counter() - started) * 1e6
        )
        return action, explored

    def select_action_batch(self, states, allowed=None, explore=None):
        """Step 2 for a whole drain batch of heterogeneous states.

        The structure-of-arrays serving plane: value rows for every state
        are gathered once and a single masked ``argmax`` pass decides the
        batch (:meth:`QTable.select_actions`).  Epsilon draws are
        vectorized **in the pinned scalar order** — one uniform per
        element, drawn from the engine's seeded RNG in one call — with an
        optimistic rollback: if any element would explore, the
        bit-generator state is rewound and the batch replays the scalar
        per-element interleave (uniform, then the exploration integer),
        so the RNG stream and every ``(action, explored)`` pair are
        *bit-identical* to calling :meth:`select_action` element-wise.

        Args:
            states: integer state indices, one per request group.
            allowed: ``None``, one shared ``(num_actions,)`` mask, or a
                per-element ``(n, num_actions)`` matrix.  Rows with no
                True entry follow :meth:`select_action`'s no-mask
                convention.
            explore: defaults to ``self.training``, as in
                :meth:`select_action`.

        Returns:
            A list of ``(action_index, explored)`` pairs.
        """
        state_vector = np.asarray(list(states), dtype=np.intp)
        count = len(state_vector)
        if count == 0:
            return []
        if explore is None:
            explore = self.training
        allowed_rows, effective = self._normalize_masks(allowed, count)
        started = time.perf_counter()
        if explore:
            snapshot = self.rng.bit_generator.state
            uniforms = self.rng.random(count)
            if bool((uniforms < self.config.epsilon).any()):
                # Someone explores: rewind the stream and replay the
                # scalar interleave so the exploration integers land at
                # exactly the positions the scalar path would use.
                self.rng.bit_generator.state = snapshot
                return [
                    self.select_action(int(state),
                                       allowed=allowed_rows[index])
                    for index, state in enumerate(state_vector)
                ]
            # All-exploit: plain argmax row by row, one NumPy pass (the
            # training-time exploitation rule of select_action).
            actions = self.qtable.select_actions(state_vector,
                                                 allowed=effective)
            decisions = [(int(action), False) for action in actions]
        else:
            decisions = self._select_frozen_batch(state_vector,
                                                  allowed_rows, effective)
        elapsed_us = (time.perf_counter() - started) * 1e6 / count
        for _ in range(count):
            self.overhead.select_us.append(elapsed_us)
        return decisions

    def _normalize_masks(self, allowed, count):
        """Split a batch mask into per-row masks + a broadcastable matrix.

        Returns ``(allowed_rows, effective)`` where ``allowed_rows[i]``
        is the mask :meth:`select_action` would see for element ``i``
        (``None`` when absent or empty, matching its convention) and
        ``effective`` is ``None`` or an ``(n, num_actions)`` boolean
        matrix whose empty rows are widened to all-True for the
        vectorized passes.
        """
        if allowed is None:
            return [None] * count, None
        mask = np.asarray(allowed, dtype=bool)
        num_actions = len(self.action_space)
        if mask.shape == (num_actions,):
            if not mask.any():
                return [None] * count, None
            return ([mask] * count,
                    np.broadcast_to(mask, (count, num_actions)))
        if mask.shape != (count, num_actions):
            raise ConfigError(
                f"mask of shape {mask.shape} for {count} states over "
                f"{num_actions} actions"
            )
        rows = [row if row.any() else None for row in mask]
        if all(row is not None for row in rows):
            return rows, mask
        effective = mask.copy()
        effective[~mask.any(axis=1)] = True
        return rows, effective

    def _select_frozen_batch(self, state_vector, allowed_rows, effective):
        """Trained-table selection for a batch (no RNG involved).

        The common case — every state visited, selection restricted to
        actions with at least one real reward — is one vectorized masked
        argmax; rows needing the scalar path's fallbacks (never-visited
        states borrowing from a trained sibling, visited states whose
        mask excludes every visited action) are fixed up per row with
        the exact scalar rules.
        """
        qtable = self.qtable
        visited = qtable.visits[state_vector] > 0
        eligible = (visited if effective is None
                    else visited & effective)
        rows = qtable.values[state_vector]
        masked = np.where(eligible, rows, -np.inf)
        actions = masked.argmax(axis=1)
        decisions = [(int(action), False) for action in actions]
        for index in np.flatnonzero(~eligible.any(axis=1)):
            state = int(state_vector[index])
            allowed = allowed_rows[index]
            if visited[index].any():
                # Visited state, but the mask excludes every visited
                # action: best_visited_action's documented fallback.
                action = qtable.best_action(state, allowed)
            else:
                action = self._sibling_fallback(state, allowed)
            decisions[index] = (int(action), False)
        return decisions

    def _variance_block_size(self):
        """States per network: the product of the trailing runtime-
        variance features' bin counts.

        Table I orders features network-first, so states of the same
        network occupy one contiguous block of this size.  Returns 0 when
        the layout does not follow that convention (custom spaces), which
        disables the sibling fallback.
        """
        features = getattr(self.state_space, "features", ())
        size = 1
        seen_variance = False
        for feature in features:
            is_variance = feature.name.startswith(("s_co_", "s_rssi"))
            if is_variance:
                seen_variance = True
                size *= feature.num_bins
            elif seen_variance:
                return 0  # NN feature after a variance feature
        return size if seen_variance else 0

    def _sibling_fallback(self, state, allowed=None):
        """Greedy action for an unvisited state.

        A deployed table can meet a runtime-variance combination it was
        never trained under (e.g. a co-runner burst level unseen during
        training).  The network's identity dominates the decision, so we
        borrow the best visited action from the *nearest trained state of
        the same network* — the sibling whose variance-bin vector is
        closest in L1 distance.  With no trained sibling at all, fall
        back to the plain argmax (random-init exploration behaviour).
        """
        block = self._variance_block_size()
        if block <= 0:
            return self.qtable.best_action(state, allowed)
        base = (state // block) * block
        offset = state - base
        best_action, best_distance = None, None
        for sibling_offset in range(block):
            sibling = base + sibling_offset
            if not self.qtable.visits[sibling].any():
                continue
            distance = self._bin_distance(offset, sibling_offset)
            if best_distance is None or distance < best_distance:
                best_distance = distance
                best_action = self.qtable.best_visited_action(
                    sibling, allowed)
        if best_action is None:
            return self.qtable.best_action(state, allowed)
        return best_action

    def _bin_distance(self, offset_a, offset_b):
        """L1 distance between two variance-bin vectors (by offset)."""
        radices = [
            feature.num_bins
            for feature in getattr(self.state_space, "features", ())
            if feature.name.startswith(("s_co_", "s_rssi"))
        ]
        distance = 0
        for radix in reversed(radices):
            distance += abs(offset_a % radix - offset_b % radix)
            offset_a //= radix
            offset_b //= radix
        return distance

    def step(self, use_case, observation=None, allowed_actions=None,
             deadline_ms=None):
        """One full Algorithm-1 cycle for an inference request.

        Observes the state, selects and executes an action, computes the
        reward, observes the successor state, and (in training mode)
        updates the Q-table.  Returns an :class:`AutoScaleStep`.

        ``allowed_actions`` (boolean mask) and ``deadline_ms`` are the
        resilient serving hooks: the mask keeps circuit-broken targets
        out of selection, the deadline aborts remote attempts that would
        overrun it (the aborted attempt still bills its energy and feeds
        the Q update, so the table learns the target is flaky).
        """
        env = self.environment
        if observation is None:
            observation = env.observe()
        state = self.observe_state(use_case.network, observation)
        action, explored = self.select_action(state,
                                              allowed=allowed_actions)
        return self._complete_step(use_case, state, action, explored,
                                   observation, deadline_ms)

    def step_with_action(self, use_case, action, observation,
                         explored=False, deadline_ms=None, cached=False,
                         state=None):
        """Algorithm 1 with the selection already made.

        The batched serving drain selects once per ``(network, state)``
        group (one Q-table row read) and then completes each coalesced
        request through this entry point: execute, reward, successor
        observation, and Q update all still happen *per request*, so the
        learning dynamics are identical to :meth:`step` — only the
        redundant selections are elided.

        ``cached=True`` routes the execution through
        :meth:`~repro.env.environment.EdgeCloudEnvironment.execute_cached`
        (bit-identical cached-nominal fast path); it is incompatible
        with ``deadline_ms``, which only the uncached executor honours.

        ``state``, when given, must be the caller's already-computed
        ``observe_state(use_case.network, observation)`` — encoding is
        deterministic, so passing it skips a redundant layer walk
        without changing any observable.  The vectorized drain encodes
        once per network and feeds that here for every coalesced
        request.
        """
        if not 0 <= action < len(self.action_space):
            raise ConfigError(
                f"action {action} outside the "
                f"{len(self.action_space)}-action space"
            )
        if cached and deadline_ms is not None:
            raise ConfigError(
                "cached execution does not support deadline_ms"
            )
        if state is None:
            state = self.observe_state(use_case.network, observation)
        return self._complete_step(use_case, state, action, explored,
                                   observation, deadline_ms, cached=cached)

    def _complete_step(self, use_case, state, action, explored,
                       observation, deadline_ms, cached=False):
        """Execute + reward + successor-observe + update for one request."""
        env = self.environment
        network = use_case.network
        target = self.action_space.target(action)

        if cached and deadline_ms is None:
            result = env.execute_cached(network, target, observation)
        else:
            result = env.execute(network, target, observation,
                                 deadline_ms=deadline_ms)

        started = time.perf_counter()
        reward = compute_reward(result, use_case, self.reward_config)
        q_delta = 0.0
        if self.training:
            next_observation = env.observe()
            next_state = self.observe_state(network, next_observation)
            q_delta = self.qtable.update(state, action, reward, next_state)
            # Exploration steps are deliberate off-policy probes; feeding
            # their rewards to the detector would make the "converged"
            # reward stream look noisy forever.
            if not explored:
                self.convergence.observe(reward, executed_action=action)
        self.overhead.update_us.append(
            (time.perf_counter() - started) * 1e6
        )

        record = AutoScaleStep(
            state=state, action=action, target_key=target.key,
            reward=reward, result=result, explored=explored,
            q_delta=q_delta,
        )
        self.history.append(record)
        return record

    def run(self, use_case, num_inferences):
        """Run ``num_inferences`` Algorithm-1 cycles for one use case."""
        if num_inferences < 1:
            raise ConfigError("num_inferences must be >= 1")
        return [self.step(use_case) for _ in range(num_inferences)]

    # ------------------------------------------------------------------
    # Prediction (trained-table usage)
    # ------------------------------------------------------------------

    def predict(self, network, observation):
        """The greedy execution target for a (network, observation) pair."""
        state = self.observe_state(network, observation)
        action, _ = self.select_action(state, explore=False)
        return self.action_space.target(action)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def converged(self):
        return self.convergence.converged

    @property
    def total_steps(self):
        """Monotonic count of Algorithm-1 cycles ever run.

        Unlike ``len(engine.history)`` this survives the history cap —
        long-lived serving deployments report it as inferences served.
        """
        return self.history.total

    def memory_footprint_bytes(self):
        """Q-table resident size (Section VI-C reports ~0.4 MB)."""
        return self.qtable.memory_bytes

    def rewards(self):
        """The reward trace of every step taken so far."""
        return [step.reward for step in self.history]
