"""Alternative RL value-learners (Section IV's design-space discussion).

The paper picks tabular Q-learning "among the various RL approaches, such
as Q-learning, TD-learning, and deep RL", because a lookup table keeps the
per-decision latency overhead in the tens of microseconds.  To make that
trade-off measurable, this module implements the two alternatives in the
same interface as :class:`~repro.core.qlearning.QTable`:

- :class:`SarsaTable` — on-policy TD-learning (SARSA).  Identical memory
  and lookup cost to Q-learning; the update bootstraps from the action
  actually taken next rather than the greedy one, which reacts more
  conservatively under exploration.
- :class:`LinearQFunction` — Q(s, a) approximated as ``w_a . phi(s)``
  over the (one-hot per feature) state encoding: the smallest member of
  the "deep RL" family.  It generalizes across states (helpful for rare
  runtime-variance combinations) at the cost of a dot product per action
  per decision — the latency overhead the paper avoids.
- :class:`MlpQNetwork` — a small two-layer neural Q-network trained by
  semi-gradient backpropagation (numpy only): the proper "deep RL" point
  of the paper's comparison, with nonlinearity between the state features
  and the action values.

The ablation benchmark (``benchmarks/test_ablation_rl.py``) compares the
learners on decision quality and per-decision overhead.
"""

from __future__ import annotations

import numpy as np

from repro.common import ConfigError, make_rng
from repro.core.qlearning import QLearningConfig

__all__ = ["SarsaTable", "LinearQFunction", "MlpQNetwork"]


class SarsaTable:
    """On-policy TD(0) action-value table (SARSA).

    API-compatible with :class:`QTable` except that :meth:`update` takes
    the *next action actually selected* instead of assuming the greedy
    one.
    """

    def __init__(self, num_states, num_actions, config=QLearningConfig(),
                 seed=None):
        if num_states < 1 or num_actions < 1:
            raise ConfigError("table dimensions must be positive")
        self.config = config
        rng = make_rng(seed)
        self.values = rng.uniform(
            config.init_low, config.init_high,
            size=(num_states, num_actions),
        ).astype(config.dtype)
        self.visits = np.zeros((num_states, num_actions), dtype=np.uint32)
        self.update_count = 0

    @property
    def num_states(self):
        return self.values.shape[0]

    @property
    def num_actions(self):
        return self.values.shape[1]

    def best_action(self, state):
        return int(np.argmax(self.values[state]))

    def best_visited_action(self, state):
        visited = self.visits[state] > 0
        if not visited.any():
            return self.best_action(state)
        values = np.where(visited, self.values[state], -np.inf)
        return int(np.argmax(values))

    def update(self, state, action, reward, next_state, next_action):
        """SARSA update:

        Q(S,A) <- Q(S,A) + gamma [R + mu Q(S',A') - Q(S,A)]
        """
        gamma = self.config.learning_rate
        mu = self.config.discount
        target = reward + mu * float(self.values[next_state, next_action])
        delta = gamma * (target - self.values[state, action])
        self.values[state, action] += delta
        self.visits[state, action] += 1
        self.update_count += 1
        return float(delta)

    @property
    def memory_bytes(self):
        return self.values.nbytes


class LinearQFunction:
    """Q(s, a) = w_a . phi(s) with a one-hot-per-feature state encoding.

    ``phi`` concatenates a one-hot vector per state feature plus a bias,
    so knowledge generalizes across states that share feature values —
    e.g. everything learned under "weak Wi-Fi" transfers to any network's
    weak-Wi-Fi state.  Decisions cost a (num_actions x dim) matrix-vector
    product instead of a row lookup.
    """

    def __init__(self, state_space, num_actions,
                 config=QLearningConfig(), seed=None):
        if num_actions < 1:
            raise ConfigError("need at least one action")
        self.state_space = state_space
        self.config = config
        self._radices = [f.num_bins for f in state_space.features]
        self.dim = sum(self._radices) + 1
        rng = make_rng(seed)
        self.weights = rng.uniform(
            config.init_low, config.init_high,
            size=(num_actions, self.dim),
        ) / self.dim
        self.visits = np.zeros(num_actions, dtype=np.uint32)
        self.update_count = 0

    @property
    def num_actions(self):
        return self.weights.shape[0]

    def features_of(self, state):
        """Decode a flat state index into the one-hot feature vector."""
        phi = np.zeros(self.dim)
        offset = 0
        digits = []
        remaining = state
        for radix in reversed(self._radices):
            digits.append(remaining % radix)
            remaining //= radix
        for radix, digit in zip(self._radices, reversed(digits)):
            phi[offset + digit] = 1.0
            offset += radix
        phi[-1] = 1.0  # bias
        return phi

    def q_values(self, state):
        return self.weights @ self.features_of(state)

    def best_action(self, state):
        return int(np.argmax(self.q_values(state)))

    def best_visited_action(self, state):
        visited = self.visits > 0
        if not visited.any():
            return self.best_action(state)
        values = np.where(visited, self.q_values(state), -np.inf)
        return int(np.argmax(values))

    def update(self, state, action, reward, next_state):
        """Semi-gradient Q-learning update on the linear approximator."""
        phi = self.features_of(state)
        mu = self.config.discount
        # A smaller step than the tabular learning rate: each update
        # touches many weights, so the tabular 0.9 would oscillate.
        step = self.config.learning_rate / max(1.0, phi.sum())
        target = reward + mu * float(np.max(self.q_values(next_state)))
        delta = target - float(self.weights[action] @ phi)
        self.weights[action] += step * delta * phi
        self.visits[action] += 1
        self.update_count += 1
        return float(step * delta)

    @property
    def memory_bytes(self):
        return self.weights.nbytes


class MlpQNetwork:
    """A two-layer neural Q-network over the one-hot state features.

    ``Q(s, .) = W2 . relu(W1 . phi(s) + b1) + b2`` with all action values
    produced by one forward pass.  Trained by semi-gradient Q-learning:
    only the executed action's output receives the TD error.  This is the
    paper's "deep RL" point — it can represent nonlinear interactions the
    linear model cannot, at the cost of a forward pass per decision and a
    backward pass per update.
    """

    def __init__(self, state_space, num_actions,
                 config=QLearningConfig(), hidden=32, seed=None,
                 step_size=0.05):
        if num_actions < 1:
            raise ConfigError("need at least one action")
        if hidden < 1:
            raise ConfigError("need at least one hidden unit")
        if step_size <= 0:
            raise ConfigError("step size must be positive")
        self.state_space = state_space
        self.config = config
        self.step_size = step_size
        self._radices = [f.num_bins for f in state_space.features]
        self.input_dim = sum(self._radices) + 1
        rng = make_rng(seed)
        scale1 = (2.0 / self.input_dim) ** 0.5
        scale2 = (2.0 / hidden) ** 0.5
        self.w1 = rng.normal(0.0, scale1, size=(hidden, self.input_dim))
        self.b1 = np.zeros(hidden)
        self.w2 = rng.normal(0.0, scale2, size=(num_actions, hidden))
        # Bias the outputs slightly optimistic, like the tabular init.
        self.b2 = rng.uniform(config.init_low, config.init_high,
                              size=num_actions)
        self.visits = np.zeros(num_actions, dtype=np.uint32)
        self.update_count = 0

    @property
    def num_actions(self):
        return self.w2.shape[0]

    def features_of(self, state):
        """One-hot feature vector for a flat state index."""
        phi = np.zeros(self.input_dim)
        offset = 0
        digits = []
        remaining = state
        for radix in reversed(self._radices):
            digits.append(remaining % radix)
            remaining //= radix
        for radix, digit in zip(self._radices, reversed(digits)):
            phi[offset + digit] = 1.0
            offset += radix
        phi[-1] = 1.0
        return phi

    def _forward(self, phi):
        pre = self.w1 @ phi + self.b1
        hidden = np.maximum(pre, 0.0)
        return self.w2 @ hidden + self.b2, hidden, pre

    def q_values(self, state):
        values, _, _ = self._forward(self.features_of(state))
        return values

    def best_action(self, state):
        return int(np.argmax(self.q_values(state)))

    def best_visited_action(self, state):
        visited = self.visits > 0
        if not visited.any():
            return self.best_action(state)
        values = np.where(visited, self.q_values(state), -np.inf)
        return int(np.argmax(values))

    def update(self, state, action, reward, next_state):
        """Semi-gradient Q-learning step through the network."""
        phi = self.features_of(state)
        values, hidden, pre = self._forward(phi)
        mu = self.config.discount
        target = reward + mu * float(np.max(self.q_values(next_state)))
        error = target - float(values[action])

        # Backprop the single-output TD error.
        grad_w2_row = error * hidden
        grad_hidden = error * self.w2[action]
        grad_pre = grad_hidden * (pre > 0.0)
        self.w2[action] += self.step_size * grad_w2_row
        self.b2[action] += self.step_size * error
        self.w1 += self.step_size * np.outer(grad_pre, phi)
        self.b1 += self.step_size * grad_pre

        self.visits[action] += 1
        self.update_count += 1
        return float(self.step_size * error)

    @property
    def memory_bytes(self):
        return (self.w1.nbytes + self.b1.nbytes + self.w2.nbytes
                + self.b2.nbytes)
