"""Tabular Q-learning (Algorithm 1).

The value function Q(S, A) is a dense lookup table — the paper picks
Q-learning over TD-learning and deep RL precisely because a table lookup
keeps the per-inference overhead in the tens of microseconds and the
memory footprint under half a megabyte (Section VI-C).
"""

from __future__ import annotations

import zipfile
from dataclasses import dataclass

import numpy as np

from repro.analysis.contracts import contracts_enabled, ensure_q_value
from repro.common import ConfigError, make_rng

__all__ = ["QLearningConfig", "QTable", "epsilon_greedy"]


@dataclass(frozen=True)
class QLearningConfig:
    """Hyperparameters of Algorithm 1.

    The defaults are the paper's choices from its sensitivity study
    (Section V-C): learning rate 0.9 — new information should strongly
    override old, because the environment is stochastic; discount 0.1 —
    consecutive states are nearly unrelated, so future rewards get little
    weight; epsilon 0.1 for epsilon-greedy exploration.
    """

    learning_rate: float = 0.9
    discount: float = 0.1
    epsilon: float = 0.1
    init_low: float = -0.01
    init_high: float = 0.0
    dtype: str = "float32"

    def __post_init__(self):
        if self.dtype not in ("float16", "float32", "float64"):
            raise ConfigError(f"unsupported Q-table dtype {self.dtype!r}")
        if not 0.0 < self.learning_rate <= 1.0:
            raise ConfigError(
                f"learning rate outside (0, 1]: {self.learning_rate}"
            )
        if not 0.0 <= self.discount < 1.0:
            raise ConfigError(f"discount outside [0, 1): {self.discount}")
        if not 0.0 <= self.epsilon <= 1.0:
            raise ConfigError(f"epsilon outside [0, 1]: {self.epsilon}")
        if self.init_low > self.init_high:
            raise ConfigError("init_low exceeds init_high")


class QTable:
    """A dense (num_states x num_actions) action-value table."""

    def __init__(self, num_states, num_actions, config=QLearningConfig(),
                 seed=None):
        if num_states < 1 or num_actions < 1:
            raise ConfigError("Q-table dimensions must be positive")
        self.config = config
        rng = make_rng(seed)
        # Algorithm 1 initializes Q(S, A) with (small) random values.
        # Algorithm 1 initializes Q(S, A) with random values.  The
        # default range sits just below zero — *above* every achievable
        # reward (all negative) — so the initialization is optimistic:
        # exploitation systematically sweeps untried actions once before
        # settling, which is what lets a ~100-run training budget cover
        # a ~66-action space and reach the paper's 97.9% prediction
        # accuracy.  A float16 table matches the paper's 0.4 MB footprint
        # for the Mi8Pro's 3,072 x 66 space; float32 (the default)
        # trades 2x memory for safer incremental updates.
        self.values = rng.uniform(
            config.init_low, config.init_high,
            size=(num_states, num_actions),
        ).astype(config.dtype)
        self.visits = np.zeros((num_states, num_actions), dtype=np.uint32)
        self.update_count = 0

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    @property
    def num_states(self):
        return self.values.shape[0]

    @property
    def num_actions(self):
        return self.values.shape[1]

    def best_action(self, state, allowed=None):
        """argmax_a Q(state, a).

        ``allowed`` (a boolean mask over actions, e.g. from circuit
        breakers) restricts the argmax to the True entries; a mask with
        no True entry degenerates to the unmasked argmax rather than
        returning a nonsensical index.
        """
        if allowed is None or not np.any(allowed):
            return int(np.argmax(self.values[state]))
        values = np.where(allowed, self.values[state], -np.inf)
        return int(np.argmax(values))

    def select_actions(self, states, allowed=None):
        """Batched :meth:`best_action`: argmax_a Q(state_i, a) for a whole
        vector of (heterogeneous) states in **one** NumPy pass.

        This is the serving decision plane's structure-of-arrays core: the
        value rows for every state are gathered at once, the mask is
        broadcast across them, and a single ``argmax(axis=1)`` decides the
        whole batch — no per-request Python dispatch.

        Args:
            states: integer state indices, shape ``(n,)``.
            allowed: optional boolean action mask — either one shared
                ``(num_actions,)`` row broadcast over the batch, or a
                per-state ``(n, num_actions)`` matrix.  Rows with no True
                entry degenerate to the unmasked argmax, exactly matching
                :meth:`best_action`'s convention.

        Returns:
            ``(n,)`` int64 array of action indices, element-wise equal to
            ``[best_action(s, allowed_row) for s in states]``.
        """
        state_vector = np.asarray(states, dtype=np.intp)
        if state_vector.ndim != 1:
            raise ConfigError(
                f"states must be a 1-D index vector, got shape "
                f"{state_vector.shape}"
            )
        rows = self.values[state_vector]
        if allowed is None:
            return rows.argmax(axis=1)
        mask = np.asarray(allowed, dtype=bool)
        if mask.shape != rows.shape and mask.shape != rows.shape[1:]:
            raise ConfigError(
                f"mask of shape {mask.shape} for {len(state_vector)} "
                f"states over {self.num_actions} actions"
            )
        mask = np.broadcast_to(mask, rows.shape)
        masked = np.where(mask, rows, -np.inf)
        choices = masked.argmax(axis=1)
        degenerate = ~mask.any(axis=1)
        if degenerate.any():
            choices = np.where(degenerate, rows.argmax(axis=1), choices)
        return choices

    def best_visited_action(self, state, allowed=None):
        """argmax_a Q(state, a) restricted to actions tried in ``state``.

        Random initialization doubles as optimistic exploration during
        training, but once the table is *frozen* an untried action's
        leftover init value is meaningless — the trained-table selection
        rule therefore only considers actions whose Q reflects at least
        one real reward.  Falls back to the global argmax for states that
        were never visited at all.  ``allowed`` additionally restricts
        the choice as in :meth:`best_action`.
        """
        visited = self.visits[state] > 0
        if allowed is not None:
            visited = visited & np.asarray(allowed, dtype=bool)
        if not visited.any():
            return self.best_action(state, allowed)
        values = np.where(visited, self.values[state], -np.inf)
        return int(np.argmax(values))

    def best_value(self, state):
        """max_a Q(state, a)."""
        return float(np.max(self.values[state]))

    def value(self, state, action):
        return float(self.values[state, action])

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------

    def update(self, state, action, reward, next_state):
        """One Algorithm-1 update:

        Q(S,A) <- Q(S,A) + gamma * [R + mu * max_a' Q(S',A') - Q(S,A)]
        """
        if contracts_enabled():
            ensure_q_value(reward, "reward")
        gamma = self.config.learning_rate
        mu = self.config.discount
        target = reward + mu * self.best_value(next_state)
        delta = gamma * (target - self.values[state, action])
        self.values[state, action] += delta
        if contracts_enabled():
            ensure_q_value(float(self.values[state, action]),
                           f"Q[{state}, {action}]")
        self.visits[state, action] += 1
        self.update_count += 1
        return float(delta)

    # ------------------------------------------------------------------
    # Persistence and footprint
    # ------------------------------------------------------------------

    @property
    def memory_bytes(self):
        """Resident size of the table — Section VI-C reports 0.4 MB."""
        return self.values.nbytes

    def save(self, path):
        """Persist to an ``.npz`` file."""
        np.savez_compressed(path, values=self.values, visits=self.visits,
                            update_count=self.update_count)

    @classmethod
    def load(cls, path, config=QLearningConfig()):
        """Load a table persisted with :meth:`save`.

        The archive is validated before anything is adopted: a missing
        or truncated file, an archive without the ``values`` /
        ``update_count`` keys, a non-2-D value table, a visit matrix
        whose shape disagrees with the values, or arrays whose dtype
        cannot be represented in ``config.dtype`` all raise
        :class:`~repro.common.ConfigError` naming the offending path,
        instead of surfacing a cryptic failure deep inside training.
        """
        try:
            data = np.load(path)
        except (OSError, ValueError, zipfile.BadZipFile) as error:
            raise ConfigError(
                f"cannot read Q-table archive {path!r}: {error}"
            ) from error
        if not hasattr(data, "files"):  # a bare .npy, not an archive
            raise ConfigError(
                f"Q-table archive {path!r} is not an .npz archive "
                f"(got a bare array of shape {getattr(data, 'shape', '?')})"
            )
        with data:
            available = set(data.files)
            missing = {"values", "update_count"} - available
            if missing:
                raise ConfigError(
                    f"Q-table archive {path!r} is missing required "
                    f"key(s) {sorted(missing)}; found {sorted(available)}"
                )
            values = data["values"]
            if values.ndim != 2:
                raise ConfigError(
                    f"Q-table archive {path!r}: 'values' must be a 2-D "
                    f"(states x actions) array, got shape {values.shape}"
                )
            if not np.issubdtype(values.dtype, np.floating):
                raise ConfigError(
                    f"Q-table archive {path!r}: 'values' dtype "
                    f"{values.dtype} is not a float type"
                )
            update_count = data["update_count"]
            if update_count.size != 1:
                raise ConfigError(
                    f"Q-table archive {path!r}: 'update_count' must be "
                    f"a scalar, got shape {update_count.shape}"
                )
            visits = data["visits"] if "visits" in available else None
            if visits is not None:
                if visits.shape != values.shape:
                    raise ConfigError(
                        f"Q-table archive {path!r}: 'visits' shape "
                        f"{visits.shape} does not match 'values' shape "
                        f"{values.shape}"
                    )
                if not np.issubdtype(visits.dtype, np.integer):
                    raise ConfigError(
                        f"Q-table archive {path!r}: 'visits' dtype "
                        f"{visits.dtype} is not an integer type"
                    )
            table = cls(values.shape[0], values.shape[1], config=config,
                        seed=0)
            table.values = values.astype(config.dtype)
            table.update_count = int(update_count)
            if visits is not None:
                table.visits = visits.astype(np.uint32)
        return table

    def copy(self):
        """A deep copy (used by transfer learning and ablations)."""
        clone = QTable(self.num_states, self.num_actions,
                       config=self.config, seed=0)
        clone.values = self.values.copy()
        clone.visits = self.visits.copy()
        clone.update_count = self.update_count
        return clone


def epsilon_greedy(qtable, state, rng, epsilon=None):
    """Epsilon-greedy action selection (Algorithm 1's choice rule)."""
    if epsilon is None:
        epsilon = qtable.config.epsilon
    if rng.random() < epsilon:
        return int(rng.integers(qtable.num_actions))
    return qtable.best_action(state)
