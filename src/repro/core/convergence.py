"""Convergence detection for the training loop.

Section IV-B: "after the learning is complete (i.e., the largest Q(S,A)
value for each state S is converged), the Q-table is used to select A".
Fig. 14 reports that the reward typically converges in 40-50 inference
runs.

We detect convergence on the *exploit* reward stream (exploration steps
are deliberate off-policy probes).  Two conditions must hold together:

- the sliding-window reward mean has stopped moving (relative change
  below a tolerance for several consecutive steps), and
- the policy has actually settled on an action: the same action was
  *executed* for ``action_streak`` consecutive exploit steps.  Without
  this, the early phase — where optimistic initial Q values make the
  agent sweep untried actions, each collapsing to a similar bad reward —
  masquerades as a stable reward stream.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.common import ConfigError

__all__ = ["ConvergenceDetector", "episodes_to_converge"]


@dataclass
class ConvergenceDetector:
    """Streaming convergence detector over (reward, executed action)."""

    window: int = 10
    tolerance: float = 0.08
    stable_steps: int = 5
    action_streak: int = 4
    _rewards: deque = field(default=None, repr=False)
    _prev_mean: float = field(default=None, repr=False)
    _stable_streak: int = field(default=0, repr=False)
    _last_action: object = field(default=None, repr=False)
    _same_action_streak: int = field(default=0, repr=False)
    _steps: int = field(default=0, repr=False)
    converged_at: int = field(default=None)

    def __post_init__(self):
        if self.window < 2:
            raise ConfigError(f"window must be >= 2, got {self.window}")
        if self.tolerance <= 0:
            raise ConfigError(f"tolerance must be positive: {self.tolerance}")
        if self.stable_steps < 1:
            raise ConfigError("stable_steps must be >= 1")
        if self.action_streak < 1:
            raise ConfigError("action_streak must be >= 1")
        self._rewards = deque(maxlen=self.window)

    @property
    def converged(self):
        return self.converged_at is not None

    def observe(self, reward, executed_action=None):
        """Feed one exploit step; returns True once converged.

        ``executed_action`` may be omitted (e.g. when replaying a bare
        reward trace), in which case only the reward condition applies.
        """
        self._steps += 1
        self._rewards.append(reward)
        if executed_action is None:
            self._same_action_streak = self.action_streak  # not tracked
        elif executed_action == self._last_action:
            self._same_action_streak += 1
        else:
            self._last_action = executed_action
            self._same_action_streak = 1
        if self.converged:
            return True
        if len(self._rewards) < self.window:
            return False
        mean = sum(self._rewards) / len(self._rewards)
        if self._prev_mean is not None:
            scale = max(abs(self._prev_mean), abs(mean), 1e-9)
            if abs(mean - self._prev_mean) / scale <= self.tolerance:
                self._stable_streak += 1
            else:
                self._stable_streak = 0
        self._prev_mean = mean
        if (self._stable_streak >= self.stable_steps
                and self._same_action_streak >= self.action_streak):
            self.converged_at = self._steps
            return True
        return False

    def reset(self):
        self._rewards.clear()
        self._prev_mean = None
        self._stable_streak = 0
        self._last_action = None
        self._same_action_streak = 0
        self._steps = 0
        self.converged_at = None


def episodes_to_converge(rewards, window=10, tolerance=0.08,
                         stable_steps=5):
    """Offline variant: first index where a reward series has converged.

    Operates on a bare reward trace (no action information), so only the
    reward-stability condition applies.  Returns ``len(rewards)`` if the
    series never converges.
    """
    detector = ConvergenceDetector(window=window, tolerance=tolerance,
                                   stable_steps=stable_steps)
    for index, reward in enumerate(rewards):
        if detector.observe(reward):
            return index + 1
    return len(rewards)
