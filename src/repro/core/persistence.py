"""Persistence of trained AutoScale engines.

A deployed service trains once (or receives a transferred table, Section
VI-C) and then reloads the trained Q-table across process restarts.  The
on-disk format is a directory holding:

- ``qtable.npz`` — values, visit counts, update count;
- ``meta.json`` — the action-space keys, state-space size, and the
  hyperparameters, so a load against a *different* environment (wrong
  device, changed action augmentations) fails loudly instead of silently
  mis-indexing actions.
"""

from __future__ import annotations

import json
import pathlib

from repro.common import ConfigError
from repro.core.engine import AutoScale
from repro.core.qlearning import QLearningConfig, QTable
from repro.core.reward import RewardConfig

__all__ = ["save_engine", "load_engine"]

_META_NAME = "meta.json"
_TABLE_NAME = "qtable.npz"
_FORMAT_VERSION = 1


def save_engine(engine, directory):
    """Persist a trained engine to ``directory`` (created if needed)."""
    path = pathlib.Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    engine.qtable.save(path / _TABLE_NAME)
    meta = {
        "format_version": _FORMAT_VERSION,
        "device": engine.environment.device.name,
        "num_states": engine.state_space.size,
        "action_keys": [target.key for target in engine.action_space],
        "qlearning": {
            "learning_rate": engine.config.learning_rate,
            "discount": engine.config.discount,
            "epsilon": engine.config.epsilon,
            "init_low": engine.config.init_low,
            "init_high": engine.config.init_high,
            "dtype": engine.config.dtype,
        },
        "reward": {
            "alpha": engine.reward_config.alpha,
            "beta": engine.reward_config.beta,
            "normalize": engine.reward_config.normalize,
            "energy_ref_mj": engine.reward_config.energy_ref_mj,
        },
    }
    (path / _META_NAME).write_text(json.dumps(meta, indent=2))
    return path


def load_engine(directory, environment, seed=None):
    """Reconstruct an engine from disk against a compatible environment.

    Raises :class:`ConfigError` when the environment's action space does
    not match the persisted one (different device or augmentations) or
    when the state-space size differs.
    """
    path = pathlib.Path(directory)
    meta_path = path / _META_NAME
    if not meta_path.exists():
        raise ConfigError(f"no engine metadata at {meta_path}")
    meta = json.loads(meta_path.read_text())
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ConfigError(
            f"unsupported engine format {meta.get('format_version')!r}"
        )
    config = QLearningConfig(**meta["qlearning"])
    reward = RewardConfig(**meta["reward"])
    engine = AutoScale(environment, config=config, reward=reward,
                       seed=seed)

    expected_keys = meta["action_keys"]
    actual_keys = [target.key for target in engine.action_space]
    if actual_keys != expected_keys:
        raise ConfigError(
            "environment action space does not match the persisted "
            f"engine (persisted for device {meta['device']!r}); "
            "use repro.core.transfer to move tables across devices"
        )
    if engine.state_space.size != meta["num_states"]:
        raise ConfigError(
            f"state-space size mismatch: persisted {meta['num_states']}, "
            f"environment {engine.state_space.size}"
        )
    engine.qtable = QTable.load(path / _TABLE_NAME, config=config)
    return engine
