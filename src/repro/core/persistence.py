"""Persistence of trained AutoScale engines.

A deployed service trains once (or receives a transferred table, Section
VI-C) and then reloads the trained Q-table across process restarts.  The
on-disk format is a directory holding:

- ``qtable.npz`` — values, visit counts, update count;
- ``meta.json`` — the action-space keys, state-space size, and the
  hyperparameters, so a load against a *different* environment (wrong
  device, changed action augmentations) fails loudly instead of silently
  mis-indexing actions.

Writes are crash-safe: both files are written to temporaries and moved
into place with ``os.replace``, so a checkpoint interrupted mid-write
leaves the previous checkpoint intact rather than a torn one.
``meta.json`` records the table file's SHA-256; :func:`load_engine`
verifies it before deserializing, turning silent bit-rot or a torn copy
into a clear :class:`~repro.common.ConfigError`.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib

from repro.common import ConfigError
from repro.core.engine import AutoScale
from repro.core.qlearning import QLearningConfig, QTable
from repro.core.reward import RewardConfig
from repro.guard import GuardConfig, PolicyGuard

__all__ = ["save_engine", "load_engine", "save_guard", "load_guard"]

_META_NAME = "meta.json"
_TABLE_NAME = "qtable.npz"
# ``np.savez`` appends ".npz" when missing, so the temp name keeps it.
_TABLE_TMP_NAME = "qtable.tmp.npz"
_META_TMP_NAME = "meta.json.tmp"
_GUARD_NAME = "guard.json"
_GUARD_TMP_NAME = "guard.json.tmp"
_FORMAT_VERSION = 1
_GUARD_FORMAT_VERSION = 1


def _sha256_of(path):
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


def save_engine(engine, directory):
    """Persist a trained engine to ``directory`` (created if needed).

    Atomic per file: the table and the metadata each land via a
    temp-file + ``os.replace`` pair, and the metadata embeds the table's
    SHA-256 so :func:`load_engine` can detect corruption.
    """
    path = pathlib.Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    table_tmp = path / _TABLE_TMP_NAME
    engine.qtable.save(table_tmp)
    table_sha256 = _sha256_of(table_tmp)
    os.replace(table_tmp, path / _TABLE_NAME)
    meta = {
        "format_version": _FORMAT_VERSION,
        "table_sha256": table_sha256,
        "device": engine.environment.device.name,
        "num_states": engine.state_space.size,
        "action_keys": [target.key for target in engine.action_space],
        "qlearning": {
            "learning_rate": engine.config.learning_rate,
            "discount": engine.config.discount,
            "epsilon": engine.config.epsilon,
            "init_low": engine.config.init_low,
            "init_high": engine.config.init_high,
            "dtype": engine.config.dtype,
        },
        "reward": {
            "alpha": engine.reward_config.alpha,
            "beta": engine.reward_config.beta,
            "normalize": engine.reward_config.normalize,
            "energy_ref_mj": engine.reward_config.energy_ref_mj,
        },
    }
    meta_tmp = path / _META_TMP_NAME
    meta_tmp.write_text(json.dumps(meta, indent=2))
    os.replace(meta_tmp, path / _META_NAME)
    return path


def load_engine(directory, environment, seed=None):
    """Reconstruct an engine from disk against a compatible environment.

    Raises :class:`ConfigError` when the environment's action space does
    not match the persisted one (different device or augmentations),
    when the state-space size differs, or when the table file's SHA-256
    does not match the one recorded at save time (torn or corrupted
    checkpoint).
    """
    path = pathlib.Path(directory)
    meta_path = path / _META_NAME
    if not meta_path.exists():
        raise ConfigError(f"no engine metadata at {meta_path}")
    meta = json.loads(meta_path.read_text())
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ConfigError(
            f"unsupported engine format {meta.get('format_version')!r}"
        )
    config = QLearningConfig(**meta["qlearning"])
    reward = RewardConfig(**meta["reward"])
    engine = AutoScale(environment, config=config, reward=reward,
                       seed=seed)

    expected_keys = meta["action_keys"]
    actual_keys = [target.key for target in engine.action_space]
    if actual_keys != expected_keys:
        raise ConfigError(
            "environment action space does not match the persisted "
            f"engine (persisted for device {meta['device']!r}); "
            "use repro.core.transfer to move tables across devices"
        )
    if engine.state_space.size != meta["num_states"]:
        raise ConfigError(
            f"state-space size mismatch: persisted {meta['num_states']}, "
            f"environment {engine.state_space.size}"
        )
    table_path = path / _TABLE_NAME
    if not table_path.exists():
        raise ConfigError(f"no Q-table at {table_path}")
    expected_sha256 = meta.get("table_sha256")
    if expected_sha256 is not None:
        # Older checkpoints (no recorded digest) load unverified.
        actual_sha256 = _sha256_of(table_path)
        if actual_sha256 != expected_sha256:
            raise ConfigError(
                f"corrupt checkpoint: {table_path} has sha256 "
                f"{actual_sha256[:12]}…, metadata recorded "
                f"{expected_sha256[:12]}… — the checkpoint was torn or "
                "modified after saving"
            )
    engine.qtable = QTable.load(table_path, config=config)
    return engine


def _canonical_guard_digest(state):
    """SHA-256 over the canonical (sorted-keys) JSON of a guard state."""
    blob = json.dumps(state, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def save_guard(guard, directory):
    """Persist a :class:`~repro.guard.PolicyGuard` beside the engine.

    Same crash-safety contract as :func:`save_engine`: the blob lands
    via temp-file + ``os.replace`` and embeds a SHA-256 over the
    canonical state JSON, so :func:`load_guard` detects a torn or
    tampered blob before arming a supervisor from it.
    """
    path = pathlib.Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    state = guard.state_dict()
    blob = {
        "format_version": _GUARD_FORMAT_VERSION,
        "config": guard.config.as_dict(),
        "state": state,
        "state_sha256": _canonical_guard_digest(state),
    }
    guard_tmp = path / _GUARD_TMP_NAME
    guard_tmp.write_text(json.dumps(blob, indent=2))
    guard_path = path / _GUARD_NAME
    os.replace(guard_tmp, guard_path)
    return guard_path


def load_guard(directory):
    """Reconstruct a persisted guard, or ``None`` when the checkpoint
    predates the guard (no ``guard.json``).

    Raises :class:`ConfigError` on an unsupported format, a digest
    mismatch, or a malformed state blob — an armed supervisor must be
    restored exactly or not at all.
    """
    guard_path = pathlib.Path(directory) / _GUARD_NAME
    if not guard_path.exists():
        return None
    try:
        blob = json.loads(guard_path.read_text())
    except json.JSONDecodeError as error:
        raise ConfigError(
            f"corrupt guard checkpoint at {guard_path}: {error}"
        ) from None
    if not isinstance(blob, dict):
        raise ConfigError(
            f"corrupt guard checkpoint at {guard_path}: not an object"
        )
    if blob.get("format_version") != _GUARD_FORMAT_VERSION:
        raise ConfigError(
            f"unsupported guard format {blob.get('format_version')!r}"
        )
    try:
        config = GuardConfig(**blob["config"])
        state = blob["state"]
        expected_sha256 = blob["state_sha256"]
    except (KeyError, TypeError) as error:
        raise ConfigError(
            f"corrupt guard checkpoint at {guard_path}: {error}"
        ) from None
    actual_sha256 = _canonical_guard_digest(state)
    if actual_sha256 != expected_sha256:
        raise ConfigError(
            f"corrupt guard checkpoint: {guard_path} state has sha256 "
            f"{actual_sha256[:12]}…, blob recorded "
            f"{str(expected_sha256)[:12]}… — the checkpoint was torn or "
            "modified after saving"
        )
    guard = PolicyGuard(config)
    guard.load_state_dict(state)
    return guard
