"""DBSCAN-based feature discretization.

Section IV-A: "To convert the continuous features into discrete values, we
applied [the] DBSCAN clustering algorithm to each feature; DBSCAN
determines the optimal number of clusters for the given data."

This module implements DBSCAN from scratch (density-based clustering with
``eps``-neighbourhoods and a core-point threshold) and the derivation of
bin *edges* from the clusters a 1-D feature's profiling samples form: the
boundary between two adjacent clusters is placed midway between them, and
noise points are absorbed into the nearest cluster's bin.
"""

from __future__ import annotations

import numpy as np

from repro.common import ConfigError

__all__ = ["dbscan", "cluster_edges", "derive_feature_edges"]

_NOISE = -1
_UNVISITED = -2


def dbscan(points, eps, min_samples):
    """Density-based clustering of 1-D or N-D points.

    Args:
        points: array-like of shape (n,) or (n, d).
        eps: neighbourhood radius.
        min_samples: minimum neighbourhood size for a core point
            (including the point itself).

    Returns an int array of cluster labels; noise points get ``-1``.
    """
    data = np.asarray(points, dtype=float)
    if data.ndim == 1:
        data = data[:, None]
    if data.ndim != 2:
        raise ConfigError(f"points must be 1-D or 2-D, got {data.ndim}-D")
    if eps <= 0:
        raise ConfigError(f"eps must be positive, got {eps}")
    if min_samples < 1:
        raise ConfigError(f"min_samples must be >= 1, got {min_samples}")

    n = len(data)
    labels = np.full(n, _UNVISITED, dtype=int)
    # Pairwise distances; fine at profiling-sample scale (hundreds).
    diffs = data[:, None, :] - data[None, :, :]
    distances = np.sqrt((diffs ** 2).sum(axis=2))
    neighbourhoods = [np.nonzero(distances[i] <= eps)[0] for i in range(n)]

    cluster = 0
    for seed in range(n):
        if labels[seed] != _UNVISITED:
            continue
        if len(neighbourhoods[seed]) < min_samples:
            labels[seed] = _NOISE
            continue
        # Grow a new cluster from this core point.
        labels[seed] = cluster
        frontier = list(neighbourhoods[seed])
        while frontier:
            point = frontier.pop()
            if labels[point] == _NOISE:
                labels[point] = cluster  # border point adopted
            if labels[point] != _UNVISITED:
                continue
            labels[point] = cluster
            if len(neighbourhoods[point]) >= min_samples:
                frontier.extend(neighbourhoods[point])
        cluster += 1
    return labels


def cluster_edges(values, labels):
    """Bin edges separating adjacent 1-D clusters.

    Each edge is the midpoint between the maximum of one cluster and the
    minimum of the next (ordered by cluster centroid).  Noise points do
    not produce bins of their own.
    """
    values = np.asarray(values, dtype=float)
    labels = np.asarray(labels)
    ids = sorted(set(labels[labels != _NOISE]),
                 key=lambda c: values[labels == c].mean())
    if len(ids) < 2:
        return ()
    edges = []
    for left, right in zip(ids, ids[1:]):
        left_max = values[labels == left].max()
        right_min = values[labels == right].min()
        edges.append((left_max + right_min) / 2.0)
    return tuple(edges)


def derive_feature_edges(samples, eps=None, min_samples=4):
    """One-call helper: DBSCAN a feature's profiling samples into edges.

    ``eps`` defaults to 5% of the sample range — a heuristic that
    recovers Table-I-like bins from well-separated profiling modes.
    """
    values = np.asarray(samples, dtype=float)
    if values.ndim != 1:
        raise ConfigError("feature samples must be 1-D")
    if len(values) < min_samples:
        raise ConfigError(
            f"need at least {min_samples} samples, got {len(values)}"
        )
    if eps is None:
        span = float(values.max() - values.min())
        if span == 0.0:
            return ()
        eps = span * 0.05
    labels = dbscan(values, eps=eps, min_samples=min_samples)
    return cluster_edges(values, labels)
