"""AutoScale's reward function — equation (5).

::

    if R_accuracy < inference-quality requirement:
        R = R_accuracy - 100
    elif R_latency < QoS constraint:
        R = -R_energy + alpha * R_latency + beta * R_accuracy
    else:
        R = -R_energy + beta * R_accuracy

The accuracy-failure branch makes a quality-violating action strictly
worse than any quality-satisfying one.  Inside the QoS budget the
*positive* latency term is intentional: among QoS-satisfying actions it
rewards running "just fast enough" (a slower, lower-voltage DVFS point),
which is how the paper's engine learns to race exactly to the deadline
instead of to idle.  Outside the budget the bonus disappears, so a
violating action can only compete on raw energy.

**Units.**  The paper does not state the units of the three terms; with
alpha = beta = 0.1 the terms are only commensurate if energy is in joules,
latency in seconds, and accuracy a fraction — that is this module's
``normalize=False`` mode, kept for fidelity.  The default mode divides
the energy *and* latency terms by a common reference (``energy_ref_mj``),
which preserves the raw form's term ratios exactly while keeping reward
magnitudes in a numerically comfortable range for the Q-table; the
accuracy term stays a fraction in both modes.  With the paper's
alpha = 0.1 this makes the in-QoS latency bonus a strong tie-break —
enough to steer DVFS toward the deadline and to discourage marginal QoS
violations, never enough to outvote a real energy difference (the
property behind Fig. 13's 97.9% agreement with the pure-energy oracle).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import ConfigError

__all__ = ["RewardConfig", "compute_reward"]

#: Offset that keeps the accuracy-failure branch below every regular
#: reward in normalized mode (normalized energies stay well above -50).
_ACCURACY_FAIL_OFFSET = 50.0


@dataclass(frozen=True)
class RewardConfig:
    """Weights and normalization for equation (5).

    Attributes:
        alpha: latency weight (paper: 0.1).
        beta: accuracy weight (paper: 0.1).
        normalize: use the scale-free form (default) or the paper's raw
            joules/seconds/fraction form.
        energy_ref_mj: normalization reference; 100 mJ is the scale of a
            well-placed light-network inference on the phones modelled
            here, putting good actions near -1.
    """

    alpha: float = 0.1
    beta: float = 0.1
    normalize: bool = True
    energy_ref_mj: float = 100.0

    def __post_init__(self):
        if self.alpha < 0 or self.beta < 0:
            raise ConfigError("reward weights must be non-negative")
        if self.energy_ref_mj <= 0:
            raise ConfigError("energy reference must be positive")


def compute_reward(result, use_case, config=RewardConfig(),
                   energy_mj=None):
    """Equation (5) for one executed inference.

    Args:
        result: the :class:`~repro.env.result.ExecutionResult`.
        use_case: the :class:`~repro.env.qos.UseCase` defining the QoS
            constraint and the inference-quality requirement.
        config: reward weights/normalization.
        energy_mj: override the energy term.  AutoScale trains on its
            *estimated* energy (``result.estimated_energy_mj``, the
            default); pass ``result.energy_mj`` to train on ground truth
            (used by ablations).

    Returns the scalar reward.
    """
    if getattr(result, "failed", False):
        # An injected fault (or a deadline abort) delivered nothing but
        # still burned energy.  Score it strictly below the accuracy-
        # failure branch so a flaky target ranks worse than any target
        # that at least returns an answer, with the billed energy as a
        # tie-break between flaky targets.
        if energy_mj is None:
            energy_mj = result.estimated_energy_mj
        if config.normalize:
            return (-_ACCURACY_FAIL_OFFSET - 1.0
                    - energy_mj / config.energy_ref_mj)
        return -100.0 - energy_mj / 1000.0

    accuracy = result.accuracy_pct
    if not use_case.meets_accuracy(accuracy):
        if config.normalize:
            return -_ACCURACY_FAIL_OFFSET + (accuracy - 100.0) / 100.0
        return accuracy - 100.0

    if energy_mj is None:
        energy_mj = result.estimated_energy_mj
    if config.normalize:
        # Both physical terms share the energy reference, so their
        # *ratio* matches the paper's raw joules/seconds form exactly
        # (the whole reward is the raw one scaled by 1000/ref).
        energy_term = energy_mj / config.energy_ref_mj
        latency_term = result.latency_ms / config.energy_ref_mj
    else:
        energy_term = energy_mj / 1000.0           # joules
        latency_term = result.latency_ms / 1000.0  # seconds
    accuracy_term = accuracy / 100.0

    reward = -energy_term + config.beta * accuracy_term
    if use_case.meets_qos(result.latency_ms):
        reward += config.alpha * latency_term
    return reward
