"""Command-line interface for the AutoScale reproduction.

Installed as ``repro-autoscale`` (see ``pyproject.toml``).  Subcommands:

- ``list`` — inventory: devices, networks, Table-IV scenarios;
- ``train`` — train an engine on a device/network/scenario and
  optionally persist it;
- ``predict`` — load a persisted engine and print its decision for the
  current (simulated) conditions;
- ``experiment`` — run one of the paper-figure drivers and print the
  reproduced table;
- ``overload`` — replay an open-loop arrival stream through the serving
  pipeline and compare shed/brownout policies against naive FIFO,
  optionally under a chaos fault level;
- ``drift`` — shift the world mid-episode (RSSI collapse, co-runner
  flip, cloud slowdown) and compare guarded vs unguarded serving.

Examples::

    repro-autoscale list
    repro-autoscale train --device mi8pro --network mobilenet_v3 \\
        --runs 120 --save /tmp/engine
    repro-autoscale predict --load /tmp/engine --device mi8pro \\
        --network mobilenet_v3 --scenario S4
    repro-autoscale experiment fig2
    repro-autoscale overload --profile surge --policy shed_brownout \\
        --faults mild
    repro-autoscale drift --scenario cloud_slowdown
"""

from __future__ import annotations

import argparse
import sys

from repro.common import ConfigError
from repro.core.convergence import episodes_to_converge

__all__ = ["main", "build_parser"]

_EXPERIMENTS = {
    "fig2": ("repro.evalharness.characterization",
             "fig2_characterization"),
    "fig3": ("repro.evalharness.characterization", "fig3_layer_latency"),
    "fig4": ("repro.evalharness.characterization",
             "fig4_accuracy_tradeoff"),
    "fig5": ("repro.evalharness.characterization", "fig5_interference"),
    "fig6": ("repro.evalharness.characterization", "fig6_signal"),
    "fig7": ("repro.evalharness.characterization", "fig7_predictors"),
    "fig9": ("repro.evalharness.evaluation", "fig9_main_results"),
    "fig10": ("repro.evalharness.evaluation", "fig10_streaming"),
    "fig11": ("repro.evalharness.evaluation", "fig11_dynamic"),
    "fig12": ("repro.evalharness.evaluation", "fig12_accuracy_targets"),
    "fig13": ("repro.evalharness.evaluation", "fig13_decisions"),
    "fig14": ("repro.evalharness.evaluation", "fig14_convergence"),
    "overhead": ("repro.evalharness.evaluation", "overhead_analysis"),
    "rl-designs": ("repro.evalharness.rl_comparison",
                   "compare_rl_designs"),
    "calibration": ("repro.evalharness.calibration",
                    "run_calibration_checks"),
    "fleet": ("repro.evalharness.fleet", "fleet_transfer_study"),
    "pareto": ("repro.evalharness.pareto", "design_space_analysis"),
}


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-autoscale",
        description="AutoScale (MICRO 2020) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list devices, networks, and scenarios")

    train = sub.add_parser("train", help="train an AutoScale engine")
    train.add_argument("--device", default="mi8pro")
    train.add_argument("--network", default="mobilenet_v3")
    train.add_argument("--scenario", default="S1")
    train.add_argument("--runs", type=int, default=120)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--streaming", action="store_true")
    train.add_argument("--save", metavar="DIR",
                       help="persist the trained engine here")

    predict = sub.add_parser("predict",
                             help="decision of a persisted engine")
    predict.add_argument("--load", metavar="DIR", required=True)
    predict.add_argument("--device", default="mi8pro")
    predict.add_argument("--network", default="mobilenet_v3")
    predict.add_argument("--scenario", default="S1")
    predict.add_argument("--seed", type=int, default=0)

    experiment = sub.add_parser("experiment",
                                help="run a paper-figure driver")
    experiment.add_argument("name", choices=sorted(_EXPERIMENTS))
    experiment.add_argument("--seed", type=int, default=0)

    report = sub.add_parser(
        "report", help="assemble REPORT.md from benchmark artifacts"
    )
    report.add_argument("--results", default="benchmarks/results")
    report.add_argument("--output", default=None)

    overload = sub.add_parser(
        "overload",
        help="open-loop overload sweep (queue, shedder, brownout)",
    )
    overload.add_argument("--profile", default="all",
                          choices=("calm", "busy", "surge", "all"),
                          help="arrival intensity profile")
    overload.add_argument("--policy", default="all",
                          choices=("fifo", "shed", "shed_brownout", "all"),
                          help="serving policy")
    overload.add_argument("--faults", default="calm",
                          choices=("calm", "mild", "rough", "hostile"),
                          help="chaos fault level to compose with")
    overload.add_argument("--device", default="mi8pro")
    overload.add_argument("--network", default="inception_v1")
    overload.add_argument("--qos-ms", type=float, default=200.0)
    overload.add_argument("--duration-ms", type=float, default=20_000.0)
    overload.add_argument("--warmup", type=int, default=300)
    overload.add_argument("--seed", type=int, default=0)

    drift = sub.add_parser(
        "drift",
        help="guarded vs unguarded serving under mid-episode drift",
    )
    drift.add_argument("--scenario", default="all",
                       choices=("stationary", "rssi_shift",
                                "corunner_flip", "cloud_slowdown", "all"),
                       help="which mid-episode world shift to inject")
    drift.add_argument("--device", default="mi8pro")
    drift.add_argument("--network", default="resnet_50")
    drift.add_argument("--qos-ms", type=float, default=200.0)
    drift.add_argument("--arrivals-per-s", type=float, default=5.0)
    drift.add_argument("--duration-ms", type=float, default=60_000.0)
    drift.add_argument("--drift-at-ms", type=float, default=20_000.0)
    drift.add_argument("--warmup", type=int, default=400)
    drift.add_argument("--seed", type=int, default=0)

    return parser


def _cmd_list(out):
    from repro.env.scenarios import SCENARIO_NAMES, build_scenario
    from repro.hardware.devices import DEVICE_BUILDERS, build_device
    from repro.models.zoo import NETWORK_NAMES, build_network

    out.write("devices:\n")
    for name in sorted(DEVICE_BUILDERS):
        device = build_device(name)
        out.write(f"  {name:18s} {device.device_class.value:7s} "
                  f"roles={','.join(device.soc.roles)}\n")
    out.write("networks:\n")
    for name in NETWORK_NAMES:
        out.write(f"  {build_network(name).describe()}\n")
    out.write("scenarios:\n")
    for name in SCENARIO_NAMES:
        out.write(f"  {name}: {build_scenario(name).description}\n")
    return 0


def _cmd_train(args, out):
    from repro.core.engine import AutoScale
    from repro.core.persistence import save_engine
    from repro.env.environment import EdgeCloudEnvironment
    from repro.env.qos import use_case_for
    from repro.hardware.devices import build_device
    from repro.models.zoo import build_network

    env = EdgeCloudEnvironment(build_device(args.device),
                               scenario=args.scenario, seed=args.seed)
    engine = AutoScale(env, seed=args.seed)
    use_case = use_case_for(build_network(args.network),
                            streaming=args.streaming)
    out.write(f"training {args.network} on {args.device} "
              f"({args.scenario}, {args.runs} runs)\n")
    steps = engine.run(use_case, args.runs)
    rewards = [s.reward for s in steps if not s.explored]
    out.write(f"reward converged after ~{episodes_to_converge(rewards)} "
              f"exploit runs\n")
    engine.freeze()
    target = engine.predict(use_case.network, env.observe())
    out.write(f"greedy decision: {target.key}\n")
    if args.save:
        path = save_engine(engine, args.save)
        out.write(f"engine saved to {path}\n")
    return 0


def _cmd_predict(args, out):
    from repro.core.persistence import load_engine
    from repro.env.environment import EdgeCloudEnvironment
    from repro.hardware.devices import build_device
    from repro.models.zoo import build_network

    env = EdgeCloudEnvironment(build_device(args.device),
                               scenario=args.scenario, seed=args.seed)
    engine = load_engine(args.load, env, seed=args.seed)
    engine.freeze()
    network = build_network(args.network)
    observation = env.observe()
    target = engine.predict(network, observation)
    result = env.estimate(network, target, observation)
    out.write(f"conditions: scenario={args.scenario} "
              f"wifi={observation.rssi_wlan_dbm:.0f}dBm "
              f"co-cpu={observation.cpu_util * 100:.0f}%\n")
    out.write(f"decision  : {target.key}\n")
    out.write(f"expected  : {result.latency_ms:.1f} ms, "
              f"{result.energy_mj:.1f} mJ, "
              f"{result.accuracy_pct:.1f}% accuracy\n")
    return 0


def _cmd_experiment(args, out):
    import importlib
    import inspect

    module_name, function_name = _EXPERIMENTS[args.name]
    driver = getattr(importlib.import_module(module_name), function_name)
    kwargs = {}
    if "seed" in inspect.signature(driver).parameters:
        kwargs["seed"] = args.seed
    result = driver(**kwargs)
    out.write(result["table"] + "\n")
    return 0


def _cmd_overload(args, out):
    from repro.evalharness.chaos import DEFAULT_LEVELS
    from repro.evalharness.overload import (
        DEFAULT_PROFILES,
        SERVING_POLICIES,
        overload_episode,
    )
    from repro.hardware.devices import build_device

    plan = next(level.plan for level in DEFAULT_LEVELS
                if level.name == args.faults)
    profiles = (DEFAULT_PROFILES if args.profile == "all"
                else tuple(p for p in DEFAULT_PROFILES
                           if p.name == args.profile))
    policies = (SERVING_POLICIES if args.policy == "all"
                else (args.policy,))
    device = build_device(args.device)
    header = (f"{'profile':8s} {'policy':14s} {'offered':>7s} "
              f"{'shed%':>6s} {'viol%':>6s} {'mJ/del':>7s} "
              f"{'p99 queue ms':>12s}")
    out.write(header + "\n")
    for profile in profiles:
        for policy in policies:
            row = overload_episode(
                policy, profile, plan=plan, device=device,
                network_name=args.network, qos_ms=args.qos_ms,
                duration_ms=args.duration_ms,
                warmup_requests=args.warmup, seed=args.seed,
            )
            out.write(
                f"{row['profile']:8s} {row['policy']:14s} "
                f"{row['offered']:7d} {row['shed_pct']:6.1f} "
                f"{row['qos_violation_pct']:6.1f} "
                f"{row['energy_per_delivered_mj']:7.2f} "
                f"{row['p99_queue_delay_ms']:12.1f}\n"
            )
    return 0


def _cmd_drift(args, out):
    from repro.evalharness.drift import DRIFT_SCENARIOS, drift_episode
    from repro.hardware.devices import build_device

    scenarios = (tuple(DRIFT_SCENARIOS) if args.scenario == "all"
                 else (args.scenario,))
    device = build_device(args.device)
    header = (f"{'scenario':14s} {'guard':5s} {'offered':>7s} "
              f"{'post-drift viol':>15s} {'stage':8s} "
              f"{'escalations':>11s} alarms")
    out.write(header + "\n")
    for scenario in scenarios:
        for guarded in (False, True):
            row = drift_episode(
                scenario, guarded, device=device,
                network_name=args.network, qos_ms=args.qos_ms,
                arrivals_per_s=args.arrivals_per_s,
                duration_ms=args.duration_ms,
                drift_at_ms=args.drift_at_ms,
                warmup_requests=args.warmup, seed=args.seed,
            )
            guard = row["guard"]
            alarms = ",".join(f"{name}x{count}" for name, count
                              in guard["alarms"].items()) or "-"
            out.write(
                f"{row['scenario']:14s} {'on' if guarded else 'off':5s} "
                f"{row['offered']:7d} "
                f"{row['post_drift_violations']:5d} "
                f"({row['post_drift_violation_pct']:5.1f}%) "
                f"{guard['stage']:8s} {guard['escalations']:11d} "
                f"{alarms}\n"
            )
    return 0


def _cmd_report(args, out):
    from repro.evalharness.report import generate_report

    path = generate_report(args.results, output_path=args.output)
    out.write(f"report written to {path}\n")
    return 0


def main(argv=None, out=None):
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list(out)
    if args.command == "train":
        return _cmd_train(args, out)
    if args.command == "predict":
        return _cmd_predict(args, out)
    if args.command == "experiment":
        return _cmd_experiment(args, out)
    if args.command == "report":
        return _cmd_report(args, out)
    if args.command == "overload":
        return _cmd_overload(args, out)
    if args.command == "drift":
        return _cmd_drift(args, out)
    raise ConfigError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
