"""Execution results returned by the simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.analysis.contracts import (
    ensure_energy_mj,
    ensure_finite,
    ensure_latency_ms,
)
from repro.common import ConfigError, ppw_from_energy

__all__ = ["ExecutionResult"]


@dataclass(frozen=True)
class ExecutionResult:
    """The measured outcome of one inference execution.

    Attributes:
        latency_ms: end-to-end inference latency (``R_latency``).
        energy_mj: ground-truth mobile-system energy for the inference —
            what the Monsoon power meter would have integrated.
        estimated_energy_mj: AutoScale's ``R_energy`` estimate, computed
            from the measured latency via equations (1)-(4); its gap to
            ``energy_mj`` is the estimator error (paper MAPE: 7.3%).
        accuracy_pct: the pre-measured inference accuracy of the network
            at the executed precision (``R_accuracy``).
        target_key: the executed :class:`ExecutionTarget`'s key, or a
            description for partitioned executions.
        detail: per-phase breakdown (compute/tx/rx/rtt times, slowdowns,
            per-component energies) for analysis and tests.
    """

    latency_ms: float
    energy_mj: float
    estimated_energy_mj: float
    accuracy_pct: float
    target_key: str
    detail: Dict[str, float] = field(default_factory=dict)

    #: Class-level discriminators shared with
    #: :class:`repro.faults.FailedAttempt` (``failed = True``) and
    #: :class:`repro.serving.shedder.SheddedRequest` (``shed = True``):
    #: every serve outcome carries both flags as typed attributes, so
    #: consumers branch on ``outcome.failed`` / ``outcome.shed``
    #: directly instead of duck-typing through ``getattr`` defaults.
    failed = False
    shed = False

    def __post_init__(self):
        # Finiteness first: NaN slips through plain comparisons (``nan
        # <= 0`` is False), and a NaN latency here would silently poison
        # every downstream benchmark figure.
        ensure_latency_ms(self.latency_ms, "latency_ms")
        ensure_energy_mj(self.energy_mj, "energy_mj")
        ensure_energy_mj(self.estimated_energy_mj, "estimated_energy_mj")
        if self.energy_mj <= 0 or self.estimated_energy_mj <= 0:
            raise ConfigError("non-positive energy")
        ensure_finite(self.accuracy_pct, "accuracy_pct")
        if not 0.0 <= self.accuracy_pct <= 100.0:
            raise ConfigError(f"accuracy outside [0, 100]: "
                              f"{self.accuracy_pct}")

    @property
    def ppw(self):
        """Performance per watt (inferences per joule); see DESIGN.md."""
        return ppw_from_energy(self.energy_mj)

    def meets_qos(self, qos_ms):
        return self.latency_ms <= qos_ms

    def estimator_error(self):
        """Relative error of the eq. (1)-(4) energy estimate."""
        return abs(self.estimated_energy_mj - self.energy_mj) / self.energy_mj
